#include "ir/instruction.hpp"

#include "ir/basic_block.hpp"
#include "ir/function.hpp"
#include "support/error.hpp"

namespace vulfi::ir {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::SDiv: return "sdiv";
    case Opcode::UDiv: return "udiv";
    case Opcode::SRem: return "srem";
    case Opcode::URem: return "urem";
    case Opcode::Shl: return "shl";
    case Opcode::LShr: return "lshr";
    case Opcode::AShr: return "ashr";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::FRem: return "frem";
    case Opcode::FNeg: return "fneg";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::GetElementPtr: return "getelementptr";
    case Opcode::ExtractElement: return "extractelement";
    case Opcode::InsertElement: return "insertelement";
    case Opcode::ShuffleVector: return "shufflevector";
    case Opcode::Trunc: return "trunc";
    case Opcode::ZExt: return "zext";
    case Opcode::SExt: return "sext";
    case Opcode::FPTrunc: return "fptrunc";
    case Opcode::FPExt: return "fpext";
    case Opcode::FPToSI: return "fptosi";
    case Opcode::FPToUI: return "fptoui";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::UIToFP: return "uitofp";
    case Opcode::PtrToInt: return "ptrtoint";
    case Opcode::IntToPtr: return "inttoptr";
    case Opcode::Bitcast: return "bitcast";
    case Opcode::Phi: return "phi";
    case Opcode::Select: return "select";
    case Opcode::Call: return "call";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "br";
    case Opcode::Ret: return "ret";
    case Opcode::Unreachable: return "unreachable";
  }
  return "?";
}

bool opcode_is_terminator(Opcode op) {
  return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret ||
         op == Opcode::Unreachable;
}

const char* icmp_pred_name(ICmpPred pred) {
  switch (pred) {
    case ICmpPred::EQ: return "eq";
    case ICmpPred::NE: return "ne";
    case ICmpPred::SLT: return "slt";
    case ICmpPred::SLE: return "sle";
    case ICmpPred::SGT: return "sgt";
    case ICmpPred::SGE: return "sge";
    case ICmpPred::ULT: return "ult";
    case ICmpPred::ULE: return "ule";
    case ICmpPred::UGT: return "ugt";
    case ICmpPred::UGE: return "uge";
  }
  return "?";
}

const char* fcmp_pred_name(FCmpPred pred) {
  switch (pred) {
    case FCmpPred::OEQ: return "oeq";
    case FCmpPred::ONE: return "one";
    case FCmpPred::OLT: return "olt";
    case FCmpPred::OLE: return "ole";
    case FCmpPred::OGT: return "ogt";
    case FCmpPred::OGE: return "oge";
    case FCmpPred::UEQ: return "ueq";
    case FCmpPred::UNE: return "une";
    case FCmpPred::ULT: return "ult";
    case FCmpPred::ULE: return "ule";
    case FCmpPred::UGT: return "ugt";
    case FCmpPred::UGE: return "uge";
    case FCmpPred::ORD: return "ord";
    case FCmpPred::UNO: return "uno";
  }
  return "?";
}

Instruction::Instruction(Opcode op, Type type, std::vector<Value*> operands)
    : Value(ValueKind::Instruction, type),
      opcode_(op),
      operands_(std::move(operands)) {
  for (Value* operand : operands_) {
    VULFI_ASSERT(operand != nullptr, "instruction operand must be non-null");
    operand->add_user(this);
  }
}

Instruction::~Instruction() { drop_operand_uses(); }

void Instruction::drop_operand_uses() {
  for (Value* operand : operands_) {
    if (operand) operand->remove_user(this);
  }
  operands_.clear();
}

Value* Instruction::operand(unsigned i) const {
  VULFI_ASSERT(i < operands_.size(), "operand index out of range");
  return operands_[i];
}

void Instruction::set_operand(unsigned i, Value* value) {
  VULFI_ASSERT(i < operands_.size(), "operand index out of range");
  VULFI_ASSERT(value != nullptr, "operand must be non-null");
  operands_[i]->remove_user(this);
  operands_[i] = value;
  value->add_user(this);
}

Function* Instruction::function() const {
  return parent_ ? parent_->parent() : nullptr;
}

bool Instruction::is_vector_instruction() const {
  if (type().is_vector()) return true;
  for (const Value* operand : operands_) {
    if (operand->type().is_vector()) return true;
  }
  return false;
}

ICmpPred Instruction::icmp_pred() const {
  VULFI_ASSERT(opcode_ == Opcode::ICmp, "icmp_pred on non-icmp");
  return icmp_pred_;
}

FCmpPred Instruction::fcmp_pred() const {
  VULFI_ASSERT(opcode_ == Opcode::FCmp, "fcmp_pred on non-fcmp");
  return fcmp_pred_;
}

const std::vector<int>& Instruction::shuffle_mask() const {
  VULFI_ASSERT(opcode_ == Opcode::ShuffleVector, "shuffle_mask on non-shuffle");
  return shuffle_mask_;
}

Function* Instruction::callee() const {
  VULFI_ASSERT(opcode_ == Opcode::Call, "callee on non-call");
  return callee_;
}

unsigned Instruction::num_successors() const {
  if (opcode_ == Opcode::Br) return 1;
  if (opcode_ == Opcode::CondBr) return 2;
  return 0;
}

BasicBlock* Instruction::successor(unsigned i) const {
  VULFI_ASSERT(i < num_successors(), "successor index out of range");
  return successors_[i];
}

void Instruction::set_successor(unsigned i, BasicBlock* block) {
  VULFI_ASSERT(i < num_successors(), "successor index out of range");
  VULFI_ASSERT(block != nullptr, "successor must be non-null");
  successors_[i] = block;
}

const std::vector<BasicBlock*>& Instruction::phi_incoming_blocks() const {
  VULFI_ASSERT(opcode_ == Opcode::Phi, "phi accessor on non-phi");
  return phi_blocks_;
}

void Instruction::phi_add_incoming(Value* value, BasicBlock* pred) {
  VULFI_ASSERT(opcode_ == Opcode::Phi, "phi_add_incoming on non-phi");
  VULFI_ASSERT(value != nullptr && pred != nullptr,
               "phi incoming needs value and block");
  VULFI_ASSERT(value->type() == type(), "phi incoming type mismatch");
  operands_.push_back(value);
  value->add_user(this);
  phi_blocks_.push_back(pred);
}

Value* Instruction::phi_value_for(const BasicBlock* pred) const {
  VULFI_ASSERT(opcode_ == Opcode::Phi, "phi_value_for on non-phi");
  for (std::size_t i = 0; i < phi_blocks_.size(); ++i) {
    if (phi_blocks_[i] == pred) return operands_[i];
  }
  VULFI_UNREACHABLE("phi has no incoming value for predecessor");
}

void Instruction::phi_replace_incoming_block(BasicBlock* old_pred,
                                             BasicBlock* new_pred) {
  VULFI_ASSERT(opcode_ == Opcode::Phi, "phi mutator on non-phi");
  for (BasicBlock*& block : phi_blocks_) {
    if (block == old_pred) block = new_pred;
  }
}

const std::vector<std::uint64_t>& Instruction::gep_strides() const {
  VULFI_ASSERT(opcode_ == Opcode::GetElementPtr, "gep_strides on non-gep");
  return gep_strides_;
}

std::uint64_t Instruction::alloca_bytes() const {
  VULFI_ASSERT(opcode_ == Opcode::Alloca, "alloca_bytes on non-alloca");
  return alloca_bytes_;
}

Type Instruction::access_type() const {
  if (opcode_ == Opcode::Load) return type();
  VULFI_ASSERT(opcode_ == Opcode::Store, "access_type on non-memory op");
  return operand(0)->type();
}

Instruction* Instruction::create(Opcode op, Type result_type,
                                 std::vector<Value*> operands) {
  return new Instruction(op, result_type, std::move(operands));
}

Instruction* Instruction::create_icmp(ICmpPred pred, Value* lhs, Value* rhs) {
  VULFI_ASSERT(lhs->type() == rhs->type(), "icmp operand type mismatch");
  const Type result = Type::i1().with_lanes(lhs->type().lanes());
  auto* inst = new Instruction(Opcode::ICmp, result, {lhs, rhs});
  inst->icmp_pred_ = pred;
  return inst;
}

Instruction* Instruction::create_fcmp(FCmpPred pred, Value* lhs, Value* rhs) {
  VULFI_ASSERT(lhs->type() == rhs->type(), "fcmp operand type mismatch");
  const Type result = Type::i1().with_lanes(lhs->type().lanes());
  auto* inst = new Instruction(Opcode::FCmp, result, {lhs, rhs});
  inst->fcmp_pred_ = pred;
  return inst;
}

Instruction* Instruction::create_shuffle(Value* v1, Value* v2,
                                         std::vector<int> mask) {
  VULFI_ASSERT(v1->type() == v2->type(), "shuffle operand type mismatch");
  VULFI_ASSERT(!mask.empty(), "shuffle mask must be non-empty");
  const Type result =
      v1->type().element().with_lanes(static_cast<unsigned>(mask.size()));
  auto* inst = new Instruction(Opcode::ShuffleVector, result, {v1, v2});
  inst->shuffle_mask_ = std::move(mask);
  return inst;
}

Instruction* Instruction::create_call(Function* callee,
                                      std::vector<Value*> args) {
  VULFI_ASSERT(callee != nullptr, "call needs a callee");
  auto* inst =
      new Instruction(Opcode::Call, callee->return_type(), std::move(args));
  inst->callee_ = callee;
  return inst;
}

Instruction* Instruction::create_br(BasicBlock* target) {
  auto* inst = new Instruction(Opcode::Br, Type::void_ty(), {});
  inst->successors_[0] = target;
  return inst;
}

Instruction* Instruction::create_cond_br(Value* cond, BasicBlock* then_block,
                                         BasicBlock* else_block) {
  VULFI_ASSERT(cond->type() == Type::i1(), "cond-br condition must be i1");
  auto* inst = new Instruction(Opcode::CondBr, Type::void_ty(), {cond});
  inst->successors_[0] = then_block;
  inst->successors_[1] = else_block;
  return inst;
}

Instruction* Instruction::create_phi(Type type) {
  return new Instruction(Opcode::Phi, type, {});
}

Instruction* Instruction::create_gep(Value* base, std::vector<Value*> indices,
                                     std::vector<std::uint64_t> strides) {
  VULFI_ASSERT(base->type() == Type::ptr(), "gep base must be a pointer");
  VULFI_ASSERT(indices.size() == strides.size(),
               "gep needs one stride per index");
  VULFI_ASSERT(!indices.empty(), "gep needs at least one index");
  std::vector<Value*> operands;
  operands.reserve(indices.size() + 1);
  operands.push_back(base);
  for (Value* index : indices) operands.push_back(index);
  auto* inst =
      new Instruction(Opcode::GetElementPtr, Type::ptr(), std::move(operands));
  inst->gep_strides_ = std::move(strides);
  return inst;
}

Instruction* Instruction::create_alloca(std::uint64_t bytes) {
  VULFI_ASSERT(bytes > 0, "alloca of zero bytes");
  auto* inst = new Instruction(Opcode::Alloca, Type::ptr(), {});
  inst->alloca_bytes_ = bytes;
  return inst;
}

Instruction* Instruction::create_ret(Value* value) {
  if (value == nullptr) {
    return new Instruction(Opcode::Ret, Type::void_ty(), {});
  }
  return new Instruction(Opcode::Ret, Type::void_ty(), {value});
}

}  // namespace vulfi::ir
