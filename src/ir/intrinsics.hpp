// Intrinsic and runtime-function registry.
//
// VULFI must "distinguish between unmasked and masked vector instructions
// including architecture specific LLVM intrinsics" (paper §II) and keeps
// "an inbuilt list of x86 intrinsics, which classifies whether any given
// intrinsic performs a masked vector operation" (paper §II-D). This header
// is that list: every intrinsic the IR can call, with its masked-operation
// metadata (which operand is the execution mask, which is the data).
//
// Masked load/store follow the x86 AVX convention the paper prints in
// Figure 5: the mask has the same lane type as the data and a lane is
// active iff its most significant bit is set.
#pragma once

#include <cstdint>
#include <string>

#include "ir/type.hpp"

namespace vulfi::ir {

/// Which vector instruction set a masked intrinsic belongs to. The IR is
/// ISA-agnostic; the ISA only selects lane width and intrinsic spelling,
/// mirroring how the paper evaluates the same benchmarks under AVX and
/// SSE4 (§IV-C).
enum class Isa : std::uint8_t { AVX, SSE4 };

const char* isa_name(Isa isa);

enum class IntrinsicId : std::uint8_t {
  None,
  // Masked vector memory operations (x86-style).
  MaskLoad,
  MaskStore,
  // movmsk: packs each lane's sign bit into a scalar i32 bitmask — the
  // instruction ISPC emits to test "any lane active" on an execution
  // mask. Routes vector mask values into scalar control flow.
  MoveMask,
  // Elementwise math intrinsics (scalar or vector, f32/f64).
  Sqrt,
  Exp,
  Log,
  Pow,
  Fabs,
  Fmin,
  Fmax,
  Sin,
  Cos,
  Floor,
};

/// Per-intrinsic classification consulted by the instrumentor and the
/// interpreter.
struct IntrinsicInfo {
  IntrinsicId id = IntrinsicId::None;
  /// Index of the execution-mask operand, or -1 when unmasked.
  int mask_operand = -1;
  /// Index of the data operand a fault injector should target for a
  /// masked store (maskstore has no Lvalue), or -1.
  int data_operand = -1;

  bool is_masked() const { return mask_operand >= 0; }
};

/// Intrinsic spelling, e.g.
///   masked_intrinsic_name(MaskLoad, AVX,  <8 x float>)
///     == "vulfi.x86.avx.maskload.ps.256"
///   masked_intrinsic_name(MaskStore, SSE4, <4 x i32>)
///     == "vulfi.x86.sse41.maskstore.d"
std::string masked_intrinsic_name(IntrinsicId id, Isa isa, Type data_type);

/// movmsk spelling, e.g. movmsk_intrinsic_name(AVX, <8 x float>)
/// == "vulfi.x86.avx.movmsk.ps.256".
std::string movmsk_intrinsic_name(Isa isa, Type data_type);

/// Math intrinsic spelling, e.g. math_intrinsic_name(Sqrt, <8 x float>)
/// == "vulfi.sqrt.v8f32".
std::string math_intrinsic_name(IntrinsicId id, Type type);

/// True for the elementwise math intrinsic ids.
bool is_math_intrinsic(IntrinsicId id);

/// Two-argument math intrinsics (pow/fmin/fmax); the rest are unary.
bool math_intrinsic_is_binary(IntrinsicId id);

/// A mask lane is active iff the MSB of its element bit pattern is set —
/// x86 vmaskmov semantics. `element_bits` is the lane width.
bool mask_lane_active(std::uint64_t lane_bits, unsigned element_bits);

/// The all-active mask bit pattern for one lane of `element_bits` width
/// (all ones, as produced by sign-extending a true comparison result).
std::uint64_t all_active_mask_lane(unsigned element_bits);

}  // namespace vulfi::ir
