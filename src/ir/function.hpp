// Functions: definitions (with a CFG of basic blocks), intrinsic
// declarations, and runtime declarations (VULFI's injection/detection API,
// dispatched by name to host callbacks by the interpreter — the analogue
// of linking the instrumented binary against the VULFI runtime library).
#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "ir/basic_block.hpp"
#include "ir/intrinsics.hpp"
#include "ir/type.hpp"
#include "ir/value.hpp"

namespace vulfi::ir {

class Module;

enum class FunctionKind : std::uint8_t {
  /// Has a body of basic blocks; executed by the interpreter.
  Definition,
  /// Declared intrinsic (masked memory op, math op); evaluated natively
  /// by the interpreter.
  Intrinsic,
  /// Declared runtime function; dispatched to a registered host callback
  /// (fault injection, detectors).
  Runtime,
};

class Function {
 public:
  using BlockList = std::list<std::unique_ptr<BasicBlock>>;
  using iterator = BlockList::iterator;
  using const_iterator = BlockList::const_iterator;

  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  const std::string& name() const { return name_; }
  Module* parent() const { return parent_; }
  FunctionKind kind() const { return kind_; }
  bool is_definition() const { return kind_ == FunctionKind::Definition; }

  Type return_type() const { return return_type_; }

  unsigned num_args() const { return static_cast<unsigned>(args_.size()); }
  Argument* arg(unsigned i) const;
  const std::vector<std::unique_ptr<Argument>>& args() const { return args_; }

  /// Intrinsic metadata (id None / no mask for non-intrinsics).
  const IntrinsicInfo& intrinsic_info() const { return intrinsic_; }
  bool is_masked_intrinsic() const { return intrinsic_.is_masked(); }

  // --- CFG (definitions only) ----------------------------------------
  BasicBlock* create_block(std::string name);
  /// Creates a block placed immediately after `after` in layout order.
  BasicBlock* create_block_after(std::string name, BasicBlock* after);
  BasicBlock& entry();
  const BasicBlock& entry() const;

  iterator begin() { return blocks_.begin(); }
  iterator end() { return blocks_.end(); }
  const_iterator begin() const { return blocks_.begin(); }
  const_iterator end() const { return blocks_.end(); }
  std::size_t num_blocks() const { return blocks_.size(); }

  /// Blocks branching to `block` (computed by scanning; no cache).
  std::vector<BasicBlock*> predecessors(const BasicBlock* block) const;

  /// Total instruction count across all blocks.
  std::size_t num_instructions() const;

  /// Returns `name` if unused within this function, else "name.K" for the
  /// first free K, and marks the result used. Keeps SSA names unique so
  /// the printed form is unambiguous (parseable). Blocks have their own
  /// namespace.
  std::string uniquify_value_name(const std::string& name);
  std::string uniquify_block_name(const std::string& name);

 private:
  friend class Module;

  Function(std::string name, Type return_type, std::vector<Type> param_types,
           FunctionKind kind, IntrinsicInfo intrinsic, Module* parent);

  std::string name_;
  Type return_type_;
  std::vector<std::unique_ptr<Argument>> args_;
  FunctionKind kind_;
  IntrinsicInfo intrinsic_;
  Module* parent_;
  BlockList blocks_;
  std::unordered_set<std::string> used_value_names_;
  std::unordered_set<std::string> used_block_names_;
};

}  // namespace vulfi::ir
