// Whole-module cloning.
//
// Fault-injection studies repeatedly need a pristine copy of a module —
// e.g. comparing detector-instrumented against plain builds, or running
// the instrumentor with different options over the same kernel — without
// re-running the kernel builder. clone_module produces a structurally
// identical, fully independent module (fresh constants, fresh use-lists).
#pragma once

#include <memory>
#include <unordered_map>

#include "ir/module.hpp"

namespace vulfi::ir {

/// Deep-copies `source`. Function order, block order, instruction order,
/// names, payloads (predicates, shuffle masks, GEP strides, intrinsic
/// metadata) are preserved; the printer output of the clone equals the
/// printer output of the source.
std::unique_ptr<Module> clone_module(const Module& source);

/// Value mapping from an executed clone back to the original (or vice
/// versa) for consumers that need to correlate, keyed by source value.
struct CloneMap {
  std::unordered_map<const Value*, Value*> values;
  std::unordered_map<const BasicBlock*, BasicBlock*> blocks;
  std::unordered_map<const Function*, Function*> functions;
};

std::unique_ptr<Module> clone_module(const Module& source, CloneMap* map);

}  // namespace vulfi::ir
