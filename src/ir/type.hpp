// IR type system.
//
// Mirrors the slice of the LLVM type system VULFI cares about (LLVM
// LangRef): scalar integers (i1..i64), binary floating point (f32/f64),
// pointers, and fixed-width vectors of those scalars. Per the paper's
// terminology (§II-A): a *vector instruction* has at least one vector-typed
// operand; a *scalar register* has integer, floating point, or pointer
// type; the *vector length* Vl is the number of scalar registers packed in
// a vector register.
#pragma once

#include <cstdint>
#include <string>

namespace vulfi::ir {

enum class TypeKind : std::uint8_t {
  Void,
  I1,
  I8,
  I16,
  I32,
  I64,
  F32,
  F64,
  Ptr,
};

/// Value-semantic type descriptor: an element kind plus a lane count
/// (1 = scalar, >= 2 = vector). Cheap to copy and compare.
class Type {
 public:
  constexpr Type() = default;

  static constexpr Type scalar(TypeKind kind) { return Type(kind, 1); }
  static constexpr Type vector(TypeKind kind, unsigned lanes) {
    return Type(kind, lanes);
  }

  static constexpr Type void_ty() { return Type(TypeKind::Void, 1); }
  static constexpr Type i1() { return scalar(TypeKind::I1); }
  static constexpr Type i8() { return scalar(TypeKind::I8); }
  static constexpr Type i16() { return scalar(TypeKind::I16); }
  static constexpr Type i32() { return scalar(TypeKind::I32); }
  static constexpr Type i64() { return scalar(TypeKind::I64); }
  static constexpr Type f32() { return scalar(TypeKind::F32); }
  static constexpr Type f64() { return scalar(TypeKind::F64); }
  static constexpr Type ptr() { return scalar(TypeKind::Ptr); }

  constexpr TypeKind kind() const { return kind_; }
  /// 1 for scalars, Vl for vectors.
  constexpr unsigned lanes() const { return lanes_; }
  constexpr bool is_vector() const { return lanes_ > 1; }
  constexpr bool is_scalar() const { return lanes_ == 1 && !is_void(); }
  constexpr bool is_void() const { return kind_ == TypeKind::Void; }
  constexpr bool is_integer() const {
    return kind_ == TypeKind::I1 || kind_ == TypeKind::I8 ||
           kind_ == TypeKind::I16 || kind_ == TypeKind::I32 ||
           kind_ == TypeKind::I64;
  }
  constexpr bool is_float() const {
    return kind_ == TypeKind::F32 || kind_ == TypeKind::F64;
  }
  constexpr bool is_pointer() const { return kind_ == TypeKind::Ptr; }
  constexpr bool is_bool() const { return kind_ == TypeKind::I1; }

  /// The scalar element type (identity for scalars).
  constexpr Type element() const { return Type(kind_, 1); }
  constexpr Type with_lanes(unsigned lanes) const {
    return Type(kind_, lanes);
  }

  /// Bit width of one element (pointers are 64-bit in this IR).
  constexpr unsigned element_bits() const {
    switch (kind_) {
      case TypeKind::Void: return 0;
      case TypeKind::I1: return 1;
      case TypeKind::I8: return 8;
      case TypeKind::I16: return 16;
      case TypeKind::I32: return 32;
      case TypeKind::I64: return 64;
      case TypeKind::F32: return 32;
      case TypeKind::F64: return 64;
      case TypeKind::Ptr: return 64;
    }
    return 0;
  }

  /// In-memory size of one element in bytes (i1 occupies one byte).
  constexpr unsigned element_bytes() const {
    const unsigned bits = element_bits();
    return bits <= 8 ? (bits ? 1 : 0) : bits / 8;
  }

  /// In-memory size of the whole (possibly vector) type.
  constexpr unsigned byte_size() const { return element_bytes() * lanes_; }

  constexpr bool operator==(const Type&) const = default;

  /// LLVM-flavoured spelling: "i32", "<8 x float>", "ptr", ...
  std::string to_string() const;

 private:
  constexpr Type(TypeKind kind, unsigned lanes) : kind_(kind), lanes_(lanes) {}

  TypeKind kind_ = TypeKind::Void;
  unsigned lanes_ = 1;
};

}  // namespace vulfi::ir
