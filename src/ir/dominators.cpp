#include "ir/dominators.hpp"

#include <utility>

#include "ir/basic_block.hpp"
#include "ir/function.hpp"
#include "support/error.hpp"

namespace vulfi::ir {

DominatorTree::DominatorTree(const Function& fn) : fn_(&fn) {
  VULFI_ASSERT(fn.is_definition() && fn.num_blocks() > 0,
               "dominator tree needs a non-empty definition");
  for (const auto& block : fn) {
    ids_[block.get()] = static_cast<int>(blocks_.size());
    blocks_.push_back(block.get());
  }
  const int n = static_cast<int>(blocks_.size());

  // Successor ids per block (successors outside the function — a transient
  // state some verifier tests construct — are ignored).
  std::vector<std::vector<int>> successor_ids(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    for (BasicBlock* succ : blocks_[static_cast<std::size_t>(b)]->successors()) {
      auto it = ids_.find(succ);
      if (it != ids_.end()) {
        successor_ids[static_cast<std::size_t>(b)].push_back(it->second);
      }
    }
  }

  // Postorder DFS from entry (iterative).
  std::vector<int> postorder;
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<int, std::size_t>> stack;  // (block id, next succ)
  stack.emplace_back(0, 0);
  visited[0] = 1;
  while (!stack.empty()) {
    auto& [block, next] = stack.back();
    const auto& succs = successor_ids[static_cast<std::size_t>(block)];
    if (next < succs.size()) {
      const int succ = succs[next++];
      if (!visited[static_cast<std::size_t>(succ)]) {
        visited[static_cast<std::size_t>(succ)] = 1;
        stack.emplace_back(succ, 0);
      }
    } else {
      postorder.push_back(block);
      stack.pop_back();
    }
  }

  rpo_number_.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> rpo(postorder.rbegin(), postorder.rend());
  for (int i = 0; i < static_cast<int>(rpo.size()); ++i) {
    rpo_number_[static_cast<std::size_t>(rpo[static_cast<std::size_t>(i)])] = i;
    rpo_.push_back(blocks_[static_cast<std::size_t>(rpo[static_cast<std::size_t>(i)])]);
  }
  for (int b = 0; b < n; ++b) {
    if (!visited[static_cast<std::size_t>(b)]) {
      unreachable_.push_back(blocks_[static_cast<std::size_t>(b)]);
    }
  }

  // Cooper–Harvey–Kennedy fixpoint over RPO.
  idom_.assign(static_cast<std::size_t>(n), -1);
  idom_[0] = 0;
  std::vector<std::vector<int>> pred_ids(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    for (int succ : successor_ids[static_cast<std::size_t>(b)]) {
      pred_ids[static_cast<std::size_t>(succ)].push_back(b);
    }
  }
  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_number_[static_cast<std::size_t>(a)] >
             rpo_number_[static_cast<std::size_t>(b)]) {
        a = idom_[static_cast<std::size_t>(a)];
      }
      while (rpo_number_[static_cast<std::size_t>(b)] >
             rpo_number_[static_cast<std::size_t>(a)]) {
        b = idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : rpo) {
      if (b == 0) continue;
      int new_idom = -1;
      for (int pred : pred_ids[static_cast<std::size_t>(b)]) {
        if (idom_[static_cast<std::size_t>(pred)] == -1) continue;
        new_idom = new_idom == -1 ? pred : intersect(pred, new_idom);
      }
      if (new_idom != -1 && idom_[static_cast<std::size_t>(b)] != new_idom) {
        idom_[static_cast<std::size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
}

int DominatorTree::index_of(const BasicBlock* block) const {
  auto it = ids_.find(block);
  VULFI_ASSERT(it != ids_.end(), "block not in this dominator tree's function");
  return it->second;
}

bool DominatorTree::reachable(const BasicBlock* block) const {
  const int b = index_of(block);
  return b == 0 || idom_[static_cast<std::size_t>(b)] != -1;
}

const BasicBlock* DominatorTree::idom(const BasicBlock* block) const {
  const int b = index_of(block);
  if (b == 0 || idom_[static_cast<std::size_t>(b)] == -1) return nullptr;
  return blocks_[static_cast<std::size_t>(idom_[static_cast<std::size_t>(b)])];
}

bool DominatorTree::block_dominates(int a, int b) const {
  // Unreachable blocks vacuously dominate nothing and are dominated by
  // everything (the verifier skips SSA checks inside them).
  if (idom_[static_cast<std::size_t>(b)] == -1 && b != 0) return true;
  while (b != a && b != 0) {
    b = idom_[static_cast<std::size_t>(b)];
    if (b == -1) return false;
  }
  return b == a;
}

bool DominatorTree::dominates(const BasicBlock* a, const BasicBlock* b) const {
  return block_dominates(index_of(a), index_of(b));
}

const std::unordered_map<const Instruction*, std::pair<int, int>>&
DominatorTree::positions() const {
  if (positions_.empty()) {
    for (const BasicBlock* block : blocks_) {
      const int bid = ids_.at(block);
      int idx = 0;
      for (const auto& inst : *block) {
        positions_[inst.get()] = {bid, idx++};
      }
    }
  }
  return positions_;
}

bool DominatorTree::dominates(const Instruction* def,
                              const Instruction* use) const {
  const auto& pos = positions();
  auto def_it = pos.find(def);
  auto use_it = pos.find(use);
  VULFI_ASSERT(def_it != pos.end() && use_it != pos.end(),
               "instruction not in this dominator tree's function");
  const auto [def_block, def_idx] = def_it->second;
  const auto [use_block, use_idx] = use_it->second;
  if (def_block == use_block) return def_idx < use_idx;
  return block_dominates(def_block, use_block);
}

bool DominatorTree::dominates_block_end(const Instruction* def,
                                        const BasicBlock* block) const {
  const auto& pos = positions();
  auto def_it = pos.find(def);
  VULFI_ASSERT(def_it != pos.end(),
               "instruction not in this dominator tree's function");
  return block_dominates(def_it->second.first, index_of(block));
}

}  // namespace vulfi::ir
