#include "ir/builder.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::ir {

void IRBuilder::set_insert_block(BasicBlock* block) {
  VULFI_ASSERT(block != nullptr, "insert block must be non-null");
  block_ = block;
  pos_ = block->end();
}

void IRBuilder::set_insert_point(BasicBlock* block,
                                 BasicBlock::iterator pos) {
  VULFI_ASSERT(block != nullptr, "insert block must be non-null");
  block_ = block;
  pos_ = pos;
}

void IRBuilder::set_insert_after(Instruction* inst) {
  VULFI_ASSERT(inst->parent() != nullptr, "instruction not in a block");
  BasicBlock* block = inst->parent();
  auto pos = block->position_of(inst);
  set_insert_point(block, std::next(pos));
}

void IRBuilder::set_insert_before(Instruction* inst) {
  VULFI_ASSERT(inst->parent() != nullptr, "instruction not in a block");
  BasicBlock* block = inst->parent();
  set_insert_point(block, block->position_of(inst));
}

Instruction* IRBuilder::emit(Instruction* inst, std::string name) {
  VULFI_ASSERT(block_ != nullptr, "no insertion point set");
  if (name.empty() && !inst->type().is_void()) {
    name = strf("t%u", name_counter_++);
  }
  inst->set_name(std::move(name));
  block_->insert(pos_, inst);
  return inst;
}

Value* IRBuilder::binary(Opcode op, Value* lhs, Value* rhs, std::string name,
                         bool is_fp) {
  VULFI_ASSERT(lhs->type() == rhs->type(), "binary operand type mismatch");
  if (is_fp) {
    VULFI_ASSERT(lhs->type().is_float(), "fp op requires float operands");
  } else {
    VULFI_ASSERT(lhs->type().is_integer(), "int op requires int operands");
  }
  return emit(Instruction::create(op, lhs->type(), {lhs, rhs}),
              std::move(name));
}

#define VULFI_BIN(method, opcode, is_fp)                                    \
  Value* IRBuilder::method(Value* lhs, Value* rhs, std::string name) {      \
    return binary(Opcode::opcode, lhs, rhs, std::move(name), is_fp);        \
  }

VULFI_BIN(add, Add, false)
VULFI_BIN(sub, Sub, false)
VULFI_BIN(mul, Mul, false)
VULFI_BIN(sdiv, SDiv, false)
VULFI_BIN(udiv, UDiv, false)
VULFI_BIN(srem, SRem, false)
VULFI_BIN(urem, URem, false)
VULFI_BIN(shl, Shl, false)
VULFI_BIN(lshr, LShr, false)
VULFI_BIN(ashr, AShr, false)
VULFI_BIN(and_, And, false)
VULFI_BIN(or_, Or, false)
VULFI_BIN(xor_, Xor, false)
VULFI_BIN(fadd, FAdd, true)
VULFI_BIN(fsub, FSub, true)
VULFI_BIN(fmul, FMul, true)
VULFI_BIN(fdiv, FDiv, true)
VULFI_BIN(frem, FRem, true)

#undef VULFI_BIN

Value* IRBuilder::fneg(Value* operand, std::string name) {
  VULFI_ASSERT(operand->type().is_float(), "fneg requires float operand");
  return emit(Instruction::create(Opcode::FNeg, operand->type(), {operand}),
              std::move(name));
}

Value* IRBuilder::icmp(ICmpPred pred, Value* lhs, Value* rhs,
                       std::string name) {
  VULFI_ASSERT(lhs->type().is_integer() || lhs->type().is_pointer(),
               "icmp requires integer or pointer operands");
  return emit(Instruction::create_icmp(pred, lhs, rhs), std::move(name));
}

Value* IRBuilder::fcmp(FCmpPred pred, Value* lhs, Value* rhs,
                       std::string name) {
  VULFI_ASSERT(lhs->type().is_float(), "fcmp requires float operands");
  return emit(Instruction::create_fcmp(pred, lhs, rhs), std::move(name));
}

Value* IRBuilder::alloca_bytes(std::uint64_t bytes, std::string name) {
  return emit(Instruction::create_alloca(bytes), std::move(name));
}

Value* IRBuilder::load(Type type, Value* ptr, std::string name) {
  VULFI_ASSERT(ptr->type() == Type::ptr(), "load pointer operand required");
  VULFI_ASSERT(!type.is_void(), "cannot load void");
  return emit(Instruction::create(Opcode::Load, type, {ptr}),
              std::move(name));
}

Instruction* IRBuilder::store(Value* value, Value* ptr) {
  VULFI_ASSERT(ptr->type() == Type::ptr(), "store pointer operand required");
  return emit(
      Instruction::create(Opcode::Store, Type::void_ty(), {value, ptr}), "");
}

Value* IRBuilder::gep(Value* base, Value* index, std::uint64_t stride_bytes,
                      std::string name) {
  return gep(base, std::vector<Value*>{index},
             std::vector<std::uint64_t>{stride_bytes}, std::move(name));
}

Value* IRBuilder::gep(Value* base, std::vector<Value*> indices,
                      std::vector<std::uint64_t> strides, std::string name) {
  for (Value* index : indices) {
    VULFI_ASSERT(index->type().is_integer() && index->type().is_scalar(),
                 "gep index must be a scalar integer");
  }
  return emit(
      Instruction::create_gep(base, std::move(indices), std::move(strides)),
      std::move(name));
}

Value* IRBuilder::extract_element(Value* vec, Value* index,
                                  std::string name) {
  if (vec->type().is_scalar()) {
    // Scalar (Vl = 1) kernels: a one-lane "vector" IS its element, so the
    // extract folds away and no scalar-shaped vector instruction is ever
    // emitted (the verifier and interpreters only ever see lanes >= 2).
    return vec;
  }
  VULFI_ASSERT(vec->type().is_vector(), "extractelement requires a vector");
  VULFI_ASSERT(index->type().is_integer() && index->type().is_scalar(),
               "extractelement index must be a scalar integer");
  return emit(Instruction::create(Opcode::ExtractElement,
                                  vec->type().element(), {vec, index}),
              std::move(name));
}

Value* IRBuilder::extract_element(Value* vec, unsigned index,
                                  std::string name) {
  return extract_element(vec, module_.const_int(Type::i32(), index),
                         std::move(name));
}

Value* IRBuilder::insert_element(Value* vec, Value* elem, Value* index,
                                 std::string name) {
  if (vec->type().is_scalar()) {
    // Scalar (Vl = 1) kernels: inserting lane 0 of a one-lane value just
    // replaces it. Folds like extract_element above.
    VULFI_ASSERT(elem->type() == vec->type(),
                 "insertelement element type mismatch");
    return elem;
  }
  VULFI_ASSERT(vec->type().is_vector(), "insertelement requires a vector");
  VULFI_ASSERT(elem->type() == vec->type().element(),
               "insertelement element type mismatch");
  VULFI_ASSERT(index->type().is_integer() && index->type().is_scalar(),
               "insertelement index must be a scalar integer");
  return emit(Instruction::create(Opcode::InsertElement, vec->type(),
                                  {vec, elem, index}),
              std::move(name));
}

Value* IRBuilder::insert_element(Value* vec, Value* elem, unsigned index,
                                 std::string name) {
  return insert_element(vec, elem, module_.const_int(Type::i32(), index),
                        std::move(name));
}

Value* IRBuilder::shuffle(Value* v1, Value* v2, std::vector<int> mask,
                          std::string name) {
  return emit(Instruction::create_shuffle(v1, v2, std::move(mask)),
              std::move(name));
}

Value* IRBuilder::broadcast(Value* scalar, unsigned lanes, std::string name) {
  VULFI_ASSERT(scalar->type().is_scalar(), "broadcast takes a scalar");
  VULFI_ASSERT(lanes >= 1, "broadcast needs at least one lane");
  // Scalar (Vl = 1) kernels: the splat of a scalar to one lane is the
  // scalar itself.
  if (lanes == 1) return scalar;
  const Type vec_type = scalar->type().with_lanes(lanes);
  Value* init = insert_element(module_.const_undef(vec_type), scalar, 0u,
                               name.empty() ? "" : name + "_init");
  // shufflevector <N x T> %init, <N x T> undef, zeroinitializer
  return shuffle(init, module_.const_undef(vec_type),
                 std::vector<int>(lanes, 0), std::move(name));
}

Value* IRBuilder::cast(Opcode op, Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().lanes() == to.lanes(),
               "cast cannot change lane count");
  return emit(Instruction::create(op, to, {operand}), std::move(name));
}

Value* IRBuilder::trunc(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().is_integer() && to.is_integer() &&
                   to.element_bits() < operand->type().element_bits(),
               "trunc must narrow an integer");
  return cast(Opcode::Trunc, operand, to, std::move(name));
}

Value* IRBuilder::zext(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().is_integer() && to.is_integer() &&
                   to.element_bits() > operand->type().element_bits(),
               "zext must widen an integer");
  return cast(Opcode::ZExt, operand, to, std::move(name));
}

Value* IRBuilder::sext(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().is_integer() && to.is_integer() &&
                   to.element_bits() > operand->type().element_bits(),
               "sext must widen an integer");
  return cast(Opcode::SExt, operand, to, std::move(name));
}

Value* IRBuilder::fptrunc(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().kind() == TypeKind::F64 &&
                   to.kind() == TypeKind::F32,
               "fptrunc is f64 -> f32");
  return cast(Opcode::FPTrunc, operand, to, std::move(name));
}

Value* IRBuilder::fpext(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().kind() == TypeKind::F32 &&
                   to.kind() == TypeKind::F64,
               "fpext is f32 -> f64");
  return cast(Opcode::FPExt, operand, to, std::move(name));
}

Value* IRBuilder::fptosi(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().is_float() && to.is_integer(),
               "fptosi is float -> int");
  return cast(Opcode::FPToSI, operand, to, std::move(name));
}

Value* IRBuilder::fptoui(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().is_float() && to.is_integer(),
               "fptoui is float -> int");
  return cast(Opcode::FPToUI, operand, to, std::move(name));
}

Value* IRBuilder::sitofp(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().is_integer() && to.is_float(),
               "sitofp is int -> float");
  return cast(Opcode::SIToFP, operand, to, std::move(name));
}

Value* IRBuilder::uitofp(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().is_integer() && to.is_float(),
               "uitofp is int -> float");
  return cast(Opcode::UIToFP, operand, to, std::move(name));
}

Value* IRBuilder::ptrtoint(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().is_pointer() && to.is_integer(),
               "ptrtoint is ptr -> int");
  return cast(Opcode::PtrToInt, operand, to, std::move(name));
}

Value* IRBuilder::inttoptr(Value* operand, std::string name) {
  VULFI_ASSERT(operand->type().is_integer(), "inttoptr is int -> ptr");
  return cast(Opcode::IntToPtr, operand,
              Type::ptr().with_lanes(operand->type().lanes()),
              std::move(name));
}

Value* IRBuilder::bitcast(Value* operand, Type to, std::string name) {
  VULFI_ASSERT(operand->type().byte_size() == to.byte_size(),
               "bitcast must preserve bit width");
  // Lane-count changes (e.g. <8 x i32> -> <4 x i64>) are legal in LLVM but
  // unneeded here; keep the stricter rule so the interpreter can stay
  // lane-wise.
  VULFI_ASSERT(operand->type().lanes() == to.lanes(),
               "bitcast must preserve lane count");
  return emit(Instruction::create(Opcode::Bitcast, to, {operand}),
              std::move(name));
}

Instruction* IRBuilder::phi(Type type, std::string name) {
  return emit(Instruction::create_phi(type), std::move(name));
}

Value* IRBuilder::select(Value* cond, Value* on_true, Value* on_false,
                         std::string name) {
  VULFI_ASSERT(cond->type().kind() == TypeKind::I1,
               "select condition must be i1 or vector of i1");
  VULFI_ASSERT(on_true->type() == on_false->type(),
               "select arm type mismatch");
  VULFI_ASSERT(cond->type().lanes() == 1 ||
                   cond->type().lanes() == on_true->type().lanes(),
               "vector select needs matching lane counts");
  return emit(Instruction::create(Opcode::Select, on_true->type(),
                                  {cond, on_true, on_false}),
              std::move(name));
}

Value* IRBuilder::call(Function* callee, std::vector<Value*> args,
                       std::string name) {
  VULFI_ASSERT(args.size() == callee->num_args(),
               "call argument count mismatch");
  for (unsigned i = 0; i < args.size(); ++i) {
    VULFI_ASSERT(args[i]->type() == callee->arg(i)->type(),
                 "call argument type mismatch");
  }
  return emit(Instruction::create_call(callee, std::move(args)),
              std::move(name));
}

Instruction* IRBuilder::br(BasicBlock* target) {
  return emit(Instruction::create_br(target), "");
}

Instruction* IRBuilder::cond_br(Value* cond, BasicBlock* then_block,
                                BasicBlock* else_block) {
  return emit(Instruction::create_cond_br(cond, then_block, else_block), "");
}

Instruction* IRBuilder::ret(Value* value) {
  return emit(Instruction::create_ret(value), "");
}

Instruction* IRBuilder::unreachable() {
  return emit(Instruction::create(Opcode::Unreachable, Type::void_ty(), {}),
              "");
}

}  // namespace vulfi::ir
