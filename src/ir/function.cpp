#include "ir/function.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::ir {

Function::Function(std::string name, Type return_type,
                   std::vector<Type> param_types, FunctionKind kind,
                   IntrinsicInfo intrinsic, Module* parent)
    : name_(std::move(name)),
      return_type_(return_type),
      kind_(kind),
      intrinsic_(intrinsic),
      parent_(parent) {
  args_.reserve(param_types.size());
  for (unsigned i = 0; i < param_types.size(); ++i) {
    auto arg = std::make_unique<Argument>(param_types[i], i, this);
    arg->set_name(strf("arg%u", i));
    args_.push_back(std::move(arg));
  }
}

Argument* Function::arg(unsigned i) const {
  VULFI_ASSERT(i < args_.size(), "argument index out of range");
  return args_[i].get();
}

namespace {

std::string uniquify(std::unordered_set<std::string>& used,
                     const std::string& name) {
  if (used.insert(name).second) return name;
  for (unsigned k = 1;; ++k) {
    std::string candidate = strf("%s.%u", name.c_str(), k);
    if (used.insert(candidate).second) return candidate;
  }
}

}  // namespace

std::string Function::uniquify_value_name(const std::string& name) {
  return uniquify(used_value_names_, name);
}

std::string Function::uniquify_block_name(const std::string& name) {
  return uniquify(used_block_names_, name);
}

BasicBlock* Function::create_block(std::string name) {
  VULFI_ASSERT(is_definition(), "only definitions have blocks");
  blocks_.push_back(std::make_unique<BasicBlock>(
      uniquify_block_name(name), this));
  return blocks_.back().get();
}

BasicBlock* Function::create_block_after(std::string name,
                                         BasicBlock* after) {
  VULFI_ASSERT(is_definition(), "only definitions have blocks");
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == after) {
      auto inserted = blocks_.emplace(
          std::next(it),
          std::make_unique<BasicBlock>(uniquify_block_name(name), this));
      return inserted->get();
    }
  }
  VULFI_UNREACHABLE("create_block_after: anchor block not in function");
}

BasicBlock& Function::entry() {
  VULFI_ASSERT(!blocks_.empty(), "function has no entry block");
  return *blocks_.front();
}

const BasicBlock& Function::entry() const {
  VULFI_ASSERT(!blocks_.empty(), "function has no entry block");
  return *blocks_.front();
}

std::vector<BasicBlock*> Function::predecessors(
    const BasicBlock* block) const {
  std::vector<BasicBlock*> preds;
  for (const auto& candidate : blocks_) {
    for (BasicBlock* succ : candidate->successors()) {
      if (succ == block) {
        preds.push_back(candidate.get());
        break;
      }
    }
  }
  return preds;
}

std::size_t Function::num_instructions() const {
  std::size_t total = 0;
  for (const auto& block : blocks_) total += block->size();
  return total;
}

}  // namespace vulfi::ir
