// Basic blocks: named, ordered lists of instructions ending in a
// terminator. std::list gives stable iterators so passes (the VULFI
// instrumentor, the detector-insertion pass) can splice new instructions
// mid-block while iterating.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace vulfi::ir {

class Function;

class BasicBlock {
 public:
  using InstList = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstList::iterator;
  using const_iterator = InstList::const_iterator;

  BasicBlock(std::string name, Function* parent)
      : name_(std::move(name)), parent_(parent) {}

  BasicBlock(const BasicBlock&) = delete;
  BasicBlock& operator=(const BasicBlock&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  Function* parent() const { return parent_; }

  iterator begin() { return insts_.begin(); }
  iterator end() { return insts_.end(); }
  const_iterator begin() const { return insts_.begin(); }
  const_iterator end() const { return insts_.end(); }
  bool empty() const { return insts_.empty(); }
  std::size_t size() const { return insts_.size(); }

  Instruction& front() { return *insts_.front(); }
  const Instruction& front() const { return *insts_.front(); }
  Instruction& back() { return *insts_.back(); }
  const Instruction& back() const { return *insts_.back(); }

  /// Appends, taking ownership. Returns the instruction for chaining.
  Instruction* push_back(Instruction* inst);

  /// Inserts before `pos`, taking ownership.
  Instruction* insert(iterator pos, Instruction* inst);

  /// Position of `inst` within this block; asserts if absent.
  iterator position_of(const Instruction* inst);

  /// Removes and destroys `inst` (asserts it has no remaining users).
  void erase(Instruction* inst);

  /// The block terminator, or nullptr if the block is still open.
  const Instruction* terminator() const;
  Instruction* terminator();

  /// Blocks this block can branch to (empty for ret/unreachable).
  std::vector<BasicBlock*> successors() const;

 private:
  std::string name_;
  Function* parent_;
  InstList insts_;
};

}  // namespace vulfi::ir
