#include "ir/intrinsics.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::ir {

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::AVX: return "AVX";
    case Isa::SSE4: return "SSE";
  }
  return "?";
}

namespace {

/// x86 packed-type suffix: ps = packed single, pd = packed double,
/// d = packed dword, q = packed qword.
const char* packed_suffix(Type data_type) {
  switch (data_type.kind()) {
    case TypeKind::F32: return "ps";
    case TypeKind::F64: return "pd";
    case TypeKind::I32: return "d";
    case TypeKind::I64: return "q";
    default:
      VULFI_UNREACHABLE("masked intrinsics support f32/f64/i32/i64 lanes");
  }
}

std::string type_suffix(Type type) {
  const char* elem = nullptr;
  switch (type.kind()) {
    case TypeKind::F32: elem = "f32"; break;
    case TypeKind::F64: elem = "f64"; break;
    case TypeKind::I32: elem = "i32"; break;
    case TypeKind::I64: elem = "i64"; break;
    default: VULFI_UNREACHABLE("math intrinsics support f32/f64/i32/i64");
  }
  if (!type.is_vector()) return elem;
  return strf("v%u%s", type.lanes(), elem);
}

}  // namespace

std::string masked_intrinsic_name(IntrinsicId id, Isa isa, Type data_type) {
  VULFI_ASSERT(id == IntrinsicId::MaskLoad || id == IntrinsicId::MaskStore,
               "not a masked memory intrinsic");
  VULFI_ASSERT(data_type.is_vector(), "masked ops take vector data");
  const char* op = id == IntrinsicId::MaskLoad ? "maskload" : "maskstore";
  const unsigned bits = data_type.byte_size() * 8;
  if (isa == Isa::AVX) {
    return strf("vulfi.x86.avx.%s.%s.%u", op, packed_suffix(data_type), bits);
  }
  return strf("vulfi.x86.sse41.%s.%s", op, packed_suffix(data_type));
}

std::string movmsk_intrinsic_name(Isa isa, Type data_type) {
  VULFI_ASSERT(data_type.is_vector(), "movmsk takes vector data");
  const unsigned bits = data_type.byte_size() * 8;
  if (isa == Isa::AVX) {
    return strf("vulfi.x86.avx.movmsk.%s.%u", packed_suffix(data_type),
                bits);
  }
  return strf("vulfi.x86.sse.movmsk.%s", packed_suffix(data_type));
}

std::string math_intrinsic_name(IntrinsicId id, Type type) {
  const char* base = nullptr;
  switch (id) {
    case IntrinsicId::Sqrt: base = "sqrt"; break;
    case IntrinsicId::Exp: base = "exp"; break;
    case IntrinsicId::Log: base = "log"; break;
    case IntrinsicId::Pow: base = "pow"; break;
    case IntrinsicId::Fabs: base = "fabs"; break;
    case IntrinsicId::Fmin: base = "fmin"; break;
    case IntrinsicId::Fmax: base = "fmax"; break;
    case IntrinsicId::Sin: base = "sin"; break;
    case IntrinsicId::Cos: base = "cos"; break;
    case IntrinsicId::Floor: base = "floor"; break;
    default: VULFI_UNREACHABLE("not a math intrinsic");
  }
  return strf("vulfi.%s.%s", base, type_suffix(type).c_str());
}

bool is_math_intrinsic(IntrinsicId id) {
  switch (id) {
    case IntrinsicId::Sqrt:
    case IntrinsicId::Exp:
    case IntrinsicId::Log:
    case IntrinsicId::Pow:
    case IntrinsicId::Fabs:
    case IntrinsicId::Fmin:
    case IntrinsicId::Fmax:
    case IntrinsicId::Sin:
    case IntrinsicId::Cos:
    case IntrinsicId::Floor:
      return true;
    default:
      return false;
  }
}

bool math_intrinsic_is_binary(IntrinsicId id) {
  return id == IntrinsicId::Pow || id == IntrinsicId::Fmin ||
         id == IntrinsicId::Fmax;
}

bool mask_lane_active(std::uint64_t lane_bits, unsigned element_bits) {
  VULFI_ASSERT(element_bits >= 1 && element_bits <= 64,
               "mask element width out of range");
  return (lane_bits >> (element_bits - 1)) & 1u;
}

std::uint64_t all_active_mask_lane(unsigned element_bits) {
  VULFI_ASSERT(element_bits >= 1 && element_bits <= 64,
               "mask element width out of range");
  if (element_bits == 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << element_bits) - 1;
}

}  // namespace vulfi::ir
