// Module verifier.
//
// Validates structural and SSA well-formedness after construction and after
// every transformation pass (SPMD lowering, VULFI instrumentation, detector
// insertion). Returns diagnostics instead of aborting so tests can assert
// on specific violations.
#pragma once

#include <string>
#include <vector>

namespace vulfi::ir {

class Module;
class Function;

/// All diagnostics found; empty means the module is well-formed.
/// Checks: block/terminator structure, phi/predecessor agreement, operand
/// typing per opcode, call signatures, cross-function operand leaks, and
/// SSA dominance (every use dominated by its definition).
std::vector<std::string> verify(const Module& module);
std::vector<std::string> verify(const Function& function);

/// Convenience for tests and builders: aborts with the first diagnostic.
void verify_or_die(const Module& module);

}  // namespace vulfi::ir
