// IR instructions.
//
// A single concrete Instruction class carrying an opcode plus a small
// opcode-specific payload (compare predicate, shuffle mask, successor
// blocks, GEP strides, ...). This keeps the interpreter a flat switch and
// keeps instrumentation passes free of downcast ceremony while still
// modelling the LLVM instructions VULFI manipulates: getelementptr,
// extractelement, insertelement, shufflevector, phi, branches, calls
// (including x86-style masked vector intrinsics), and the usual
// arithmetic / memory / cast operations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hpp"
#include "ir/value.hpp"

namespace vulfi::ir {

class BasicBlock;
class Function;

enum class Opcode : std::uint8_t {
  // Integer arithmetic / bitwise.
  Add, Sub, Mul, SDiv, UDiv, SRem, URem,
  Shl, LShr, AShr, And, Or, Xor,
  // Floating point arithmetic.
  FAdd, FSub, FMul, FDiv, FRem, FNeg,
  // Comparisons.
  ICmp, FCmp,
  // Memory.
  Alloca, Load, Store, GetElementPtr,
  // Vector.
  ExtractElement, InsertElement, ShuffleVector,
  // Casts.
  Trunc, ZExt, SExt, FPTrunc, FPExt,
  FPToSI, FPToUI, SIToFP, UIToFP, PtrToInt, IntToPtr, Bitcast,
  // Other.
  Phi, Select, Call,
  // Terminators.
  Br, CondBr, Ret, Unreachable,
};

const char* opcode_name(Opcode op);
bool opcode_is_terminator(Opcode op);

enum class ICmpPred : std::uint8_t { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };
enum class FCmpPred : std::uint8_t {
  // Ordered comparisons (false if either operand is NaN)...
  OEQ, ONE, OLT, OLE, OGT, OGE,
  // ...and the unordered duals (true if either operand is NaN).
  UEQ, UNE, ULT, ULE, UGT, UGE,
  ORD, UNO,
};

const char* icmp_pred_name(ICmpPred pred);
const char* fcmp_pred_name(FCmpPred pred);

class Instruction final : public Value {
 public:
  ~Instruction() override;

  Opcode opcode() const { return opcode_; }
  bool is_terminator() const { return opcode_is_terminator(opcode_); }

  // --- operands -----------------------------------------------------
  unsigned num_operands() const {
    return static_cast<unsigned>(operands_.size());
  }
  Value* operand(unsigned i) const;
  void set_operand(unsigned i, Value* value);
  const std::vector<Value*>& operands() const { return operands_; }

  // --- location -----------------------------------------------------
  BasicBlock* parent() const { return parent_; }
  Function* function() const;

  /// True when the instruction result or any operand is vector-typed —
  /// the paper's definition of a "vector instruction" (§II-A).
  bool is_vector_instruction() const;

  // --- opcode-specific payload accessors -----------------------------
  ICmpPred icmp_pred() const;
  FCmpPred fcmp_pred() const;

  /// ShuffleVector lane mask; -1 denotes an undef lane.
  const std::vector<int>& shuffle_mask() const;

  /// Call: the callee (a declaration or definition in the same module).
  Function* callee() const;

  /// Br/CondBr successors. Br has one, CondBr two (then, else).
  unsigned num_successors() const;
  BasicBlock* successor(unsigned i) const;
  void set_successor(unsigned i, BasicBlock* block);

  /// Phi incoming blocks; parallel to the operand list.
  const std::vector<BasicBlock*>& phi_incoming_blocks() const;
  void phi_add_incoming(Value* value, BasicBlock* pred);
  Value* phi_value_for(const BasicBlock* pred) const;
  /// Renames an incoming edge (used when a pass splits a CFG edge, e.g.
  /// detector-block insertion).
  void phi_replace_incoming_block(BasicBlock* old_pred, BasicBlock* new_pred);

  /// GetElementPtr: byte stride for index operand i (operand i + 1).
  const std::vector<std::uint64_t>& gep_strides() const;

  /// Alloca allocation size in bytes.
  std::uint64_t alloca_bytes() const;

  /// Load/Store access type: the loaded type (== result type) for Load,
  /// the stored value type for Store.
  Type access_type() const;

  // --- factory functions (used by IRBuilder) --------------------------
  static Instruction* create(Opcode op, Type result_type,
                             std::vector<Value*> operands);
  static Instruction* create_icmp(ICmpPred pred, Value* lhs, Value* rhs);
  static Instruction* create_fcmp(FCmpPred pred, Value* lhs, Value* rhs);
  static Instruction* create_shuffle(Value* v1, Value* v2,
                                     std::vector<int> mask);
  static Instruction* create_call(Function* callee, std::vector<Value*> args);
  static Instruction* create_br(BasicBlock* target);
  static Instruction* create_cond_br(Value* cond, BasicBlock* then_block,
                                     BasicBlock* else_block);
  static Instruction* create_phi(Type type);
  static Instruction* create_gep(Value* base, std::vector<Value*> indices,
                                 std::vector<std::uint64_t> strides);
  static Instruction* create_alloca(std::uint64_t bytes);
  static Instruction* create_ret(Value* value /* nullptr for ret void */);

 private:
  friend class BasicBlock;
  friend class Module;  // severs use-lists during module teardown

  Instruction(Opcode op, Type type, std::vector<Value*> operands);

  void drop_operand_uses();

  Opcode opcode_;
  std::vector<Value*> operands_;
  BasicBlock* parent_ = nullptr;

  // Payload (only the fields relevant to opcode_ are meaningful).
  ICmpPred icmp_pred_ = ICmpPred::EQ;
  FCmpPred fcmp_pred_ = FCmpPred::OEQ;
  std::vector<int> shuffle_mask_;
  Function* callee_ = nullptr;
  BasicBlock* successors_[2] = {nullptr, nullptr};
  std::vector<BasicBlock*> phi_blocks_;
  std::vector<std::uint64_t> gep_strides_;
  std::uint64_t alloca_bytes_ = 0;
};

}  // namespace vulfi::ir
