#include "ir/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "ir/builder.hpp"
#include "support/str.hpp"

namespace vulfi::ir {

namespace {

// ---------------------------------------------------------------------------
// Line cursor
// ---------------------------------------------------------------------------

/// Cheap cursor over one line of text. All parse helpers skip leading
/// whitespace first.
class Cursor {
 public:
  Cursor(std::string_view text, int line_number)
      : text_(text), line_(line_number) {}

  int line() const { return line_; }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      pos_ += 1;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool peek(std::string_view token) {
    skip_ws();
    return text_.substr(pos_).starts_with(token);
  }

  bool try_consume(std::string_view token) {
    skip_ws();
    if (!text_.substr(pos_).starts_with(token)) return false;
    pos_ += token.size();
    return true;
  }

  /// Word = run of identifier-ish characters ([A-Za-z0-9_.]).
  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
          ch == '.') {
        pos_ += 1;
      } else {
        break;
      }
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Signed decimal or floating literal (also 1e+30, inf, -inf, nan).
  std::string number_token() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '.' ||
          ch == '-' || ch == '+' || ch == ':') {
        pos_ += 1;
      } else {
        break;
      }
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string rest() {
    skip_ws();
    return std::string(text_.substr(pos_));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) {
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t end = text.find('\n', start);
      lines_.push_back(text.substr(
          start, end == std::string::npos ? std::string::npos : end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }

  ParseResult run() {
    parse_header();
    pre_scan_functions();
    if (errors_.empty()) parse_bodies();
    ParseResult result;
    result.errors = std::move(errors_);
    if (result.errors.empty()) result.module = std::move(module_);
    return result;
  }

 private:
  void error(int line, const std::string& message) {
    errors_.push_back(strf("line %d: %s", line, message.c_str()));
  }

  static bool is_blank(const std::string& line) {
    for (char ch : line) {
      if (!std::isspace(static_cast<unsigned char>(ch))) return false;
    }
    return true;
  }

  void parse_header() {
    std::string name = "parsed";
    for (const std::string& line : lines_) {
      if (is_blank(line)) continue;
      Cursor cursor(line, 1);
      if (cursor.try_consume("; module")) {
        name = cursor.word();
      }
      break;
    }
    module_ = std::make_unique<Module>(name);
  }

  // --- types ---------------------------------------------------------------

  bool parse_scalar_kind(Cursor& cursor, TypeKind* kind) {
    static const std::pair<const char*, TypeKind> kKinds[] = {
        {"void", TypeKind::Void}, {"i16", TypeKind::I16},
        {"i1", TypeKind::I1},     {"i8", TypeKind::I8},
        {"i32", TypeKind::I32},   {"i64", TypeKind::I64},
        {"float", TypeKind::F32}, {"double", TypeKind::F64},
        {"ptr", TypeKind::Ptr},
    };
    // NB: i16 before i1 so the longer token wins.
    for (const auto& [token, value] : kKinds) {
      if (cursor.try_consume(token)) {
        *kind = value;
        return true;
      }
    }
    return false;
  }

  bool parse_type(Cursor& cursor, Type* type) {
    if (cursor.try_consume("<")) {
      const std::string lanes_text = cursor.word();
      const unsigned lanes =
          static_cast<unsigned>(std::strtoul(lanes_text.c_str(), nullptr, 10));
      TypeKind kind;
      if (lanes == 0 || !cursor.try_consume("x") ||
          !parse_scalar_kind(cursor, &kind) || !cursor.try_consume(">")) {
        error(cursor.line(), "malformed vector type");
        return false;
      }
      *type = Type::vector(kind, lanes);
      return true;
    }
    TypeKind kind;
    if (!parse_scalar_kind(cursor, &kind)) return false;
    *type = kind == TypeKind::Void ? Type::void_ty() : Type::scalar(kind);
    return true;
  }

  // --- function pre-scan ------------------------------------------------------

  FunctionKind kind_for_declaration(const std::string& name,
                                    IntrinsicInfo* info) {
    *info = IntrinsicInfo{};
    if (name.find(".maskload.") != std::string::npos) {
      info->id = IntrinsicId::MaskLoad;
      info->mask_operand = 1;
      return FunctionKind::Intrinsic;
    }
    if (name.find(".maskstore.") != std::string::npos) {
      info->id = IntrinsicId::MaskStore;
      info->mask_operand = 1;
      info->data_operand = 2;
      return FunctionKind::Intrinsic;
    }
    if (name.find(".movmsk.") != std::string::npos) {
      info->id = IntrinsicId::MoveMask;
      return FunctionKind::Intrinsic;
    }
    static const std::pair<const char*, IntrinsicId> kMath[] = {
        {"vulfi.sqrt.", IntrinsicId::Sqrt}, {"vulfi.exp.", IntrinsicId::Exp},
        {"vulfi.log.", IntrinsicId::Log},   {"vulfi.pow.", IntrinsicId::Pow},
        {"vulfi.fabs.", IntrinsicId::Fabs}, {"vulfi.fmin.", IntrinsicId::Fmin},
        {"vulfi.fmax.", IntrinsicId::Fmax}, {"vulfi.sin.", IntrinsicId::Sin},
        {"vulfi.cos.", IntrinsicId::Cos},   {"vulfi.floor.", IntrinsicId::Floor},
    };
    for (const auto& [prefix, id] : kMath) {
      if (name.starts_with(prefix)) {
        info->id = id;
        return FunctionKind::Intrinsic;
      }
    }
    return FunctionKind::Runtime;
  }

  /// Parses "define/declare <ret> @<name>(<params>)". Returns the new
  /// function (params named from the text) or nullptr on error.
  Function* parse_signature(Cursor& cursor, bool is_definition) {
    Type ret;
    if (!parse_type(cursor, &ret)) {
      error(cursor.line(), "expected return type");
      return nullptr;
    }
    if (!cursor.try_consume("@")) {
      error(cursor.line(), "expected @function-name");
      return nullptr;
    }
    const std::string name = cursor.word();
    if (!cursor.try_consume("(")) {
      error(cursor.line(), "expected parameter list");
      return nullptr;
    }
    std::vector<Type> params;
    std::vector<std::string> param_names;
    if (!cursor.try_consume(")")) {
      while (true) {
        Type param;
        if (!parse_type(cursor, &param)) {
          error(cursor.line(), "expected parameter type");
          return nullptr;
        }
        params.push_back(param);
        if (cursor.try_consume("%")) {
          param_names.push_back(cursor.word());
        } else {
          param_names.push_back(strf("arg%zu", params.size() - 1));
        }
        if (cursor.try_consume(")")) break;
        if (!cursor.try_consume(",")) {
          error(cursor.line(), "expected ',' or ')' in parameter list");
          return nullptr;
        }
      }
    }
    Function* fn;
    if (is_definition) {
      fn = module_->create_function(name, ret, std::move(params));
    } else {
      IntrinsicInfo info;
      const FunctionKind kind = kind_for_declaration(name, &info);
      fn = module_->declare_exact(name, ret, std::move(params), kind, info);
    }
    for (unsigned i = 0; i < fn->num_args(); ++i) {
      fn->arg(i)->set_name(param_names[i]);
    }
    return fn;
  }

  void pre_scan_functions() {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      Cursor cursor(lines_[i], static_cast<int>(i + 1));
      if (cursor.try_consume("define")) {
        Function* fn = parse_signature(cursor, /*is_definition=*/true);
        if (!fn) return;
        bodies_.emplace_back(fn, i + 1);
      } else if (cursor.try_consume("declare")) {
        parse_signature(cursor, /*is_definition=*/false);
      }
    }
  }

  // --- operands ---------------------------------------------------------------

  struct Scope {
    std::unordered_map<std::string, Value*> values;
    std::unordered_map<std::string, BasicBlock*> blocks;
  };

  Value* parse_operand(Cursor& cursor, Type type, Scope& scope) {
    if (cursor.try_consume("%")) {
      const std::string name = cursor.word();
      auto it = scope.values.find(name);
      if (it == scope.values.end()) {
        error(cursor.line(), "use of undefined value %" + name);
        return nullptr;
      }
      return it->second;
    }
    if (cursor.try_consume("undef")) return module_->const_undef(type);
    if (cursor.try_consume("zeroinitializer")) return module_->const_zero(type);
    if (cursor.try_consume("<")) {
      // Per-lane vector literal: <i32 0, i32 1, ...>.
      std::vector<std::uint64_t> raw;
      while (true) {
        Type lane_type;
        if (!parse_type(cursor, &lane_type)) {
          error(cursor.line(), "expected lane type in vector literal");
          return nullptr;
        }
        Value* lane = parse_operand(cursor, lane_type, scope);
        if (!lane) return nullptr;
        const auto* constant = dynamic_cast<const Constant*>(lane);
        if (!constant) {
          error(cursor.line(), "vector literal lanes must be constants");
          return nullptr;
        }
        raw.push_back(constant->raw(0));
        if (cursor.try_consume(">")) break;
        if (!cursor.try_consume(",")) {
          error(cursor.line(), "expected ',' or '>' in vector literal");
          return nullptr;
        }
      }
      if (raw.size() != type.lanes()) {
        error(cursor.line(), "vector literal lane count mismatch");
        return nullptr;
      }
      return module_->const_raw(type, std::move(raw));
    }
    // Scalar literal.
    const std::string token = cursor.number_token();
    if (token.empty()) {
      error(cursor.line(), "expected operand");
      return nullptr;
    }
    if (type.is_pointer()) {
      // "ptr:<addr>"
      const std::size_t colon = token.find(':');
      const std::uint64_t addr = std::strtoull(
          colon == std::string::npos ? token.c_str()
                                     : token.c_str() + colon + 1,
          nullptr, 10);
      return module_->const_int(type, static_cast<std::int64_t>(addr));
    }
    if (type.is_float()) {
      const double value = std::strtod(token.c_str(), nullptr);
      return module_->const_fp(type, value);
    }
    return module_->const_int(
        type, static_cast<std::int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
  }

  /// Parses "<type> <operand>".
  Value* parse_typed_operand(Cursor& cursor, Scope& scope, Type* out_type) {
    Type type;
    if (!parse_type(cursor, &type)) {
      error(cursor.line(), "expected operand type");
      return nullptr;
    }
    if (out_type) *out_type = type;
    return parse_operand(cursor, type, scope);
  }

  // --- instructions ---------------------------------------------------------

  struct PendingPhi {
    Instruction* phi;
    std::vector<std::pair<std::string, std::string>> incoming;  // (text, block)
    int line;
  };

  static Opcode binary_opcode(const std::string& word, bool* found) {
    static const std::pair<const char*, Opcode> kOps[] = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},   {"sdiv", Opcode::SDiv},
        {"udiv", Opcode::UDiv}, {"srem", Opcode::SRem},
        {"urem", Opcode::URem}, {"shl", Opcode::Shl},
        {"lshr", Opcode::LShr}, {"ashr", Opcode::AShr},
        {"and", Opcode::And},   {"or", Opcode::Or},
        {"xor", Opcode::Xor},   {"fadd", Opcode::FAdd},
        {"fsub", Opcode::FSub}, {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv}, {"frem", Opcode::FRem},
    };
    for (const auto& [token, op] : kOps) {
      if (word == token) {
        *found = true;
        return op;
      }
    }
    *found = false;
    return Opcode::Add;
  }

  static Opcode cast_opcode(const std::string& word, bool* found) {
    static const std::pair<const char*, Opcode> kOps[] = {
        {"trunc", Opcode::Trunc},       {"zext", Opcode::ZExt},
        {"sext", Opcode::SExt},         {"fptrunc", Opcode::FPTrunc},
        {"fpext", Opcode::FPExt},       {"fptosi", Opcode::FPToSI},
        {"fptoui", Opcode::FPToUI},     {"sitofp", Opcode::SIToFP},
        {"uitofp", Opcode::UIToFP},     {"ptrtoint", Opcode::PtrToInt},
        {"inttoptr", Opcode::IntToPtr}, {"bitcast", Opcode::Bitcast},
    };
    for (const auto& [token, op] : kOps) {
      if (word == token) {
        *found = true;
        return op;
      }
    }
    *found = false;
    return Opcode::Bitcast;
  }

  bool parse_icmp_pred(const std::string& word, ICmpPred* pred) {
    static const std::pair<const char*, ICmpPred> kPreds[] = {
        {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},
        {"slt", ICmpPred::SLT}, {"sle", ICmpPred::SLE},
        {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
        {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE},
        {"ugt", ICmpPred::UGT}, {"uge", ICmpPred::UGE},
    };
    for (const auto& [token, value] : kPreds) {
      if (word == token) {
        *pred = value;
        return true;
      }
    }
    return false;
  }

  bool parse_fcmp_pred(const std::string& word, FCmpPred* pred) {
    static const std::pair<const char*, FCmpPred> kPreds[] = {
        {"oeq", FCmpPred::OEQ}, {"one", FCmpPred::ONE},
        {"olt", FCmpPred::OLT}, {"ole", FCmpPred::OLE},
        {"ogt", FCmpPred::OGT}, {"oge", FCmpPred::OGE},
        {"ueq", FCmpPred::UEQ}, {"une", FCmpPred::UNE},
        {"ult", FCmpPred::ULT}, {"ule", FCmpPred::ULE},
        {"ugt", FCmpPred::UGT}, {"uge", FCmpPred::UGE},
        {"ord", FCmpPred::ORD}, {"uno", FCmpPred::UNO},
    };
    for (const auto& [token, value] : kPreds) {
      if (word == token) {
        *pred = value;
        return true;
      }
    }
    return false;
  }

  /// Parses one instruction line into `block`. Returns false on error.
  bool parse_instruction(Cursor& cursor, IRBuilder& builder,
                         BasicBlock* block, Scope& scope,
                         std::vector<PendingPhi>& pending_phis) {
    builder.set_insert_block(block);

    std::string result_name;
    if (cursor.try_consume("%")) {
      result_name = cursor.word();
      if (!cursor.try_consume("=")) {
        error(cursor.line(), "expected '=' after result name");
        return false;
      }
    }
    const std::string opcode = cursor.word();
    Value* result = nullptr;

    bool found = false;
    const Opcode bin_op = binary_opcode(opcode, &found);
    if (found) {
      Type type;
      Value* lhs = parse_typed_operand(cursor, scope, &type);
      if (!lhs || !cursor.try_consume(",")) return false;
      Value* rhs = parse_operand(cursor, type, scope);
      if (!rhs) return false;
      Instruction* inst = Instruction::create(bin_op, type, {lhs, rhs});
      block->push_back(inst);
      result = inst;
    } else if (const Opcode cast_op = cast_opcode(opcode, &found); found) {
      Value* operand = parse_typed_operand(cursor, scope, nullptr);
      if (!operand || !cursor.try_consume("to")) {
        error(cursor.line(), "expected 'to <type>' in cast");
        return false;
      }
      Type to;
      if (!parse_type(cursor, &to)) return false;
      Instruction* inst = Instruction::create(cast_op, to, {operand});
      block->push_back(inst);
      result = inst;
    } else if (opcode == "fneg") {
      Value* operand = parse_typed_operand(cursor, scope, nullptr);
      if (!operand) return false;
      Instruction* inst =
          Instruction::create(Opcode::FNeg, operand->type(), {operand});
      block->push_back(inst);
      result = inst;
    } else if (opcode == "icmp" || opcode == "fcmp") {
      const std::string pred_word = cursor.word();
      Type type;
      Value* lhs = parse_typed_operand(cursor, scope, &type);
      if (!lhs || !cursor.try_consume(",")) return false;
      Value* rhs = parse_operand(cursor, type, scope);
      if (!rhs) return false;
      Instruction* inst;
      if (opcode == "icmp") {
        ICmpPred pred;
        if (!parse_icmp_pred(pred_word, &pred)) {
          error(cursor.line(), "unknown icmp predicate " + pred_word);
          return false;
        }
        inst = Instruction::create_icmp(pred, lhs, rhs);
      } else {
        FCmpPred pred;
        if (!parse_fcmp_pred(pred_word, &pred)) {
          error(cursor.line(), "unknown fcmp predicate " + pred_word);
          return false;
        }
        inst = Instruction::create_fcmp(pred, lhs, rhs);
      }
      block->push_back(inst);
      result = inst;
    } else if (opcode == "load") {
      Type type;
      if (!parse_type(cursor, &type) || !cursor.try_consume(",")) {
        error(cursor.line(), "malformed load");
        return false;
      }
      Value* ptr = parse_typed_operand(cursor, scope, nullptr);
      if (!ptr) return false;
      Instruction* inst = Instruction::create(Opcode::Load, type, {ptr});
      block->push_back(inst);
      result = inst;
    } else if (opcode == "store") {
      Value* value = parse_typed_operand(cursor, scope, nullptr);
      if (!value || !cursor.try_consume(",")) return false;
      Value* ptr = parse_typed_operand(cursor, scope, nullptr);
      if (!ptr) return false;
      block->push_back(
          Instruction::create(Opcode::Store, Type::void_ty(), {value, ptr}));
    } else if (opcode == "getelementptr") {
      Value* base = parse_typed_operand(cursor, scope, nullptr);
      if (!base) return false;
      std::vector<Value*> indices;
      std::vector<std::uint64_t> strides;
      while (cursor.try_consume(",")) {
        Value* index = parse_typed_operand(cursor, scope, nullptr);
        if (!index || !cursor.try_consume("(stride")) {
          error(cursor.line(), "expected '(stride N)' after gep index");
          return false;
        }
        strides.push_back(std::strtoull(cursor.word().c_str(), nullptr, 10));
        if (!cursor.try_consume(")")) return false;
        indices.push_back(index);
      }
      Instruction* inst =
          Instruction::create_gep(base, std::move(indices), std::move(strides));
      block->push_back(inst);
      result = inst;
    } else if (opcode == "alloca") {
      const std::uint64_t bytes =
          std::strtoull(cursor.word().c_str(), nullptr, 10);
      if (!cursor.try_consume("bytes")) {
        error(cursor.line(), "expected 'bytes' in alloca");
        return false;
      }
      Instruction* inst = Instruction::create_alloca(bytes);
      block->push_back(inst);
      result = inst;
    } else if (opcode == "extractelement" || opcode == "insertelement") {
      Value* vec = parse_typed_operand(cursor, scope, nullptr);
      if (!vec || !cursor.try_consume(",")) return false;
      if (opcode == "extractelement") {
        Value* index = parse_typed_operand(cursor, scope, nullptr);
        if (!index) return false;
        Instruction* inst = Instruction::create(
            Opcode::ExtractElement, vec->type().element(), {vec, index});
        block->push_back(inst);
        result = inst;
      } else {
        Value* elem = parse_typed_operand(cursor, scope, nullptr);
        if (!elem || !cursor.try_consume(",")) return false;
        Value* index = parse_typed_operand(cursor, scope, nullptr);
        if (!index) return false;
        Instruction* inst = Instruction::create(
            Opcode::InsertElement, vec->type(), {vec, elem, index});
        block->push_back(inst);
        result = inst;
      }
    } else if (opcode == "shufflevector") {
      Value* v1 = parse_typed_operand(cursor, scope, nullptr);
      if (!v1 || !cursor.try_consume(",")) return false;
      Value* v2 = parse_typed_operand(cursor, scope, nullptr);
      if (!v2 || !cursor.try_consume(",")) return false;
      std::vector<int> mask;
      if (cursor.try_consume("<")) {
        // Either "<N x i32> zeroinitializer" (handled below) or a lane
        // list "<i32 3, i32 undef, ...>". Distinguish: a lane list starts
        // with "i32", the typed form starts with a number.
        if (cursor.peek("i32")) {
          while (true) {
            if (!cursor.try_consume("i32")) {
              error(cursor.line(), "expected i32 lane in shuffle mask");
              return false;
            }
            if (cursor.try_consume("undef")) {
              mask.push_back(-1);
            } else {
              mask.push_back(static_cast<int>(
                  std::strtol(cursor.number_token().c_str(), nullptr, 10)));
            }
            if (cursor.try_consume(">")) break;
            if (!cursor.try_consume(",")) return false;
          }
        } else {
          const unsigned lanes = static_cast<unsigned>(
              std::strtoul(cursor.word().c_str(), nullptr, 10));
          if (!cursor.try_consume("x") || !cursor.try_consume("i32") ||
              !cursor.try_consume(">") ||
              !cursor.try_consume("zeroinitializer")) {
            error(cursor.line(), "malformed shuffle mask");
            return false;
          }
          mask.assign(lanes, 0);
        }
      } else {
        error(cursor.line(), "expected shuffle mask");
        return false;
      }
      Instruction* inst = Instruction::create_shuffle(v1, v2, std::move(mask));
      block->push_back(inst);
      result = inst;
    } else if (opcode == "select") {
      Value* cond = parse_typed_operand(cursor, scope, nullptr);
      if (!cond || !cursor.try_consume(",")) return false;
      Value* on_true = parse_typed_operand(cursor, scope, nullptr);
      if (!on_true || !cursor.try_consume(",")) return false;
      Value* on_false = parse_typed_operand(cursor, scope, nullptr);
      if (!on_false) return false;
      Instruction* inst = Instruction::create(
          Opcode::Select, on_true->type(), {cond, on_true, on_false});
      block->push_back(inst);
      result = inst;
    } else if (opcode == "call") {
      Type ret;
      if (!parse_type(cursor, &ret) || !cursor.try_consume("@")) {
        error(cursor.line(), "malformed call");
        return false;
      }
      const std::string callee_name = cursor.word();
      Function* callee = module_->find_function(callee_name);
      if (!callee) {
        error(cursor.line(), "call to unknown function @" + callee_name);
        return false;
      }
      if (!cursor.try_consume("(")) return false;
      std::vector<Value*> args;
      if (!cursor.try_consume(")")) {
        while (true) {
          Value* arg = parse_typed_operand(cursor, scope, nullptr);
          if (!arg) return false;
          args.push_back(arg);
          if (cursor.try_consume(")")) break;
          if (!cursor.try_consume(",")) return false;
        }
      }
      Instruction* inst = Instruction::create_call(callee, std::move(args));
      block->push_back(inst);
      if (!ret.is_void()) result = inst;
    } else if (opcode == "phi") {
      Type type;
      if (!parse_type(cursor, &type)) return false;
      Instruction* phi = Instruction::create_phi(type);
      block->push_back(phi);
      PendingPhi pending;
      pending.phi = phi;
      pending.line = cursor.line();
      // Scan "[ <value>, %block ], [ ... ]" directly off the remaining
      // text; values are resolved in a later pass (phis may forward-
      // reference values defined further down the function).
      const std::string remainder = cursor.rest();
      std::size_t pos = 0;
      auto skip_spaces = [&] {
        while (pos < remainder.size() &&
               std::isspace(static_cast<unsigned char>(remainder[pos]))) {
          pos += 1;
        }
      };
      while (true) {
        skip_spaces();
        if (pos >= remainder.size() || remainder[pos] != '[') break;
        pos += 1;
        // Operand text: up to the top-level comma (angle-bracket depth
        // guarded; printed phi operands never contain brackets, but be
        // safe).
        int depth = 0;
        const std::size_t operand_start = pos;
        while (pos < remainder.size() &&
               !(remainder[pos] == ',' && depth == 0)) {
          if (remainder[pos] == '<') depth += 1;
          if (remainder[pos] == '>') depth -= 1;
          pos += 1;
        }
        if (pos >= remainder.size()) {
          error(cursor.line(), "malformed phi incoming");
          return false;
        }
        const std::string operand_text =
            remainder.substr(operand_start, pos - operand_start);
        pos += 1;  // consume ','
        skip_spaces();
        if (pos >= remainder.size() || remainder[pos] != '%') {
          error(cursor.line(), "expected %block in phi incoming");
          return false;
        }
        pos += 1;
        const std::size_t name_start = pos;
        while (pos < remainder.size() && remainder[pos] != ' ' &&
               remainder[pos] != ']') {
          pos += 1;
        }
        const std::string block_name =
            remainder.substr(name_start, pos - name_start);
        skip_spaces();
        if (pos >= remainder.size() || remainder[pos] != ']') {
          // tolerate "name ]" with space consumed above
          while (pos < remainder.size() && remainder[pos] != ']') pos += 1;
        }
        if (pos < remainder.size()) pos += 1;  // consume ']'
        pending.incoming.emplace_back(operand_text, block_name);
        skip_spaces();
        if (pos < remainder.size() && remainder[pos] == ',') {
          pos += 1;
          continue;
        }
        break;
      }
      pending_phis.push_back(std::move(pending));
      result = phi;
    } else if (opcode == "br") {
      if (cursor.try_consume("label")) {
        if (!cursor.try_consume("%")) return false;
        const std::string target = cursor.word();
        auto it = scope.blocks.find(target);
        if (it == scope.blocks.end()) {
          error(cursor.line(), "branch to unknown block %" + target);
          return false;
        }
        block->push_back(Instruction::create_br(it->second));
      } else {
        Value* cond = parse_typed_operand(cursor, scope, nullptr);
        if (!cond || !cursor.try_consume(",") ||
            !cursor.try_consume("label") || !cursor.try_consume("%")) {
          error(cursor.line(), "malformed conditional branch");
          return false;
        }
        const std::string then_name = cursor.word();
        if (!cursor.try_consume(",") || !cursor.try_consume("label") ||
            !cursor.try_consume("%")) {
          return false;
        }
        const std::string else_name = cursor.word();
        auto then_it = scope.blocks.find(then_name);
        auto else_it = scope.blocks.find(else_name);
        if (then_it == scope.blocks.end() || else_it == scope.blocks.end()) {
          error(cursor.line(), "branch to unknown block");
          return false;
        }
        block->push_back(Instruction::create_cond_br(cond, then_it->second,
                                                     else_it->second));
      }
    } else if (opcode == "ret") {
      if (cursor.try_consume("void")) {
        block->push_back(Instruction::create_ret(nullptr));
      } else {
        Value* value = parse_typed_operand(cursor, scope, nullptr);
        if (!value) return false;
        block->push_back(Instruction::create_ret(value));
      }
    } else if (opcode == "unreachable") {
      block->push_back(
          Instruction::create(Opcode::Unreachable, Type::void_ty(), {}));
    } else {
      error(cursor.line(), "unknown opcode '" + opcode + "'");
      return false;
    }

    if (result != nullptr) {
      result->set_name(result_name);
      if (!result_name.empty()) {
        if (scope.values.count(result_name)) {
          error(cursor.line(), "redefinition of %" + result_name);
          return false;
        }
        scope.values[result_name] = result;
      }
    }
    return true;
  }

  void parse_bodies() {
    for (const auto& [fn, header_line] : bodies_) {
      Scope scope;
      for (const auto& arg : fn->args()) {
        scope.values[arg->name()] = arg.get();
      }
      // Pass 1: create blocks from labels so branches can forward-ref.
      std::size_t line_index = header_line;  // first line after "define"
      std::vector<std::pair<std::string, std::size_t>> label_lines;
      for (; line_index < lines_.size(); ++line_index) {
        const std::string& line = lines_[line_index];
        if (!line.empty() && line[0] == '}') break;
        if (is_blank(line)) continue;
        if (!std::isspace(static_cast<unsigned char>(line[0]))) {
          const std::size_t colon = line.find(':');
          if (colon == std::string::npos) {
            error(static_cast<int>(line_index + 1), "expected block label");
            return;
          }
          const std::string label = line.substr(0, colon);
          scope.blocks[label] = fn->create_block(label);
          label_lines.emplace_back(label, line_index);
        }
      }
      const std::size_t body_end = line_index;

      // Pass 2: instructions.
      IRBuilder builder(*module_);
      std::vector<PendingPhi> pending_phis;
      BasicBlock* current = nullptr;
      for (std::size_t i = header_line; i < body_end; ++i) {
        const std::string& line = lines_[i];
        if (is_blank(line)) continue;
        if (!std::isspace(static_cast<unsigned char>(line[0]))) {
          current = scope.blocks.at(line.substr(0, line.find(':')));
          continue;
        }
        if (current == nullptr) {
          error(static_cast<int>(i + 1), "instruction before first label");
          return;
        }
        Cursor cursor(line, static_cast<int>(i + 1));
        if (!parse_instruction(cursor, builder, current, scope,
                               pending_phis)) {
          return;
        }
        if (!errors_.empty()) return;
      }

      // Pass 3: phi incoming edges.
      for (PendingPhi& pending : pending_phis) {
        for (const auto& [operand_text, block_name] : pending.incoming) {
          Cursor cursor(operand_text, pending.line);
          Value* value =
              parse_operand(cursor, pending.phi->type(), scope);
          auto block_it = scope.blocks.find(block_name);
          if (!value || block_it == scope.blocks.end()) {
            error(pending.line, "unresolved phi incoming");
            return;
          }
          pending.phi->phi_add_incoming(value, block_it->second);
        }
      }
    }
  }

  std::vector<std::string> lines_;
  std::unique_ptr<Module> module_;
  std::vector<std::pair<Function*, std::size_t>> bodies_;
  std::vector<std::string> errors_;
};

}  // namespace

ParseResult parse_module(const std::string& text) {
  return Parser(text).run();
}

}  // namespace vulfi::ir
