#include "ir/type.hpp"

#include "support/str.hpp"

namespace vulfi::ir {

namespace {

const char* kind_spelling(TypeKind kind) {
  switch (kind) {
    case TypeKind::Void: return "void";
    case TypeKind::I1: return "i1";
    case TypeKind::I8: return "i8";
    case TypeKind::I16: return "i16";
    case TypeKind::I32: return "i32";
    case TypeKind::I64: return "i64";
    case TypeKind::F32: return "float";
    case TypeKind::F64: return "double";
    case TypeKind::Ptr: return "ptr";
  }
  return "?";
}

}  // namespace

std::string Type::to_string() const {
  if (!is_vector()) return kind_spelling(kind_);
  return strf("<%u x %s>", lanes_, kind_spelling(kind_));
}

}  // namespace vulfi::ir
