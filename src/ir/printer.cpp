#include "ir/printer.hpp"

#include "ir/basic_block.hpp"
#include "ir/function.hpp"
#include "ir/instruction.hpp"
#include "ir/module.hpp"
#include "ir/value.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::ir {

namespace {

std::string constant_lane(const Constant& c, unsigned lane) {
  const Type elem = c.type().element();
  if (c.is_undef()) return "undef";
  // Shortest-round-trip precision: %.9g recovers every float exactly,
  // %.17g every double — the printed module parses back bit-identical.
  if (elem.kind() == TypeKind::F32) {
    return strf("%.9g", c.as_double(lane));
  }
  if (elem.kind() == TypeKind::F64) {
    return strf("%.17g", c.as_double(lane));
  }
  if (elem.is_pointer()) return strf("ptr:%llu",
                                     static_cast<unsigned long long>(c.raw(lane)));
  return strf("%lld", static_cast<long long>(c.int_value(lane)));
}

std::string constant_ref(const Constant& c) {
  if (c.is_undef()) return "undef";
  if (!c.type().is_vector()) return constant_lane(c, 0);
  if (c.is_zero()) return "zeroinitializer";
  std::vector<std::string> lanes;
  lanes.reserve(c.type().lanes());
  for (unsigned lane = 0; lane < c.type().lanes(); ++lane) {
    lanes.push_back(strf("%s %s", c.type().element().to_string().c_str(),
                         constant_lane(c, lane).c_str()));
  }
  return "<" + join(lanes, ", ") + ">";
}

}  // namespace

std::string operand_ref(const Value& value) {
  switch (value.value_kind()) {
    case ValueKind::Constant:
      return constant_ref(static_cast<const Constant&>(value));
    case ValueKind::Argument:
    case ValueKind::Instruction:
      return "%" + value.name();
  }
  return "<?>";
}

namespace {

std::string typed_ref(const Value& value) {
  return value.type().to_string() + " " + operand_ref(value);
}

}  // namespace

std::string to_string(const Instruction& inst) {
  std::string out;
  if (!inst.type().is_void()) {
    out += "%" + inst.name() + " = ";
  }
  const Opcode op = inst.opcode();
  switch (op) {
    case Opcode::ICmp:
      out += strf("icmp %s %s, %s", icmp_pred_name(inst.icmp_pred()),
                  typed_ref(*inst.operand(0)).c_str(),
                  operand_ref(*inst.operand(1)).c_str());
      return out;
    case Opcode::FCmp:
      out += strf("fcmp %s %s, %s", fcmp_pred_name(inst.fcmp_pred()),
                  typed_ref(*inst.operand(0)).c_str(),
                  operand_ref(*inst.operand(1)).c_str());
      return out;
    case Opcode::Load:
      out += strf("load %s, %s", inst.type().to_string().c_str(),
                  typed_ref(*inst.operand(0)).c_str());
      return out;
    case Opcode::Store:
      out += strf("store %s, %s", typed_ref(*inst.operand(0)).c_str(),
                  typed_ref(*inst.operand(1)).c_str());
      return out;
    case Opcode::GetElementPtr: {
      out += strf("getelementptr %s", typed_ref(*inst.operand(0)).c_str());
      const auto& strides = inst.gep_strides();
      for (unsigned i = 1; i < inst.num_operands(); ++i) {
        out += strf(", %s (stride %llu)",
                    typed_ref(*inst.operand(i)).c_str(),
                    static_cast<unsigned long long>(strides[i - 1]));
      }
      return out;
    }
    case Opcode::Alloca:
      out += strf("alloca %llu bytes",
                  static_cast<unsigned long long>(inst.alloca_bytes()));
      return out;
    case Opcode::ShuffleVector: {
      std::vector<std::string> mask_elems;
      bool all_zero = true;
      for (int m : inst.shuffle_mask()) {
        all_zero = all_zero && m == 0;
        mask_elems.push_back(m < 0 ? "i32 undef" : strf("i32 %d", m));
      }
      out += strf("shufflevector %s, %s, ",
                  typed_ref(*inst.operand(0)).c_str(),
                  typed_ref(*inst.operand(1)).c_str());
      out += all_zero ? strf("<%zu x i32> zeroinitializer",
                             inst.shuffle_mask().size())
                      : "<" + join(mask_elems, ", ") + ">";
      return out;
    }
    case Opcode::Phi: {
      out += strf("phi %s ", inst.type().to_string().c_str());
      std::vector<std::string> incoming;
      const auto& blocks = inst.phi_incoming_blocks();
      for (unsigned i = 0; i < inst.num_operands(); ++i) {
        incoming.push_back(strf("[ %s, %%%s ]",
                                operand_ref(*inst.operand(i)).c_str(),
                                blocks[i]->name().c_str()));
      }
      out += join(incoming, ", ");
      return out;
    }
    case Opcode::Call: {
      std::vector<std::string> args;
      for (unsigned i = 0; i < inst.num_operands(); ++i) {
        args.push_back(typed_ref(*inst.operand(i)));
      }
      out += strf("call %s @%s(%s)",
                  inst.callee()->return_type().to_string().c_str(),
                  inst.callee()->name().c_str(), join(args, ", ").c_str());
      return out;
    }
    case Opcode::Br:
      return strf("br label %%%s", inst.successor(0)->name().c_str());
    case Opcode::CondBr:
      return strf("br %s, label %%%s, label %%%s",
                  typed_ref(*inst.operand(0)).c_str(),
                  inst.successor(0)->name().c_str(),
                  inst.successor(1)->name().c_str());
    case Opcode::Ret:
      if (inst.num_operands() == 0) return "ret void";
      return strf("ret %s", typed_ref(*inst.operand(0)).c_str());
    case Opcode::Unreachable:
      return "unreachable";
    case Opcode::Select:
      out += strf("select %s, %s, %s", typed_ref(*inst.operand(0)).c_str(),
                  typed_ref(*inst.operand(1)).c_str(),
                  typed_ref(*inst.operand(2)).c_str());
      return out;
    case Opcode::ExtractElement:
      out += strf("extractelement %s, %s",
                  typed_ref(*inst.operand(0)).c_str(),
                  typed_ref(*inst.operand(1)).c_str());
      return out;
    case Opcode::InsertElement:
      out += strf("insertelement %s, %s, %s",
                  typed_ref(*inst.operand(0)).c_str(),
                  typed_ref(*inst.operand(1)).c_str(),
                  typed_ref(*inst.operand(2)).c_str());
      return out;
    default: {
      // Binary ops, casts, fneg: "<op> <ty> <a>(, <b>)".
      out += opcode_name(op);
      out += " ";
      std::vector<std::string> refs;
      for (unsigned i = 0; i < inst.num_operands(); ++i) {
        refs.push_back(i == 0 ? typed_ref(*inst.operand(i))
                              : operand_ref(*inst.operand(i)));
      }
      out += join(refs, ", ");
      // Casts print the destination type.
      switch (op) {
        case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt:
        case Opcode::FPTrunc: case Opcode::FPExt: case Opcode::FPToSI:
        case Opcode::FPToUI: case Opcode::SIToFP: case Opcode::UIToFP:
        case Opcode::PtrToInt: case Opcode::IntToPtr: case Opcode::Bitcast:
          out += " to " + inst.type().to_string();
          break;
        default:
          break;
      }
      return out;
    }
  }
}

std::string to_string(const BasicBlock& block) {
  std::string out = block.name() + ":\n";
  for (const auto& inst : block) {
    out += "  " + to_string(*inst) + "\n";
  }
  return out;
}

std::string to_string(const Function& function) {
  std::vector<std::string> params;
  for (const auto& arg : function.args()) {
    params.push_back(arg->type().to_string() + " %" + arg->name());
  }
  if (!function.is_definition()) {
    return strf("declare %s @%s(%s)\n",
                function.return_type().to_string().c_str(),
                function.name().c_str(), join(params, ", ").c_str());
  }
  std::string out =
      strf("define %s @%s(%s) {\n",
           function.return_type().to_string().c_str(),
           function.name().c_str(), join(params, ", ").c_str());
  for (const auto& block : function) {
    out += to_string(*block);
  }
  out += "}\n";
  return out;
}

std::string to_string(const Module& module) {
  std::string out = "; module " + module.name() + "\n";
  for (const auto& fn : module.functions()) {
    out += "\n" + to_string(*fn);
  }
  return out;
}

}  // namespace vulfi::ir
