#include "ir/transforms.hpp"

#include <vector>

namespace vulfi::ir {

bool is_trivially_dead(const Instruction& inst) {
  if (inst.has_users()) return false;
  if (inst.is_terminator()) return false;
  switch (inst.opcode()) {
    case Opcode::Store:
      return false;
    case Opcode::Call: {
      const Function* callee = inst.callee();
      if (callee->kind() == FunctionKind::Runtime) return false;
      if (callee->kind() == FunctionKind::Definition) return false;
      // Intrinsics: everything except stores is side-effect-free.
      return callee->intrinsic_info().id != IntrinsicId::MaskStore;
    }
    default:
      return true;
  }
}

unsigned eliminate_dead_code(Function& fn) {
  if (!fn.is_definition()) return 0;
  unsigned removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& block : fn) {
      // Snapshot: erase invalidates the list position being removed.
      std::vector<Instruction*> dead;
      for (auto& inst : *block) {
        if (is_trivially_dead(*inst)) dead.push_back(inst.get());
      }
      for (Instruction* inst : dead) {
        block->erase(inst);
        removed += 1;
        changed = true;
      }
    }
  }
  return removed;
}

unsigned eliminate_dead_code(Module& module) {
  unsigned removed = 0;
  for (const auto& fn : module.functions()) {
    removed += eliminate_dead_code(*fn);
  }
  return removed;
}

}  // namespace vulfi::ir
