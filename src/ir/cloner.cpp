#include "ir/cloner.hpp"

#include <vector>

#include "support/error.hpp"

namespace vulfi::ir {

namespace {

class Cloner {
 public:
  explicit Cloner(const Module& source)
      : source_(source),
        clone_(std::make_unique<Module>(source.name())) {}

  std::unique_ptr<Module> run(CloneMap* external_map) {
    declare_functions();
    for (const auto& fn : source_.functions()) {
      if (fn->is_definition()) clone_body(*fn);
    }
    if (external_map) *external_map = std::move(map_);
    return std::move(clone_);
  }

 private:
  void declare_functions() {
    for (const auto& fn : source_.functions()) {
      std::vector<Type> params;
      params.reserve(fn->num_args());
      for (const auto& arg : fn->args()) params.push_back(arg->type());
      Function* copy = nullptr;
      switch (fn->kind()) {
        case FunctionKind::Definition:
          copy = clone_->create_function(fn->name(), fn->return_type(),
                                         std::move(params));
          break;
        case FunctionKind::Intrinsic:
        case FunctionKind::Runtime:
          // Copy wholesale so intrinsic metadata (mask operand indices
          // etc.) carries over identically.
          copy = clone_->clone_declaration(*fn);
          break;
      }
      map_.functions[fn.get()] = copy;
      for (unsigned i = 0; i < fn->num_args(); ++i) {
        copy->arg(i)->set_name(fn->arg(i)->name());
        map_.values[fn->arg(i)] = copy->arg(i);
      }
    }
  }

  Value* mapped(const Value* value) {
    if (value->value_kind() == ValueKind::Constant) {
      auto it = map_.values.find(value);
      if (it != map_.values.end()) return it->second;
      const auto* constant = static_cast<const Constant*>(value);
      Constant* copy;
      if (constant->is_undef()) {
        copy = clone_->const_undef(constant->type());
      } else {
        std::vector<std::uint64_t> raw(constant->type().lanes());
        for (unsigned lane = 0; lane < raw.size(); ++lane) {
          raw[lane] = constant->raw(lane);
        }
        copy = clone_->const_raw(constant->type(), std::move(raw));
      }
      map_.values[value] = copy;
      return copy;
    }
    auto it = map_.values.find(value);
    VULFI_ASSERT(it != map_.values.end(),
                 "clone encountered an unmapped value");
    return it->second;
  }

  Instruction* clone_instruction(const Instruction& inst,
                                 Function* target_fn) {
    switch (inst.opcode()) {
      case Opcode::ICmp:
        return Instruction::create_icmp(inst.icmp_pred(),
                                        mapped(inst.operand(0)),
                                        mapped(inst.operand(1)));
      case Opcode::FCmp:
        return Instruction::create_fcmp(inst.fcmp_pred(),
                                        mapped(inst.operand(0)),
                                        mapped(inst.operand(1)));
      case Opcode::ShuffleVector:
        return Instruction::create_shuffle(mapped(inst.operand(0)),
                                           mapped(inst.operand(1)),
                                           inst.shuffle_mask());
      case Opcode::Call: {
        std::vector<Value*> args;
        args.reserve(inst.num_operands());
        for (unsigned i = 0; i < inst.num_operands(); ++i) {
          args.push_back(mapped(inst.operand(i)));
        }
        return Instruction::create_call(
            map_.functions.at(inst.callee()), std::move(args));
      }
      case Opcode::Br:
        return Instruction::create_br(
            map_.blocks.at(inst.successor(0)));
      case Opcode::CondBr:
        return Instruction::create_cond_br(
            mapped(inst.operand(0)), map_.blocks.at(inst.successor(0)),
            map_.blocks.at(inst.successor(1)));
      case Opcode::Phi:
        // Incoming edges are wired in a second pass.
        return Instruction::create_phi(inst.type());
      case Opcode::GetElementPtr: {
        std::vector<Value*> indices;
        for (unsigned i = 1; i < inst.num_operands(); ++i) {
          indices.push_back(mapped(inst.operand(i)));
        }
        return Instruction::create_gep(mapped(inst.operand(0)),
                                       std::move(indices),
                                       inst.gep_strides());
      }
      case Opcode::Alloca:
        return Instruction::create_alloca(inst.alloca_bytes());
      case Opcode::Ret:
        return Instruction::create_ret(
            inst.num_operands() ? mapped(inst.operand(0)) : nullptr);
      default: {
        std::vector<Value*> operands;
        operands.reserve(inst.num_operands());
        for (unsigned i = 0; i < inst.num_operands(); ++i) {
          operands.push_back(mapped(inst.operand(i)));
        }
        (void)target_fn;
        return Instruction::create(inst.opcode(), inst.type(),
                                   std::move(operands));
      }
    }
  }

  void clone_body(const Function& fn) {
    Function* copy = map_.functions.at(&fn);
    // Pass 1: blocks (branch targets may be forward references).
    for (const auto& block : fn) {
      map_.blocks[block.get()] = copy->create_block(block->name());
    }
    // Pass 2: instructions in order; phis created empty.
    std::vector<std::pair<const Instruction*, Instruction*>> phis;
    for (const auto& block : fn) {
      BasicBlock* target = map_.blocks.at(block.get());
      for (const auto& inst : *block) {
        Instruction* copy_inst = clone_instruction(*inst, copy);
        copy_inst->set_name(inst->name());
        target->push_back(copy_inst);
        map_.values[inst.get()] = copy_inst;
        if (inst->opcode() == Opcode::Phi) {
          phis.emplace_back(inst.get(), copy_inst);
        }
      }
    }
    // Pass 3: phi incoming edges (all values/blocks now exist).
    for (auto& [original, copy_phi] : phis) {
      const auto& blocks = original->phi_incoming_blocks();
      for (unsigned i = 0; i < original->num_operands(); ++i) {
        copy_phi->phi_add_incoming(mapped(original->operand(i)),
                                   map_.blocks.at(blocks[i]));
      }
    }
  }

  const Module& source_;
  std::unique_ptr<Module> clone_;
  CloneMap map_;
};

}  // namespace

std::unique_ptr<Module> clone_module(const Module& source) {
  return clone_module(source, nullptr);
}

std::unique_ptr<Module> clone_module(const Module& source, CloneMap* map) {
  return Cloner(source).run(map);
}

}  // namespace vulfi::ir
