// Textual IR printing in an LLVM-flavoured syntax. Used by tests (golden
// patterns for the SPMD lowering and the instrumentor, mirroring the IR
// listings in the paper's Figures 5, 7 and 9) and for debugging.
#pragma once

#include <string>

namespace vulfi::ir {

class Module;
class Function;
class BasicBlock;
class Instruction;
class Value;

std::string to_string(const Module& module);
std::string to_string(const Function& function);
std::string to_string(const BasicBlock& block);
std::string to_string(const Instruction& inst);

/// Operand reference spelling: "%name" for instructions/arguments, the
/// literal for constants ("42", "3.5", "<i32 0, i32 1, ...>", "undef").
std::string operand_ref(const Value& value);

}  // namespace vulfi::ir
