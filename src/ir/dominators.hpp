// Dominator tree over a function's CFG.
//
// Cooper–Harvey–Kennedy iterative dominators ("A Simple, Fast Dominance
// Algorithm") over a reverse-postorder numbering. This used to live as a
// private detail of the verifier; it is now a first-class IR utility so the
// verifier, the analysis pass framework, and the lint driver all share one
// implementation (and one set of unreachable-block conventions).
//
// Conventions for unreachable blocks (no path from entry): they have no
// immediate dominator, `reachable()` is false, and `dominates()` involving
// an unreachable block follows the verifier's historical convention —
// everything vacuously dominates an unreachable block, and an unreachable
// block dominates nothing (except itself).
#pragma once

#include <unordered_map>
#include <vector>

namespace vulfi::ir {

class BasicBlock;
class Function;
class Instruction;

class DominatorTree {
 public:
  /// Builds the tree for `fn` (must be a definition with >= 1 block).
  explicit DominatorTree(const Function& fn);

  const Function& function() const { return *fn_; }

  /// False for blocks with no CFG path from the entry block.
  bool reachable(const BasicBlock* block) const;

  /// All blocks with no CFG path from entry, in layout order.
  const std::vector<const BasicBlock*>& unreachable_blocks() const {
    return unreachable_;
  }

  /// Immediate dominator; nullptr for the entry block and for
  /// unreachable blocks.
  const BasicBlock* idom(const BasicBlock* block) const;

  /// Block-level dominance (reflexive). Follows the verifier convention
  /// for unreachable blocks: if `b` is unreachable the query is true, and
  /// an unreachable `a` dominates only itself.
  bool dominates(const BasicBlock* a, const BasicBlock* b) const;

  /// Instruction-level dominance: does `def` dominate `use`? Within one
  /// block this is strict program order (a definition does not dominate
  /// itself or earlier instructions).
  bool dominates(const Instruction* def, const Instruction* use) const;

  /// Does `def` dominate the end of `block`? The dominance rule for a phi
  /// incoming value on the edge from `block`.
  bool dominates_block_end(const Instruction* def,
                           const BasicBlock* block) const;

  /// Blocks in reverse postorder (reachable blocks only).
  const std::vector<const BasicBlock*>& rpo() const { return rpo_; }

 private:
  int index_of(const BasicBlock* block) const;
  bool block_dominates(int a, int b) const;
  /// (block id, position in block) for intra-block ordering; computed
  /// lazily on the first instruction-level query.
  const std::unordered_map<const Instruction*, std::pair<int, int>>&
  positions() const;

  const Function* fn_;
  std::vector<const BasicBlock*> blocks_;          // layout order
  std::unordered_map<const BasicBlock*, int> ids_;  // block -> layout index
  std::vector<int> idom_;        // layout index -> idom layout index (-1)
  std::vector<int> rpo_number_;  // layout index -> RPO position (-1)
  std::vector<const BasicBlock*> rpo_;
  std::vector<const BasicBlock*> unreachable_;
  mutable std::unordered_map<const Instruction*, std::pair<int, int>>
      positions_;
};

}  // namespace vulfi::ir
