#include "ir/value.hpp"

#include <algorithm>
#include <bit>

#include "ir/instruction.hpp"
#include "support/error.hpp"

namespace vulfi::ir {

void Value::replace_all_uses_with(Value* replacement) {
  replace_uses_with_if(replacement,
                       [](const Instruction&) { return true; });
}

void Value::replace_uses_with_if(
    Value* replacement,
    const std::function<bool(const Instruction&)>& should_replace) {
  VULFI_ASSERT(replacement != nullptr, "replacement must be non-null");
  VULFI_ASSERT(replacement != this, "cannot replace a value with itself");
  VULFI_ASSERT(replacement->type() == type(),
               "replacement type must match original type");
  // Snapshot: set_operand edits users_ while we iterate.
  const std::vector<Instruction*> snapshot = users_;
  for (Instruction* user : snapshot) {
    if (!should_replace(*user)) continue;
    for (unsigned i = 0; i < user->num_operands(); ++i) {
      if (user->operand(i) == this) user->set_operand(i, replacement);
    }
  }
}

void Value::remove_user(const Instruction* user) {
  auto it = std::find(users_.begin(), users_.end(), user);
  VULFI_ASSERT(it != users_.end(), "remove_user: not a user");
  users_.erase(it);
}

Constant::Constant(Type type, std::vector<std::uint64_t> raw_lanes,
                   bool undef)
    : Value(ValueKind::Constant, type),
      raw_(std::move(raw_lanes)),
      undef_(undef) {
  VULFI_ASSERT(!type.is_void(), "constants cannot be void");
  VULFI_ASSERT(raw_.size() == type.lanes(),
               "constant lane count must match type lane count");
  if (type.is_integer()) {
    for (auto& lane : raw_) {
      lane = truncate_to_width(lane, type.element_bits());
    }
  }
}

std::uint64_t Constant::raw(unsigned lane) const {
  VULFI_ASSERT(lane < raw_.size(), "constant lane out of range");
  return raw_[lane];
}

std::int64_t Constant::int_value(unsigned lane) const {
  VULFI_ASSERT(type().is_integer(), "int_value on non-integer constant");
  return sign_extend(raw(lane), type().element_bits());
}

float Constant::f32_value(unsigned lane) const {
  VULFI_ASSERT(type().kind() == TypeKind::F32, "f32_value on non-f32");
  return std::bit_cast<float>(static_cast<std::uint32_t>(raw(lane)));
}

double Constant::f64_value(unsigned lane) const {
  VULFI_ASSERT(type().kind() == TypeKind::F64, "f64_value on non-f64");
  return std::bit_cast<double>(raw(lane));
}

double Constant::as_double(unsigned lane) const {
  if (type().kind() == TypeKind::F32) return f32_value(lane);
  if (type().kind() == TypeKind::F64) return f64_value(lane);
  if (type().is_integer()) return static_cast<double>(int_value(lane));
  return static_cast<double>(raw(lane));
}

bool Constant::is_zero() const {
  if (undef_) return false;
  return std::all_of(raw_.begin(), raw_.end(),
                     [](std::uint64_t lane) { return lane == 0; });
}

bool Constant::is_splat() const {
  return std::all_of(raw_.begin(), raw_.end(),
                     [&](std::uint64_t lane) { return lane == raw_[0]; });
}

std::uint64_t Constant::truncate_to_width(std::uint64_t bits,
                                          unsigned width) {
  if (width >= 64) return bits;
  return bits & ((std::uint64_t{1} << width) - 1);
}

std::int64_t Constant::sign_extend(std::uint64_t bits, unsigned width) {
  if (width >= 64) return static_cast<std::int64_t>(bits);
  const std::uint64_t sign_bit = std::uint64_t{1} << (width - 1);
  const std::uint64_t truncated = truncate_to_width(bits, width);
  if (truncated & sign_bit) {
    return static_cast<std::int64_t>(truncated | ~((sign_bit << 1) - 1));
  }
  return static_cast<std::int64_t>(truncated);
}

}  // namespace vulfi::ir
