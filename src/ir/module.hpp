// Module: the translation unit. Owns functions and constants and provides
// the factory API used by kernel builders and passes.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "ir/intrinsics.hpp"
#include "ir/type.hpp"
#include "ir/value.hpp"

namespace vulfi::ir {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  /// Severs every def-use edge before the owning containers die, so
  /// instruction destructors never touch freed values (use-lists span
  /// blocks, functions, and the constant pool in arbitrary order).
  ~Module();

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  // --- functions ------------------------------------------------------
  Function* create_function(std::string name, Type return_type,
                            std::vector<Type> param_types);

  /// Declares (or returns the cached declaration of) a masked memory
  /// intrinsic for the given ISA and vector data type.
  Function* declare_masked_intrinsic(IntrinsicId id, Isa isa, Type data_type);

  /// Declares a math intrinsic for `type` (elementwise for vectors).
  Function* declare_math_intrinsic(IntrinsicId id, Type type);

  /// Declares the movmsk intrinsic (<N x T>) -> i32 for the given ISA.
  Function* declare_movmsk(Isa isa, Type data_type);

  /// Declares a runtime function dispatched by name to a host callback.
  Function* declare_runtime(std::string name, Type return_type,
                            std::vector<Type> param_types);

  /// Copies a declaration (intrinsic or runtime) from another module,
  /// preserving its kind and intrinsic metadata. Used by the cloner.
  Function* clone_declaration(const Function& declaration);

  /// Declares a function with explicit kind and intrinsic metadata. Used
  /// by the textual parser, which reconstructs the metadata from the
  /// declared name.
  Function* declare_exact(std::string name, Type return_type,
                          std::vector<Type> param_types, FunctionKind kind,
                          IntrinsicInfo info);

  Function* find_function(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }

  // --- constants --------------------------------------------------------
  /// Integer splat of `value` (also used for i1 booleans and pointers).
  Constant* const_int(Type type, std::int64_t value);
  /// Integer vector with one value per lane.
  Constant* const_int_lanes(Type type, const std::vector<std::int64_t>& lanes);
  Constant* const_f32(Type type, float value);
  Constant* const_f64(Type type, double value);
  /// Float splat dispatching on element kind (f32 or f64).
  Constant* const_fp(Type type, double value);
  Constant* const_f32_lanes(Type type, const std::vector<float>& lanes);
  Constant* const_zero(Type type);
  Constant* const_undef(Type type);
  Constant* const_bool(bool value);
  /// Raw per-lane bit patterns (the general constructor).
  Constant* const_raw(Type type, std::vector<std::uint64_t> raw_lanes);
  /// The canonical <lanes x i32> constant <0, 1, 2, ...> used by foreach
  /// lowering to compute per-lane indices (the "programIndex" of ISPC).
  Constant* const_lane_sequence(unsigned lanes);

 private:
  Function* add_function(std::string name, Type return_type,
                         std::vector<Type> param_types, FunctionKind kind,
                         IntrinsicInfo info);

  std::string name_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::unique_ptr<Constant>> constants_;
};

}  // namespace vulfi::ir
