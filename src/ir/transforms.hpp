// IR-level transformations.
//
// The paper studies ISPC output at -O3 (§II-A "code generation"); dead
// definitions do not survive into the binaries it injects faults into.
// KernelBuilder therefore runs dead-code elimination after construction so
// the fault-site population matches what an optimizing code generator
// would produce — without it, dead index chains would register as
// always-benign pure-data sites and skew SDC rates.
#pragma once

#include "ir/function.hpp"
#include "ir/module.hpp"

namespace vulfi::ir {

/// True when removing an unused `inst` cannot change program behaviour:
/// no memory writes, no runtime calls, not a terminator. Unused masked
/// loads are removable (LLVM marks them readonly), as are math intrinsics
/// and movmsk.
bool is_trivially_dead(const Instruction& inst);

/// Iteratively removes dead instructions; returns how many were removed.
unsigned eliminate_dead_code(Function& fn);
unsigned eliminate_dead_code(Module& module);

}  // namespace vulfi::ir
