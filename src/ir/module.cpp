#include "ir/module.hpp"

#include "support/error.hpp"

namespace vulfi::ir {

Module::~Module() {
  for (auto& fn : functions_) {
    for (auto& block : *fn) {
      for (auto& inst : *block) {
        inst->drop_operand_uses();
      }
    }
  }
}

Function* Module::add_function(std::string name, Type return_type,
                               std::vector<Type> param_types,
                               FunctionKind kind, IntrinsicInfo info) {
  VULFI_ASSERT(find_function(name) == nullptr,
               "function with this name already exists in module");
  functions_.push_back(std::unique_ptr<Function>(
      new Function(std::move(name), return_type, std::move(param_types),
                   kind, info, this)));
  return functions_.back().get();
}

Function* Module::create_function(std::string name, Type return_type,
                                  std::vector<Type> param_types) {
  return add_function(std::move(name), return_type, std::move(param_types),
                      FunctionKind::Definition, IntrinsicInfo{});
}

Function* Module::declare_masked_intrinsic(IntrinsicId id, Isa isa,
                                           Type data_type) {
  VULFI_ASSERT(id == IntrinsicId::MaskLoad || id == IntrinsicId::MaskStore,
               "not a masked memory intrinsic");
  const std::string name = masked_intrinsic_name(id, isa, data_type);
  if (Function* existing = find_function(name)) return existing;

  IntrinsicInfo info;
  info.id = id;
  if (id == IntrinsicId::MaskLoad) {
    // (ptr base, <N x T> mask) -> <N x T>
    info.mask_operand = 1;
    return add_function(name, data_type, {Type::ptr(), data_type},
                        FunctionKind::Intrinsic, info);
  }
  // (ptr base, <N x T> mask, <N x T> data) -> void
  info.mask_operand = 1;
  info.data_operand = 2;
  return add_function(name, Type::void_ty(),
                      {Type::ptr(), data_type, data_type},
                      FunctionKind::Intrinsic, info);
}

Function* Module::declare_math_intrinsic(IntrinsicId id, Type type) {
  VULFI_ASSERT(is_math_intrinsic(id), "not a math intrinsic");
  const std::string name = math_intrinsic_name(id, type);
  if (Function* existing = find_function(name)) return existing;
  IntrinsicInfo info;
  info.id = id;
  std::vector<Type> params = {type};
  if (math_intrinsic_is_binary(id)) params.push_back(type);
  return add_function(name, type, std::move(params), FunctionKind::Intrinsic,
                      info);
}

Function* Module::declare_movmsk(Isa isa, Type data_type) {
  const std::string name = movmsk_intrinsic_name(isa, data_type);
  if (Function* existing = find_function(name)) return existing;
  IntrinsicInfo info;
  info.id = IntrinsicId::MoveMask;
  return add_function(name, Type::i32(), {data_type},
                      FunctionKind::Intrinsic, info);
}

Function* Module::declare_runtime(std::string name, Type return_type,
                                  std::vector<Type> param_types) {
  if (Function* existing = find_function(name)) {
    VULFI_ASSERT(existing->kind() == FunctionKind::Runtime,
                 "name clash between runtime and non-runtime function");
    return existing;
  }
  return add_function(std::move(name), return_type, std::move(param_types),
                      FunctionKind::Runtime, IntrinsicInfo{});
}

Function* Module::clone_declaration(const Function& declaration) {
  VULFI_ASSERT(!declaration.is_definition(),
               "clone_declaration takes declarations only");
  if (Function* existing = find_function(declaration.name())) {
    return existing;
  }
  std::vector<Type> params;
  params.reserve(declaration.num_args());
  for (const auto& arg : declaration.args()) params.push_back(arg->type());
  return add_function(declaration.name(), declaration.return_type(),
                      std::move(params), declaration.kind(),
                      declaration.intrinsic_info());
}

Function* Module::declare_exact(std::string name, Type return_type,
                                std::vector<Type> param_types,
                                FunctionKind kind, IntrinsicInfo info) {
  return add_function(std::move(name), return_type, std::move(param_types),
                      kind, info);
}

Function* Module::find_function(const std::string& name) const {
  for (const auto& fn : functions_) {
    if (fn->name() == name) return fn.get();
  }
  return nullptr;
}

Constant* Module::const_raw(Type type, std::vector<std::uint64_t> raw_lanes) {
  constants_.push_back(
      std::make_unique<Constant>(type, std::move(raw_lanes), false));
  return constants_.back().get();
}

Constant* Module::const_int(Type type, std::int64_t value) {
  VULFI_ASSERT(type.is_integer() || type.is_pointer(),
               "const_int requires an integer or pointer type");
  std::vector<std::uint64_t> lanes(type.lanes(),
                                   static_cast<std::uint64_t>(value));
  return const_raw(type, std::move(lanes));
}

Constant* Module::const_int_lanes(Type type,
                                  const std::vector<std::int64_t>& lanes) {
  VULFI_ASSERT(type.is_integer(), "const_int_lanes requires integer type");
  VULFI_ASSERT(lanes.size() == type.lanes(), "lane count mismatch");
  std::vector<std::uint64_t> raw(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    raw[i] = static_cast<std::uint64_t>(lanes[i]);
  }
  return const_raw(type, std::move(raw));
}

Constant* Module::const_f32(Type type, float value) {
  VULFI_ASSERT(type.kind() == TypeKind::F32, "const_f32 requires f32 lanes");
  std::vector<std::uint64_t> lanes(type.lanes(),
                                   std::bit_cast<std::uint32_t>(value));
  return const_raw(type, std::move(lanes));
}

Constant* Module::const_f64(Type type, double value) {
  VULFI_ASSERT(type.kind() == TypeKind::F64, "const_f64 requires f64 lanes");
  std::vector<std::uint64_t> lanes(type.lanes(),
                                   std::bit_cast<std::uint64_t>(value));
  return const_raw(type, std::move(lanes));
}

Constant* Module::const_fp(Type type, double value) {
  if (type.kind() == TypeKind::F32) {
    return const_f32(type, static_cast<float>(value));
  }
  return const_f64(type, value);
}

Constant* Module::const_f32_lanes(Type type, const std::vector<float>& lanes) {
  VULFI_ASSERT(type.kind() == TypeKind::F32, "const_f32_lanes requires f32");
  VULFI_ASSERT(lanes.size() == type.lanes(), "lane count mismatch");
  std::vector<std::uint64_t> raw(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    raw[i] = std::bit_cast<std::uint32_t>(lanes[i]);
  }
  return const_raw(type, std::move(raw));
}

Constant* Module::const_zero(Type type) {
  return const_raw(type, std::vector<std::uint64_t>(type.lanes(), 0));
}

Constant* Module::const_undef(Type type) {
  constants_.push_back(std::make_unique<Constant>(
      type, std::vector<std::uint64_t>(type.lanes(), 0), true));
  return constants_.back().get();
}

Constant* Module::const_bool(bool value) {
  return const_int(Type::i1(), value ? 1 : 0);
}

Constant* Module::const_lane_sequence(unsigned lanes) {
  VULFI_ASSERT(lanes >= 1, "lane sequence needs at least one lane");
  std::vector<std::uint64_t> raw(lanes);
  for (unsigned i = 0; i < lanes; ++i) raw[i] = i;
  return const_raw(Type::vector(TypeKind::I32, lanes), std::move(raw));
}

}  // namespace vulfi::ir
