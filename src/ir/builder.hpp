// IRBuilder: typed convenience API for emitting instructions at an
// insertion point, in the style of llvm::IRBuilder. All kernel builders,
// the SPMD lowering layer, the VULFI instrumentor and the detector passes
// construct IR exclusively through this class, which enforces operand
// typing rules at build time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/basic_block.hpp"
#include "ir/instruction.hpp"
#include "ir/module.hpp"

namespace vulfi::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module) {}

  Module& module() { return module_; }

  // --- insertion point --------------------------------------------------
  /// Appends at the end of `block` (before nothing).
  void set_insert_block(BasicBlock* block);
  /// Inserts before `pos` within `block`.
  void set_insert_point(BasicBlock* block, BasicBlock::iterator pos);
  /// Inserts immediately after `inst` (which must be in a block).
  void set_insert_after(Instruction* inst);
  /// Inserts immediately before `inst`.
  void set_insert_before(Instruction* inst);
  BasicBlock* insert_block() const { return block_; }

  // --- arithmetic ---------------------------------------------------------
  Value* add(Value* lhs, Value* rhs, std::string name = "");
  Value* sub(Value* lhs, Value* rhs, std::string name = "");
  Value* mul(Value* lhs, Value* rhs, std::string name = "");
  Value* sdiv(Value* lhs, Value* rhs, std::string name = "");
  Value* udiv(Value* lhs, Value* rhs, std::string name = "");
  Value* srem(Value* lhs, Value* rhs, std::string name = "");
  Value* urem(Value* lhs, Value* rhs, std::string name = "");
  Value* shl(Value* lhs, Value* rhs, std::string name = "");
  Value* lshr(Value* lhs, Value* rhs, std::string name = "");
  Value* ashr(Value* lhs, Value* rhs, std::string name = "");
  Value* and_(Value* lhs, Value* rhs, std::string name = "");
  Value* or_(Value* lhs, Value* rhs, std::string name = "");
  Value* xor_(Value* lhs, Value* rhs, std::string name = "");
  Value* fadd(Value* lhs, Value* rhs, std::string name = "");
  Value* fsub(Value* lhs, Value* rhs, std::string name = "");
  Value* fmul(Value* lhs, Value* rhs, std::string name = "");
  Value* fdiv(Value* lhs, Value* rhs, std::string name = "");
  Value* frem(Value* lhs, Value* rhs, std::string name = "");
  Value* fneg(Value* operand, std::string name = "");

  // --- comparisons -------------------------------------------------------
  Value* icmp(ICmpPred pred, Value* lhs, Value* rhs, std::string name = "");
  Value* fcmp(FCmpPred pred, Value* lhs, Value* rhs, std::string name = "");

  // --- memory -------------------------------------------------------------
  Value* alloca_bytes(std::uint64_t bytes, std::string name = "");
  Value* load(Type type, Value* ptr, std::string name = "");
  Instruction* store(Value* value, Value* ptr);
  /// getelementptr with one index: address = base + index * stride_bytes.
  Value* gep(Value* base, Value* index, std::uint64_t stride_bytes,
             std::string name = "");
  /// Multi-index form: address = base + sum(index_i * stride_i).
  Value* gep(Value* base, std::vector<Value*> indices,
             std::vector<std::uint64_t> strides, std::string name = "");

  // --- vector ---------------------------------------------------------------
  Value* extract_element(Value* vec, Value* index, std::string name = "");
  Value* extract_element(Value* vec, unsigned index, std::string name = "");
  Value* insert_element(Value* vec, Value* elem, Value* index,
                        std::string name = "");
  Value* insert_element(Value* vec, Value* elem, unsigned index,
                        std::string name = "");
  Value* shuffle(Value* v1, Value* v2, std::vector<int> mask,
                 std::string name = "");
  /// Scalar -> vector splat via the insertelement + shufflevector idiom the
  /// ISPC compiler emits for uniform values (paper Figure 9).
  Value* broadcast(Value* scalar, unsigned lanes, std::string name = "");

  // --- casts ---------------------------------------------------------------
  Value* trunc(Value* operand, Type to, std::string name = "");
  Value* zext(Value* operand, Type to, std::string name = "");
  Value* sext(Value* operand, Type to, std::string name = "");
  Value* fptrunc(Value* operand, Type to, std::string name = "");
  Value* fpext(Value* operand, Type to, std::string name = "");
  Value* fptosi(Value* operand, Type to, std::string name = "");
  Value* fptoui(Value* operand, Type to, std::string name = "");
  Value* sitofp(Value* operand, Type to, std::string name = "");
  Value* uitofp(Value* operand, Type to, std::string name = "");
  Value* ptrtoint(Value* operand, Type to, std::string name = "");
  Value* inttoptr(Value* operand, std::string name = "");
  Value* bitcast(Value* operand, Type to, std::string name = "");

  // --- control / other ------------------------------------------------------
  Instruction* phi(Type type, std::string name = "");
  Value* select(Value* cond, Value* on_true, Value* on_false,
                std::string name = "");
  Value* call(Function* callee, std::vector<Value*> args,
              std::string name = "");
  Instruction* br(BasicBlock* target);
  Instruction* cond_br(Value* cond, BasicBlock* then_block,
                       BasicBlock* else_block);
  Instruction* ret(Value* value = nullptr);
  Instruction* unreachable();

  // --- constants (module-owned, exposed here for terseness) -----------------
  Constant* i32_const(std::int64_t value) {
    return module_.const_int(Type::i32(), value);
  }
  Constant* i64_const(std::int64_t value) {
    return module_.const_int(Type::i64(), value);
  }
  Constant* f32_const(float value) {
    return module_.const_f32(Type::f32(), value);
  }
  Constant* f64_const(double value) {
    return module_.const_f64(Type::f64(), value);
  }
  Constant* bool_const(bool value) { return module_.const_bool(value); }

 private:
  Value* binary(Opcode op, Value* lhs, Value* rhs, std::string name,
                bool is_fp);
  Value* cast(Opcode op, Value* operand, Type to, std::string name);
  Instruction* emit(Instruction* inst, std::string name);

  Module& module_;
  BasicBlock* block_ = nullptr;
  BasicBlock::iterator pos_{};
  unsigned name_counter_ = 0;
};

}  // namespace vulfi::ir
