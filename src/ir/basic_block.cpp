#include "ir/basic_block.hpp"

#include "ir/function.hpp"
#include "support/error.hpp"

namespace vulfi::ir {

Instruction* BasicBlock::push_back(Instruction* inst) {
  VULFI_ASSERT(inst != nullptr, "push_back: null instruction");
  VULFI_ASSERT(inst->parent_ == nullptr, "instruction already in a block");
  inst->parent_ = this;
  if (!inst->name().empty()) {
    inst->set_name(parent_->uniquify_value_name(inst->name()));
  }
  insts_.emplace_back(inst);
  return inst;
}

Instruction* BasicBlock::insert(iterator pos, Instruction* inst) {
  VULFI_ASSERT(inst != nullptr, "insert: null instruction");
  VULFI_ASSERT(inst->parent_ == nullptr, "instruction already in a block");
  inst->parent_ = this;
  if (!inst->name().empty()) {
    inst->set_name(parent_->uniquify_value_name(inst->name()));
  }
  insts_.emplace(pos, inst);
  return inst;
}

BasicBlock::iterator BasicBlock::position_of(const Instruction* inst) {
  for (auto it = insts_.begin(); it != insts_.end(); ++it) {
    if (it->get() == inst) return it;
  }
  VULFI_UNREACHABLE("instruction not found in block");
}

void BasicBlock::erase(Instruction* inst) {
  VULFI_ASSERT(!inst->has_users(), "erasing an instruction that has users");
  auto it = position_of(inst);
  insts_.erase(it);
}

const Instruction* BasicBlock::terminator() const {
  if (insts_.empty()) return nullptr;
  const Instruction* last = insts_.back().get();
  return last->is_terminator() ? last : nullptr;
}

Instruction* BasicBlock::terminator() {
  if (insts_.empty()) return nullptr;
  Instruction* last = insts_.back().get();
  return last->is_terminator() ? last : nullptr;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  std::vector<BasicBlock*> out;
  const Instruction* term = terminator();
  if (!term) return out;
  for (unsigned i = 0; i < term->num_successors(); ++i) {
    out.push_back(term->successor(i));
  }
  return out;
}

}  // namespace vulfi::ir
