// SSA value base class, function arguments, and constants.
//
// Every producer of data in the IR is a Value. Instructions track the
// values they consume (operands) and every Value tracks the instructions
// consuming it (users, one entry per use occurrence). VULFI's
// instrumentation workflow (paper Figure 4) relies on this: after cloning
// and instrumenting a vector register it "redirects all the users of the
// original vector register" — implemented here as
// Value::replace_all_uses_with.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace vulfi::ir {

class Instruction;
class Function;

enum class ValueKind : std::uint8_t {
  Argument,
  Constant,
  Instruction,
};

class Value {
 public:
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;
  virtual ~Value() = default;

  ValueKind value_kind() const { return value_kind_; }
  Type type() const { return type_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Instructions using this value; one entry per use occurrence, so a
  /// value used twice by the same instruction appears twice.
  const std::vector<Instruction*>& users() const { return users_; }
  bool has_users() const { return !users_.empty(); }

  /// Redirects every use of this value to `replacement`.
  void replace_all_uses_with(Value* replacement);

  /// Redirects uses for which `should_replace(user)` holds. VULFI uses
  /// this to exclude the freshly inserted extract/inject/insert chain when
  /// redirecting users of the original register (paper Figure 5).
  void replace_uses_with_if(
      Value* replacement,
      const std::function<bool(const Instruction&)>& should_replace);

 protected:
  Value(ValueKind kind, Type type) : value_kind_(kind), type_(type) {}

 private:
  friend class Instruction;

  void add_user(Instruction* user) { users_.push_back(user); }
  void remove_user(const Instruction* user);

  ValueKind value_kind_;
  Type type_;
  std::string name_;
  std::vector<Instruction*> users_;
};

/// A formal parameter of a Function.
class Argument final : public Value {
 public:
  Argument(Type type, unsigned index, Function* parent)
      : Value(ValueKind::Argument, type), index_(index), parent_(parent) {}

  unsigned index() const { return index_; }
  Function* parent() const { return parent_; }

 private:
  unsigned index_;
  Function* parent_;
};

/// A typed constant. Elements are stored as raw bit patterns (one 64-bit
/// word per lane): integers are kept zero-extended to 64 bits, f32 as the
/// IEEE-754 single bit pattern in the low 32 bits, f64/pointers as the full
/// 64-bit pattern. Raw storage keeps the fault-injection runtime and the
/// interpreter bit-exact.
class Constant final : public Value {
 public:
  /// Typed zero / splat / per-lane constructors. Created via Module
  /// factory helpers which own the allocation.
  Constant(Type type, std::vector<std::uint64_t> raw_lanes, bool undef);

  bool is_undef() const { return undef_; }

  std::uint64_t raw(unsigned lane = 0) const;
  /// Integer lane value sign-extended from the element width.
  std::int64_t int_value(unsigned lane = 0) const;
  float f32_value(unsigned lane = 0) const;
  double f64_value(unsigned lane = 0) const;
  /// Numeric value of an int or fp lane as double (printer convenience).
  double as_double(unsigned lane = 0) const;

  bool is_zero() const;
  /// True when all lanes hold the same bit pattern.
  bool is_splat() const;

  /// Masks `bits` to the width of `type` (element-wise semantics used for
  /// integer lanes everywhere in the library).
  static std::uint64_t truncate_to_width(std::uint64_t bits, unsigned width);
  static std::int64_t sign_extend(std::uint64_t bits, unsigned width);

 private:
  std::vector<std::uint64_t> raw_;
  bool undef_;
};

}  // namespace vulfi::ir
