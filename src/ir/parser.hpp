// Textual IR parser.
//
// Parses the syntax the printer emits (printer.hpp), closing the
// round-trip: to_string(parse(to_string(M))) == to_string(M). Used for
// textual test fixtures and for inspecting/replaying dumped kernels.
//
// Error handling: parse errors are reported as diagnostics with line
// numbers; a failed parse returns nullptr and at least one diagnostic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace vulfi::ir {

struct ParseResult {
  std::unique_ptr<Module> module;  // nullptr on failure
  std::vector<std::string> errors;

  bool ok() const { return module != nullptr && errors.empty(); }
};

/// Parses a whole module ("; module <name>" header plus functions).
ParseResult parse_module(const std::string& text);

}  // namespace vulfi::ir
