// Host runtime environment.
//
// IR modules declare runtime functions (FunctionKind::Runtime) such as the
// VULFI injection API (`vulfi.inject.f32`, paper Figure 5's
// @injectFaultFloatTy) and the detector API (`vulfi.detect.foreach`,
// Figure 7's @checkInvariantsForeachFullBody). The interpreter dispatches
// those calls by name to handlers registered here — the moral equivalent
// of linking the instrumented binary against the VULFI runtime library.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/rtval.hpp"

namespace vulfi::interp {

using RuntimeHandler = std::function<RtVal(const std::vector<RtVal>& args)>;

/// Optional C-ABI fast path for a runtime handler whose IR signature is
/// fully scalar — T(T value, T mask_element, i64 site_id, i32 lane), the
/// injection API's shape. A compiled backend may call `fn(self, ...)`
/// with raw lane words (RtVal::raw encoding) instead of marshalling
/// RtVals through the std::function handler. Contract: the raw call is
/// observably equivalent to the RtVal handler on the same words, never
/// traps, and `self`/`fn` stay valid for the environment's lifetime —
/// compiled code bakes both in, so register before any compilation.
struct RawRuntimeHandler {
  void* self = nullptr;
  std::uint64_t (*fn)(void* self, std::uint64_t value, std::uint64_t mask,
                      std::uint64_t site_id, std::uint64_t lane) = nullptr;
};

/// Shared flag the detector runtime raises when an inserted checker
/// (foreach invariants, uniform-broadcast equality) observes a violated
/// invariant during a run. The experiment driver resets it per run and
/// reads it to report detection rates (paper Figure 12).
struct DetectionLog {
  std::uint64_t events = 0;

  void reset() { events = 0; }
  bool any() const { return events > 0; }
};

class RuntimeEnv {
 public:
  /// Registers (or replaces) the handler for runtime function `name`.
  void register_handler(std::string name, RuntimeHandler handler);

  bool has_handler(const std::string& name) const;

  /// Stable pointer to the handler registered for `name`, or nullptr.
  /// unordered_map's node-based storage keeps the pointer valid across
  /// later registrations, and re-registering a name replaces the mapped
  /// std::function in place — so the JIT can resolve handlers once at
  /// compile time and still observe per-run handler swaps.
  const RuntimeHandler* find_handler(const std::string& name) const;

  /// Invokes the handler; aborts if none is registered (an instrumented
  /// module without its runtime is a harness bug, not a program fault).
  RtVal invoke(const std::string& name,
               const std::vector<RtVal>& args) const;

  /// Registers (or replaces) the raw fast path for `name`. The RtVal
  /// handler must be registered too — backends that don't compile (and
  /// the reference interpreter) keep using it.
  void register_raw_handler(std::string name, RawRuntimeHandler raw);

  /// Stable pointer to the raw fast path for `name`, or nullptr when the
  /// handler has none (same node-stability guarantee as find_handler).
  const RawRuntimeHandler* find_raw_handler(const std::string& name) const;

 private:
  std::unordered_map<std::string, RuntimeHandler> handlers_;
  std::unordered_map<std::string, RawRuntimeHandler> raw_handlers_;
};

}  // namespace vulfi::interp
