// Host runtime environment.
//
// IR modules declare runtime functions (FunctionKind::Runtime) such as the
// VULFI injection API (`vulfi.inject.f32`, paper Figure 5's
// @injectFaultFloatTy) and the detector API (`vulfi.detect.foreach`,
// Figure 7's @checkInvariantsForeachFullBody). The interpreter dispatches
// those calls by name to handlers registered here — the moral equivalent
// of linking the instrumented binary against the VULFI runtime library.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/rtval.hpp"

namespace vulfi::interp {

using RuntimeHandler = std::function<RtVal(const std::vector<RtVal>& args)>;

/// Shared flag the detector runtime raises when an inserted checker
/// (foreach invariants, uniform-broadcast equality) observes a violated
/// invariant during a run. The experiment driver resets it per run and
/// reads it to report detection rates (paper Figure 12).
struct DetectionLog {
  std::uint64_t events = 0;

  void reset() { events = 0; }
  bool any() const { return events > 0; }
};

class RuntimeEnv {
 public:
  /// Registers (or replaces) the handler for runtime function `name`.
  void register_handler(std::string name, RuntimeHandler handler);

  bool has_handler(const std::string& name) const;

  /// Invokes the handler; aborts if none is registered (an instrumented
  /// module without its runtime is a harness bug, not a program fault).
  RtVal invoke(const std::string& name,
               const std::vector<RtVal>& args) const;

 private:
  std::unordered_map<std::string, RuntimeHandler> handlers_;
};

}  // namespace vulfi::interp
