#include "interp/runtime.hpp"

#include "support/error.hpp"

namespace vulfi::interp {

void RuntimeEnv::register_handler(std::string name, RuntimeHandler handler) {
  VULFI_ASSERT(handler != nullptr, "runtime handler must be callable");
  handlers_[std::move(name)] = std::move(handler);
}

bool RuntimeEnv::has_handler(const std::string& name) const {
  return handlers_.count(name) != 0;
}

const RuntimeHandler* RuntimeEnv::find_handler(const std::string& name) const {
  auto it = handlers_.find(name);
  return it == handlers_.end() ? nullptr : &it->second;
}

void RuntimeEnv::register_raw_handler(std::string name,
                                      RawRuntimeHandler raw) {
  VULFI_ASSERT(raw.fn != nullptr, "raw runtime handler must be callable");
  raw_handlers_[std::move(name)] = raw;
}

const RawRuntimeHandler* RuntimeEnv::find_raw_handler(
    const std::string& name) const {
  auto it = raw_handlers_.find(name);
  return it == raw_handlers_.end() ? nullptr : &it->second;
}

RtVal RuntimeEnv::invoke(const std::string& name,
                         const std::vector<RtVal>& args) const {
  auto it = handlers_.find(name);
  VULFI_ASSERT(it != handlers_.end(),
               "no handler registered for runtime function");
  return it->second(args);
}

}  // namespace vulfi::interp
