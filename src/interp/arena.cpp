#include "interp/arena.hpp"

namespace vulfi::interp {

namespace {

std::uint64_t align_up(std::uint64_t value, std::uint64_t align) {
  VULFI_ASSERT(align != 0 && (align & (align - 1)) == 0,
               "alignment must be a power of two");
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::uint64_t capacity_bytes) : bytes_(capacity_bytes, 0) {
  VULFI_ASSERT(capacity_bytes > kGuardBytes,
               "arena capacity must exceed the guard page");
}

std::uint64_t Arena::alloc(std::uint64_t bytes, std::string name,
                           std::uint64_t align) {
  VULFI_ASSERT(bytes > 0, "zero-byte allocation");
  const std::uint64_t base = align_up(top_, align);
  VULFI_ASSERT(base + bytes <= bytes_.size(), "arena exhausted");
  top_ = base + bytes;
  if (top_ > high_water_) high_water_ = top_;
  regions_.push_back(Region{std::move(name), base, bytes});
  return base;
}

std::uint64_t Arena::alloc_stack(std::uint64_t bytes, std::uint64_t align) {
  VULFI_ASSERT(bytes > 0, "zero-byte stack allocation");
  const std::uint64_t base = align_up(top_, align);
  VULFI_ASSERT(base + bytes <= bytes_.size(), "arena stack exhausted");
  top_ = base + bytes;
  if (top_ > high_water_) high_water_ = top_;
  return base;
}

void Arena::restore_watermark(std::uint64_t watermark) {
  VULFI_ASSERT(watermark <= top_, "watermark above current top");
  top_ = watermark;
}

void Arena::reset_from(const Arena& pristine) {
  VULFI_ASSERT(bytes_.size() == pristine.bytes_.size(),
               "reset_from requires equal arena capacities");
  std::memcpy(bytes_.data(), pristine.bytes_.data(),
              static_cast<std::size_t>(pristine.top_));
  if (high_water_ > pristine.top_) {
    std::memset(bytes_.data() + pristine.top_, 0,
                static_cast<std::size_t>(high_water_ - pristine.top_));
  }
  top_ = pristine.top_;
  high_water_ = top_;
  // Executions never create named regions, so the region table only needs
  // refreshing when this arena diverged from pristine before the reset.
  if (regions_.size() != pristine.regions_.size()) {
    regions_ = pristine.regions_;
  }
}

const Arena::Region& Arena::region(const std::string& name) const {
  for (const Region& region : regions_) {
    if (region.name == name) return region;
  }
  VULFI_UNREACHABLE("no arena region with that name");
}

std::vector<std::uint8_t> Arena::region_bytes(const Region& region) const {
  return std::vector<std::uint8_t>(bytes_.begin() + static_cast<long>(region.base),
                                   bytes_.begin() + static_cast<long>(region.base + region.bytes));
}

}  // namespace vulfi::interp
