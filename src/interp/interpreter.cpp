#include "interp/interpreter.hpp"

#include <cmath>
#include <limits>

#include "interp/scalar_ops.hpp"
#include "support/str.hpp"

namespace vulfi::interp {

using ir::Opcode;
using ir::Type;
using ir::TypeKind;

const char* trap_kind_name(TrapKind kind) {
  switch (kind) {
    case TrapKind::None: return "none";
    case TrapKind::OutOfBounds: return "out-of-bounds";
    case TrapKind::DivByZero: return "division-by-zero";
    case TrapKind::InstructionBudget: return "instruction-budget";
    case TrapKind::CallDepthExceeded: return "call-depth";
    case TrapKind::BadLaneIndex: return "bad-lane-index";
    case TrapKind::UnreachableExecuted: return "unreachable";
    case TrapKind::StackOverflow: return "stack-overflow";
  }
  return "?";
}

const Interpreter::Layout& Interpreter::layout_for(const ir::Function& fn) {
  auto it = layouts_.find(&fn);
  if (it != layouts_.end()) return it->second;
  Layout layout;
  for (const auto& arg : fn.args()) {
    layout.slots[arg.get()] = layout.slot_count++;
  }
  for (const auto& block : fn) {
    for (const auto& inst : *block) {
      if (!inst->type().is_void()) {
        layout.slots[inst.get()] = layout.slot_count++;
      }
    }
  }
  if (mode_ != ExecMode::Reference) decode_function(fn, layout);
  return layouts_.emplace(&fn, std::move(layout)).first->second;
}

void Interpreter::decode_function(const ir::Function& fn,
                                  Layout& layout) const {
  std::unordered_map<const ir::BasicBlock*, std::uint32_t> block_index;
  std::uint32_t index = 0;
  for (const auto& block : fn) block_index[block.get()] = index++;
  layout.blocks.resize(index);

  std::unordered_map<const ir::Value*, std::uint32_t> constant_index;
  auto ref_of = [&](const ir::Value* value) -> OperandRef {
    if (value->value_kind() == ir::ValueKind::Constant) {
      const auto [it, inserted] = constant_index.emplace(
          value, static_cast<std::uint32_t>(layout.constants.size()));
      if (inserted) {
        layout.constants.push_back(
            RtVal::of_constant(*static_cast<const ir::Constant*>(value)));
      }
      return -static_cast<OperandRef>(it->second) - 1;
    }
    const auto it = layout.slots.find(value);
    VULFI_ASSERT(it != layout.slots.end(), "operand has no slot");
    return static_cast<OperandRef>(it->second);
  };

  // Pre-resolves the phi transfers of edge from -> to. Like the
  // reference path's enter_block, only the block's leading phi run
  // participates.
  auto decode_edge = [&](const ir::BasicBlock* from,
                         const ir::BasicBlock* to) -> DecodedTarget {
    DecodedTarget target;
    target.block = block_index.at(to);
    target.first_move = static_cast<std::uint32_t>(layout.phi_moves.size());
    for (const auto& inst : *to) {
      if (inst->opcode() != Opcode::Phi) break;
      layout.phi_moves.push_back(
          {static_cast<std::int32_t>(layout.slots.at(inst.get())),
           ref_of(inst->phi_value_for(from))});
    }
    target.num_moves =
        static_cast<std::uint32_t>(layout.phi_moves.size()) -
        target.first_move;
    return target;
  };

  for (const auto& block : fn) {
    DecodedBlock& decoded = layout.blocks[block_index.at(block.get())];
    decoded.first_inst = static_cast<std::uint32_t>(layout.insts.size());
    bool in_phi_prefix = true;
    for (const auto& inst : *block) {
      if (inst->opcode() == Opcode::Phi) {
        // Phis past the leading run are dead in the reference path too
        // (never transferred, never dispatched); skip them entirely.
        if (in_phi_prefix) {
          decoded.phi_count += 1;
          if (inst->is_vector_instruction()) decoded.phi_vector_count += 1;
        }
        continue;
      }
      in_phi_prefix = false;
      DecodedInst d;
      d.inst = inst.get();
      d.op = inst->opcode();
      d.is_vector = inst->is_vector_instruction();
      d.result_slot = inst->type().is_void()
                          ? -1
                          : static_cast<std::int32_t>(
                                layout.slots.at(inst.get()));
      d.first_operand = static_cast<std::uint32_t>(layout.operand_refs.size());
      d.num_operands = inst->num_operands();
      for (unsigned i = 0; i < inst->num_operands(); ++i) {
        layout.operand_refs.push_back(ref_of(inst->operand(i)));
      }
      if (d.op == Opcode::Br) {
        d.targets[0] = decode_edge(block.get(), inst->successor(0));
      } else if (d.op == Opcode::CondBr) {
        d.targets[0] = decode_edge(block.get(), inst->successor(0));
        d.targets[1] = decode_edge(block.get(), inst->successor(1));
      }
      layout.insts.push_back(d);
    }
    decoded.num_insts =
        static_cast<std::uint32_t>(layout.insts.size()) - decoded.first_inst;
  }
}

void Interpreter::trap(TrapKind kind, std::string detail) {
  // Keep the first trap; later ones are cascading noise.
  if (trap_) return;
  trap_ = Trap{kind, std::move(detail)};
}

RtVal Interpreter::value_of(const Frame& frame,
                            const ir::Value* value) const {
  if (value->value_kind() == ir::ValueKind::Constant) {
    return RtVal::of_constant(*static_cast<const ir::Constant*>(value));
  }
  auto it = frame.layout->slots.find(value);
  VULFI_ASSERT(it != frame.layout->slots.end(),
               "value has no slot in this frame");
  return frame.slots[it->second];
}

ExecResult Interpreter::run(const ir::Function& fn,
                            const std::vector<RtVal>& args) {
  trap_ = Trap{};
  stats_ = ExecStats{};
  const RtVal ret = run_function(fn, args, 0);
  ExecResult result;
  result.trap = trap_;
  result.return_value = ret;
  result.stats = stats_;
  return result;
}

RtVal Interpreter::eval_int_binary(const ir::Instruction& inst,
                                   const RtVal& lhs, const RtVal& rhs) {
  RtVal out(inst.type());
  const unsigned width = inst.type().element_bits();
  for (unsigned lane = 0; lane < out.lanes(); ++lane) {
    const std::uint64_t ua = lhs.lane_uint(lane);
    const std::uint64_t ub = rhs.lane_uint(lane);
    const std::int64_t sa = lhs.lane_int(lane);
    const std::int64_t sb = rhs.lane_int(lane);
    std::uint64_t bits = 0;
    switch (inst.opcode()) {
      case Opcode::Add: bits = ua + ub; break;
      case Opcode::Sub: bits = ua - ub; break;
      case Opcode::Mul: bits = ua * ub; break;
      case Opcode::SDiv:
        if (sb == 0) {
          trap(TrapKind::DivByZero, "sdiv by zero");
          return out;
        }
        // INT_MIN / -1 wraps (deterministic stand-in for LLVM UB).
        bits = (sb == -1)
                   ? static_cast<std::uint64_t>(-sa)
                   : static_cast<std::uint64_t>(sa / sb);
        break;
      case Opcode::UDiv:
        if (ub == 0) {
          trap(TrapKind::DivByZero, "udiv by zero");
          return out;
        }
        bits = ua / ub;
        break;
      case Opcode::SRem:
        if (sb == 0) {
          trap(TrapKind::DivByZero, "srem by zero");
          return out;
        }
        bits = (sb == -1) ? 0 : static_cast<std::uint64_t>(sa % sb);
        break;
      case Opcode::URem:
        if (ub == 0) {
          trap(TrapKind::DivByZero, "urem by zero");
          return out;
        }
        bits = ua % ub;
        break;
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
        bits = shift_result(inst.opcode(), sa, ua, ub, width);
        break;
      case Opcode::And: bits = ua & ub; break;
      case Opcode::Or: bits = ua | ub; break;
      case Opcode::Xor: bits = ua ^ ub; break;
      default: VULFI_UNREACHABLE("not an integer binary opcode");
    }
    out.set_lane_raw(lane, bits);
  }
  return out;
}

RtVal Interpreter::eval_fp_binary(const ir::Instruction& inst,
                                  const RtVal& lhs, const RtVal& rhs) {
  RtVal out(inst.type());
  const bool single = inst.type().kind() == TypeKind::F32;
  for (unsigned lane = 0; lane < out.lanes(); ++lane) {
    if (single) {
      const float a = lhs.lane_f32(lane);
      const float b = rhs.lane_f32(lane);
      float r = 0.0f;
      switch (inst.opcode()) {
        case Opcode::FAdd: r = a + b; break;
        case Opcode::FSub: r = a - b; break;
        case Opcode::FMul: r = a * b; break;
        case Opcode::FDiv: r = a / b; break;  // IEEE: inf/NaN, no trap
        case Opcode::FRem: r = std::fmod(a, b); break;
        default: VULFI_UNREACHABLE("not an fp binary opcode");
      }
      out.set_lane_f32(lane, r);
    } else {
      const double a = lhs.lane_f64(lane);
      const double b = rhs.lane_f64(lane);
      double r = 0.0;
      switch (inst.opcode()) {
        case Opcode::FAdd: r = a + b; break;
        case Opcode::FSub: r = a - b; break;
        case Opcode::FMul: r = a * b; break;
        case Opcode::FDiv: r = a / b; break;
        case Opcode::FRem: r = std::fmod(a, b); break;
        default: VULFI_UNREACHABLE("not an fp binary opcode");
      }
      out.set_lane_f64(lane, r);
    }
  }
  return out;
}

RtVal Interpreter::eval_icmp(const ir::Instruction& inst, const RtVal& lhs,
                             const RtVal& rhs) const {
  RtVal out(inst.type());
  for (unsigned lane = 0; lane < out.lanes(); ++lane) {
    const std::int64_t sa = lhs.lane_int(lane);
    const std::int64_t sb = rhs.lane_int(lane);
    const std::uint64_t ua = lhs.lane_uint(lane);
    const std::uint64_t ub = rhs.lane_uint(lane);
    bool r = false;
    switch (inst.icmp_pred()) {
      case ir::ICmpPred::EQ: r = ua == ub; break;
      case ir::ICmpPred::NE: r = ua != ub; break;
      case ir::ICmpPred::SLT: r = sa < sb; break;
      case ir::ICmpPred::SLE: r = sa <= sb; break;
      case ir::ICmpPred::SGT: r = sa > sb; break;
      case ir::ICmpPred::SGE: r = sa >= sb; break;
      case ir::ICmpPred::ULT: r = ua < ub; break;
      case ir::ICmpPred::ULE: r = ua <= ub; break;
      case ir::ICmpPred::UGT: r = ua > ub; break;
      case ir::ICmpPred::UGE: r = ua >= ub; break;
    }
    out.raw[lane] = r ? 1 : 0;
  }
  return out;
}

RtVal Interpreter::eval_fcmp(const ir::Instruction& inst, const RtVal& lhs,
                             const RtVal& rhs) const {
  RtVal out(inst.type());
  for (unsigned lane = 0; lane < out.lanes(); ++lane) {
    const double a = lhs.lane_fp(lane);
    const double b = rhs.lane_fp(lane);
    const bool unordered = std::isnan(a) || std::isnan(b);
    bool r = false;
    switch (inst.fcmp_pred()) {
      case ir::FCmpPred::OEQ: r = !unordered && a == b; break;
      case ir::FCmpPred::ONE: r = !unordered && a != b; break;
      case ir::FCmpPred::OLT: r = !unordered && a < b; break;
      case ir::FCmpPred::OLE: r = !unordered && a <= b; break;
      case ir::FCmpPred::OGT: r = !unordered && a > b; break;
      case ir::FCmpPred::OGE: r = !unordered && a >= b; break;
      case ir::FCmpPred::UEQ: r = unordered || a == b; break;
      case ir::FCmpPred::UNE: r = unordered || a != b; break;
      case ir::FCmpPred::ULT: r = unordered || a < b; break;
      case ir::FCmpPred::ULE: r = unordered || a <= b; break;
      case ir::FCmpPred::UGT: r = unordered || a > b; break;
      case ir::FCmpPred::UGE: r = unordered || a >= b; break;
      case ir::FCmpPred::ORD: r = !unordered; break;
      case ir::FCmpPred::UNO: r = unordered; break;
    }
    out.raw[lane] = r ? 1 : 0;
  }
  return out;
}

RtVal Interpreter::eval_cast(const ir::Instruction& inst,
                             const RtVal& operand) const {
  RtVal out(inst.type());
  const unsigned width = inst.type().element_bits();
  for (unsigned lane = 0; lane < out.lanes(); ++lane) {
    switch (inst.opcode()) {
      case Opcode::Trunc:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
      case Opcode::Bitcast:
        out.set_lane_raw(lane, operand.raw[lane]);
        break;
      case Opcode::ZExt:
        out.set_lane_raw(lane, operand.lane_uint(lane));
        break;
      case Opcode::SExt:
        out.set_lane_int(lane, operand.lane_int(lane));
        break;
      case Opcode::FPTrunc:
        out.set_lane_f32(lane,
                         static_cast<float>(operand.lane_f64(lane)));
        break;
      case Opcode::FPExt:
        out.set_lane_f64(lane,
                         static_cast<double>(operand.lane_f32(lane)));
        break;
      case Opcode::FPToSI:
        out.set_lane_raw(
            lane, saturating_fp_to_int(operand.lane_fp(lane), width, true));
        break;
      case Opcode::FPToUI:
        out.set_lane_raw(
            lane, saturating_fp_to_int(operand.lane_fp(lane), width, false));
        break;
      case Opcode::SIToFP:
        out.set_lane_fp(lane,
                        static_cast<double>(operand.lane_int(lane)));
        break;
      case Opcode::UIToFP:
        out.set_lane_fp(lane,
                        static_cast<double>(operand.lane_uint(lane)));
        break;
      default: VULFI_UNREACHABLE("not a cast opcode");
    }
  }
  return out;
}

std::uint64_t Interpreter::read_element(std::uint64_t addr, unsigned bytes) {
  if (!arena_.valid(addr, bytes)) {
    trap(TrapKind::OutOfBounds,
         strf("load of %u bytes at address %llu", bytes,
              static_cast<unsigned long long>(addr)));
    return 0;
  }
  std::uint64_t bits = 0;
  std::memcpy(&bits, arena_.data(addr), bytes);
  return bits;
}

void Interpreter::write_element(std::uint64_t addr, unsigned bytes,
                                std::uint64_t bits) {
  if (!arena_.valid(addr, bytes)) {
    trap(TrapKind::OutOfBounds,
         strf("store of %u bytes at address %llu", bytes,
              static_cast<unsigned long long>(addr)));
    return;
  }
  std::memcpy(arena_.data(addr), &bits, bytes);
}

RtVal Interpreter::eval_load(const ir::Instruction& inst, const RtVal& ptr) {
  RtVal out(inst.type());
  const unsigned elem_bytes = inst.type().element_bytes();
  const std::uint64_t base = ptr.lane_ptr(0);
  for (unsigned lane = 0; lane < out.lanes() && !trap_; ++lane) {
    out.set_lane_raw(lane,
                     read_element(base + std::uint64_t{lane} * elem_bytes,
                                  elem_bytes));
  }
  return out;
}

void Interpreter::eval_store(const RtVal& value, const RtVal& ptr) {
  const unsigned elem_bytes = value.type.element_bytes();
  const std::uint64_t base = ptr.lane_ptr(0);
  for (unsigned lane = 0; lane < value.lanes() && !trap_; ++lane) {
    write_element(base + std::uint64_t{lane} * elem_bytes, elem_bytes,
                  value.lane_uint(lane));
  }
}

RtVal Interpreter::eval_alloca(const ir::Instruction& inst) {
  const std::uint64_t bytes = inst.alloca_bytes();
  if (arena_.allocated() + bytes + 64 > arena_.capacity()) {
    trap(TrapKind::StackOverflow, "alloca exhausted the arena");
    return RtVal{};
  }
  return RtVal::ptr(arena_.alloc_stack(bytes));
}

RtVal Interpreter::eval_math_intrinsic(const ir::Function& callee,
                                       const std::vector<RtVal>& args) const {
  const Type type = callee.return_type();
  RtVal out(type);
  const bool single = type.kind() == TypeKind::F32;
  const ir::IntrinsicId id = callee.intrinsic_info().id;
  for (unsigned lane = 0; lane < out.lanes(); ++lane) {
    if (single) {
      const float a = args[0].lane_f32(lane);
      const float b = args.size() > 1 ? args[1].lane_f32(lane) : 0.0f;
      float r = 0.0f;
      switch (id) {
        case ir::IntrinsicId::Sqrt: r = std::sqrt(a); break;
        case ir::IntrinsicId::Exp: r = std::exp(a); break;
        case ir::IntrinsicId::Log: r = std::log(a); break;
        case ir::IntrinsicId::Pow: r = std::pow(a, b); break;
        case ir::IntrinsicId::Fabs: r = std::fabs(a); break;
        case ir::IntrinsicId::Fmin: r = std::fmin(a, b); break;
        case ir::IntrinsicId::Fmax: r = std::fmax(a, b); break;
        case ir::IntrinsicId::Sin: r = std::sin(a); break;
        case ir::IntrinsicId::Cos: r = std::cos(a); break;
        case ir::IntrinsicId::Floor: r = std::floor(a); break;
        default: VULFI_UNREACHABLE("not a math intrinsic");
      }
      out.set_lane_f32(lane, r);
    } else {
      const double a = args[0].lane_f64(lane);
      const double b = args.size() > 1 ? args[1].lane_f64(lane) : 0.0;
      double r = 0.0;
      switch (id) {
        case ir::IntrinsicId::Sqrt: r = std::sqrt(a); break;
        case ir::IntrinsicId::Exp: r = std::exp(a); break;
        case ir::IntrinsicId::Log: r = std::log(a); break;
        case ir::IntrinsicId::Pow: r = std::pow(a, b); break;
        case ir::IntrinsicId::Fabs: r = std::fabs(a); break;
        case ir::IntrinsicId::Fmin: r = std::fmin(a, b); break;
        case ir::IntrinsicId::Fmax: r = std::fmax(a, b); break;
        case ir::IntrinsicId::Sin: r = std::sin(a); break;
        case ir::IntrinsicId::Cos: r = std::cos(a); break;
        case ir::IntrinsicId::Floor: r = std::floor(a); break;
        default: VULFI_UNREACHABLE("not a math intrinsic");
      }
      out.set_lane_f64(lane, r);
    }
  }
  return out;
}

RtVal Interpreter::eval_intrinsic(const ir::Function& callee,
                                  const std::vector<RtVal>& args) {
  const ir::IntrinsicInfo& info = callee.intrinsic_info();
  if (ir::is_math_intrinsic(info.id)) {
    return eval_math_intrinsic(callee, args);
  }
  if (info.id == ir::IntrinsicId::MaskLoad) {
    // (ptr, mask) -> data. Faults are suppressed on inactive lanes and
    // masked-off lanes read as zero (x86 vmaskmov semantics).
    const Type data_type = callee.return_type();
    RtVal out(data_type);
    const unsigned elem_bytes = data_type.element_bytes();
    const unsigned elem_bits = data_type.element_bits();
    const std::uint64_t base = args[0].lane_ptr(0);
    for (unsigned lane = 0; lane < out.lanes() && !trap_; ++lane) {
      if (!ir::mask_lane_active(args[1].raw[lane], elem_bits)) continue;
      out.set_lane_raw(lane,
                       read_element(base + std::uint64_t{lane} * elem_bytes,
                                    elem_bytes));
    }
    return out;
  }
  if (info.id == ir::IntrinsicId::MoveMask) {
    // Packs each lane's sign bit into an i32 (x86 movmsk).
    const RtVal& data = args[0];
    const unsigned elem_bits = data.type.element_bits();
    std::uint64_t bits = 0;
    for (unsigned lane = 0; lane < data.lanes(); ++lane) {
      if (ir::mask_lane_active(data.raw[lane], elem_bits)) {
        bits |= std::uint64_t{1} << lane;
      }
    }
    return RtVal::i32(static_cast<std::int32_t>(bits));
  }
  if (info.id == ir::IntrinsicId::MaskStore) {
    // (ptr, mask, data) -> void.
    const RtVal& data = args[2];
    const unsigned elem_bytes = data.type.element_bytes();
    const unsigned elem_bits = data.type.element_bits();
    const std::uint64_t base = args[0].lane_ptr(0);
    for (unsigned lane = 0; lane < data.lanes() && !trap_; ++lane) {
      if (!ir::mask_lane_active(args[1].raw[lane], elem_bits)) continue;
      write_element(base + std::uint64_t{lane} * elem_bytes, elem_bytes,
                    data.lane_uint(lane));
    }
    return RtVal(Type::void_ty().with_lanes(1));
  }
  VULFI_UNREACHABLE("unknown intrinsic");
}

RtVal Interpreter::eval_call(const ir::Instruction& inst,
                             std::vector<RtVal> call_args, unsigned depth) {
  stats_.calls += 1;
  const ir::Function* callee = inst.callee();
  switch (callee->kind()) {
    case ir::FunctionKind::Definition:
      return run_function(*callee, call_args, depth + 1);
    case ir::FunctionKind::Intrinsic:
      return eval_intrinsic(*callee, call_args);
    case ir::FunctionKind::Runtime:
      return env_.invoke(callee->name(), call_args);
  }
  VULFI_UNREACHABLE("unknown function kind");
}

RtVal Interpreter::run_function(const ir::Function& fn,
                                const std::vector<RtVal>& args,
                                unsigned depth) {
  VULFI_ASSERT(fn.is_definition(), "cannot execute a declaration");
  if (depth >= limits_.max_call_depth) {
    trap(TrapKind::CallDepthExceeded, "call depth limit exceeded");
    return RtVal{};
  }
  const Layout& layout = layout_for(fn);
  Frame frame{&layout, std::vector<RtVal>(layout.slot_count)};
  VULFI_ASSERT(args.size() == fn.num_args(), "argument count mismatch");
  for (unsigned i = 0; i < args.size(); ++i) {
    VULFI_ASSERT(args[i].type == fn.arg(i)->type(),
                 "argument type mismatch");
    frame.slots[layout.slots.at(fn.arg(i))] = args[i];
  }
  return mode_ != ExecMode::Reference
             ? run_decoded(layout, frame, depth)
             : run_reference(fn, layout, frame, depth);
}

// ---------------------------------------------------------------------------
// Pre-decoded dispatch loop: operand resolution is an array index into the
// frame slots or the constant pool; phi transfers are pre-resolved per
// edge; branch targets are block indices. No hashing on the hot path.
// ---------------------------------------------------------------------------

RtVal Interpreter::run_decoded(const Layout& layout, Frame& frame,
                               unsigned depth) {
  const std::uint64_t watermark = arena_.frame_watermark();
  // Entry is the first block in layout order.
  std::uint32_t block = 0;
  // Phi transfers are simultaneous per SSA semantics: all edge sources
  // are read into this scratch buffer before any destination is written.
  std::vector<RtVal> phi_scratch;
  constexpr std::uint32_t kNoBlock = ~std::uint32_t{0};

  auto take_edge = [&](const DecodedTarget& target) {
    const PhiMove* moves = layout.phi_moves.data() + target.first_move;
    phi_scratch.resize(target.num_moves);
    for (std::uint32_t m = 0; m < target.num_moves; ++m) {
      phi_scratch[m] = resolve(frame, moves[m].src);
    }
    for (std::uint32_t m = 0; m < target.num_moves; ++m) {
      frame.slots[static_cast<unsigned>(moves[m].dst_slot)] =
          std::move(phi_scratch[m]);
    }
    const DecodedBlock& entered = layout.blocks[target.block];
    stats_.total_instructions += entered.phi_count;
    stats_.vector_instructions += entered.phi_vector_count;
  };

  while (!trap_) {
    const DecodedBlock& decoded = layout.blocks[block];
    const DecodedInst* insts = layout.insts.data() + decoded.first_inst;
    std::uint32_t next_block = kNoBlock;

    for (std::uint32_t i = 0; i < decoded.num_insts; ++i) {
      const DecodedInst& d = *(insts + i);
      if (stats_.total_instructions >= limits_.max_instructions) {
        trap(TrapKind::InstructionBudget,
             "dynamic instruction budget exhausted");
        break;
      }
      stats_.total_instructions += 1;
      if (d.is_vector) stats_.vector_instructions += 1;
      const OperandRef* ops = layout.operand_refs.data() + d.first_operand;
      const ir::Instruction& inst = *d.inst;

      switch (d.op) {
        case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
        case Opcode::SDiv: case Opcode::UDiv: case Opcode::SRem:
        case Opcode::URem: case Opcode::Shl: case Opcode::LShr:
        case Opcode::AShr: case Opcode::And: case Opcode::Or:
        case Opcode::Xor:
          frame.slots[d.result_slot] = eval_int_binary(
              inst, resolve(frame, ops[0]), resolve(frame, ops[1]));
          break;
        case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
        case Opcode::FDiv: case Opcode::FRem:
          frame.slots[d.result_slot] = eval_fp_binary(
              inst, resolve(frame, ops[0]), resolve(frame, ops[1]));
          break;
        case Opcode::FNeg: {
          const RtVal& operand = resolve(frame, ops[0]);
          RtVal out(inst.type());
          for (unsigned lane = 0; lane < out.lanes(); ++lane) {
            out.set_lane_fp(lane, -operand.lane_fp(lane));
          }
          frame.slots[d.result_slot] = std::move(out);
          break;
        }
        case Opcode::ICmp:
          frame.slots[d.result_slot] = eval_icmp(
              inst, resolve(frame, ops[0]), resolve(frame, ops[1]));
          break;
        case Opcode::FCmp:
          frame.slots[d.result_slot] = eval_fcmp(
              inst, resolve(frame, ops[0]), resolve(frame, ops[1]));
          break;
        case Opcode::Alloca: {
          RtVal out = eval_alloca(inst);
          if (!trap_) frame.slots[d.result_slot] = std::move(out);
          break;
        }
        case Opcode::Load:
          frame.slots[d.result_slot] =
              eval_load(inst, resolve(frame, ops[0]));
          break;
        case Opcode::Store:
          eval_store(resolve(frame, ops[0]), resolve(frame, ops[1]));
          break;
        case Opcode::GetElementPtr: {
          std::uint64_t addr = resolve(frame, ops[0]).lane_ptr(0);
          const auto& strides = inst.gep_strides();
          for (std::uint32_t k = 1; k < d.num_operands; ++k) {
            addr += static_cast<std::uint64_t>(
                        resolve(frame, ops[k]).lane_int(0)) *
                    strides[k - 1];
          }
          frame.slots[d.result_slot] = RtVal::ptr(addr);
          break;
        }
        case Opcode::ExtractElement: {
          const RtVal& vec = resolve(frame, ops[0]);
          const std::uint64_t lane = resolve(frame, ops[1]).lane_uint(0);
          if (lane >= vec.lanes()) {
            trap(TrapKind::BadLaneIndex, "extractelement lane out of range");
            break;
          }
          RtVal out(inst.type());
          out.raw[0] = vec.raw[static_cast<unsigned>(lane)];
          frame.slots[d.result_slot] = std::move(out);
          break;
        }
        case Opcode::InsertElement: {
          RtVal vec = resolve(frame, ops[0]);
          const RtVal& elem = resolve(frame, ops[1]);
          const std::uint64_t lane = resolve(frame, ops[2]).lane_uint(0);
          if (lane >= vec.lanes()) {
            trap(TrapKind::BadLaneIndex, "insertelement lane out of range");
            break;
          }
          vec.raw[static_cast<unsigned>(lane)] = elem.raw[0];
          frame.slots[d.result_slot] = std::move(vec);
          break;
        }
        case Opcode::ShuffleVector: {
          const RtVal& v1 = resolve(frame, ops[0]);
          const RtVal& v2 = resolve(frame, ops[1]);
          const unsigned in_lanes = v1.lanes();
          RtVal out(inst.type());
          const auto& mask = inst.shuffle_mask();
          for (unsigned lane = 0; lane < out.lanes(); ++lane) {
            const int m = mask[lane];
            if (m < 0) {
              out.raw[lane] = 0;  // undef lane reads as zero
            } else if (static_cast<unsigned>(m) < in_lanes) {
              out.raw[lane] = v1.raw[static_cast<unsigned>(m)];
            } else {
              out.raw[lane] = v2.raw[static_cast<unsigned>(m) - in_lanes];
            }
          }
          frame.slots[d.result_slot] = std::move(out);
          break;
        }
        case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt:
        case Opcode::FPTrunc: case Opcode::FPExt: case Opcode::FPToSI:
        case Opcode::FPToUI: case Opcode::SIToFP: case Opcode::UIToFP:
        case Opcode::PtrToInt: case Opcode::IntToPtr: case Opcode::Bitcast:
          frame.slots[d.result_slot] =
              eval_cast(inst, resolve(frame, ops[0]));
          break;
        case Opcode::Select: {
          const RtVal& cond = resolve(frame, ops[0]);
          const RtVal& on_true = resolve(frame, ops[1]);
          const RtVal& on_false = resolve(frame, ops[2]);
          RtVal out(inst.type());
          for (unsigned lane = 0; lane < out.lanes(); ++lane) {
            const bool pick_true = cond.type.is_vector()
                                       ? cond.lane_bool(lane)
                                       : cond.lane_bool(0);
            out.raw[lane] = pick_true ? on_true.raw[lane]
                                      : on_false.raw[lane];
          }
          frame.slots[d.result_slot] = std::move(out);
          break;
        }
        case Opcode::Call: {
          std::vector<RtVal> call_args;
          call_args.reserve(d.num_operands);
          for (std::uint32_t k = 0; k < d.num_operands; ++k) {
            call_args.push_back(resolve(frame, ops[k]));
          }
          RtVal result = eval_call(inst, std::move(call_args), depth);
          if (d.result_slot >= 0 && !trap_) {
            VULFI_ASSERT(result.type == inst.type(),
                         "callee returned wrong type");
            frame.slots[d.result_slot] = std::move(result);
          }
          break;
        }
        case Opcode::Br:
          take_edge(d.targets[0]);
          next_block = d.targets[0].block;
          break;
        case Opcode::CondBr: {
          const DecodedTarget& target =
              resolve(frame, ops[0]).lane_bool(0) ? d.targets[0]
                                                  : d.targets[1];
          take_edge(target);
          next_block = target.block;
          break;
        }
        case Opcode::Ret:
          arena_.restore_watermark(watermark);
          if (d.num_operands == 0) return RtVal{};
          return resolve(frame, ops[0]);
        case Opcode::Unreachable:
          trap(TrapKind::UnreachableExecuted, "executed unreachable");
          break;
        case Opcode::Phi:
          break;  // unreachable; phis are never decoded into the stream
      }
      if (trap_ || next_block != kNoBlock) break;
    }
    if (next_block == kNoBlock) {
      // Reached only when the block ran out of instructions (trap
      // mid-block) — a well-formed block always exits via its terminator.
      VULFI_ASSERT(trap_, "basic block fell through without a terminator");
      break;
    }
    block = next_block;
  }
  arena_.restore_watermark(watermark);
  return RtVal{};
}

// ---------------------------------------------------------------------------
// Reference dispatch loop: per-operand hash lookup through value_of. This
// is the original executor, kept verbatim as the semantics oracle; the
// differential campaign tests assert the decoded path matches it bit for
// bit.
// ---------------------------------------------------------------------------

RtVal Interpreter::run_reference(const ir::Function& fn,
                                 const Layout& layout, Frame& frame,
                                 unsigned depth) {
  const std::uint64_t watermark = arena_.frame_watermark();
  const ir::BasicBlock* block = &fn.entry();

  auto store_result = [&](const ir::Instruction* inst, RtVal value) {
    frame.slots[layout.slots.at(inst)] = std::move(value);
  };

  // Block-transfer helper: evaluates all phis of `to` against `from`
  // simultaneously (values read before any writes) per SSA semantics.
  auto enter_block = [&](const ir::BasicBlock* from,
                         const ir::BasicBlock* to) {
    std::vector<std::pair<const ir::Instruction*, RtVal>> updates;
    for (const auto& inst : *to) {
      if (inst->opcode() != Opcode::Phi) break;
      updates.emplace_back(inst.get(),
                           value_of(frame, inst->phi_value_for(from)));
      stats_.total_instructions += 1;
      if (inst->is_vector_instruction()) stats_.vector_instructions += 1;
    }
    for (auto& [inst, value] : updates) {
      store_result(inst, std::move(value));
    }
  };

  while (!trap_) {
    for (auto it = block->begin(); it != block->end(); ++it) {
      const ir::Instruction& inst = **it;
      if (inst.opcode() == Opcode::Phi) continue;  // handled at block entry
      if (stats_.total_instructions >= limits_.max_instructions) {
        trap(TrapKind::InstructionBudget,
             "dynamic instruction budget exhausted");
        break;
      }
      stats_.total_instructions += 1;
      if (inst.is_vector_instruction()) stats_.vector_instructions += 1;

      switch (inst.opcode()) {
        case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
        case Opcode::SDiv: case Opcode::UDiv: case Opcode::SRem:
        case Opcode::URem: case Opcode::Shl: case Opcode::LShr:
        case Opcode::AShr: case Opcode::And: case Opcode::Or:
        case Opcode::Xor:
          store_result(&inst,
                       eval_int_binary(inst, value_of(frame, inst.operand(0)),
                                       value_of(frame, inst.operand(1))));
          break;
        case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
        case Opcode::FDiv: case Opcode::FRem:
          store_result(&inst,
                       eval_fp_binary(inst, value_of(frame, inst.operand(0)),
                                      value_of(frame, inst.operand(1))));
          break;
        case Opcode::FNeg: {
          const RtVal operand = value_of(frame, inst.operand(0));
          RtVal out(inst.type());
          for (unsigned lane = 0; lane < out.lanes(); ++lane) {
            out.set_lane_fp(lane, -operand.lane_fp(lane));
          }
          store_result(&inst, std::move(out));
          break;
        }
        case Opcode::ICmp:
          store_result(&inst,
                       eval_icmp(inst, value_of(frame, inst.operand(0)),
                                 value_of(frame, inst.operand(1))));
          break;
        case Opcode::FCmp:
          store_result(&inst,
                       eval_fcmp(inst, value_of(frame, inst.operand(0)),
                                 value_of(frame, inst.operand(1))));
          break;
        case Opcode::Alloca: {
          RtVal out = eval_alloca(inst);
          if (!trap_) store_result(&inst, std::move(out));
          break;
        }
        case Opcode::Load:
          store_result(&inst,
                       eval_load(inst, value_of(frame, inst.operand(0))));
          break;
        case Opcode::Store:
          eval_store(value_of(frame, inst.operand(0)),
                     value_of(frame, inst.operand(1)));
          break;
        case Opcode::GetElementPtr: {
          const RtVal base = value_of(frame, inst.operand(0));
          std::uint64_t addr = base.lane_ptr(0);
          const auto& strides = inst.gep_strides();
          for (unsigned i = 1; i < inst.num_operands(); ++i) {
            const RtVal index = value_of(frame, inst.operand(i));
            addr += static_cast<std::uint64_t>(index.lane_int(0)) *
                    strides[i - 1];
          }
          store_result(&inst, RtVal::ptr(addr));
          break;
        }
        case Opcode::ExtractElement: {
          const RtVal vec = value_of(frame, inst.operand(0));
          const RtVal index = value_of(frame, inst.operand(1));
          const std::uint64_t lane = index.lane_uint(0);
          if (lane >= vec.lanes()) {
            trap(TrapKind::BadLaneIndex, "extractelement lane out of range");
            break;
          }
          RtVal out(inst.type());
          out.raw[0] = vec.raw[static_cast<unsigned>(lane)];
          store_result(&inst, std::move(out));
          break;
        }
        case Opcode::InsertElement: {
          RtVal vec = value_of(frame, inst.operand(0));
          const RtVal elem = value_of(frame, inst.operand(1));
          const RtVal index = value_of(frame, inst.operand(2));
          const std::uint64_t lane = index.lane_uint(0);
          if (lane >= vec.lanes()) {
            trap(TrapKind::BadLaneIndex, "insertelement lane out of range");
            break;
          }
          vec.raw[static_cast<unsigned>(lane)] = elem.raw[0];
          store_result(&inst, std::move(vec));
          break;
        }
        case Opcode::ShuffleVector: {
          const RtVal v1 = value_of(frame, inst.operand(0));
          const RtVal v2 = value_of(frame, inst.operand(1));
          const unsigned in_lanes = v1.lanes();
          RtVal out(inst.type());
          const auto& mask = inst.shuffle_mask();
          for (unsigned lane = 0; lane < out.lanes(); ++lane) {
            const int m = mask[lane];
            if (m < 0) {
              out.raw[lane] = 0;  // undef lane reads as zero
            } else if (static_cast<unsigned>(m) < in_lanes) {
              out.raw[lane] = v1.raw[static_cast<unsigned>(m)];
            } else {
              out.raw[lane] = v2.raw[static_cast<unsigned>(m) - in_lanes];
            }
          }
          store_result(&inst, std::move(out));
          break;
        }
        case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt:
        case Opcode::FPTrunc: case Opcode::FPExt: case Opcode::FPToSI:
        case Opcode::FPToUI: case Opcode::SIToFP: case Opcode::UIToFP:
        case Opcode::PtrToInt: case Opcode::IntToPtr: case Opcode::Bitcast:
          store_result(&inst,
                       eval_cast(inst, value_of(frame, inst.operand(0))));
          break;
        case Opcode::Select: {
          const RtVal cond = value_of(frame, inst.operand(0));
          const RtVal on_true = value_of(frame, inst.operand(1));
          const RtVal on_false = value_of(frame, inst.operand(2));
          RtVal out(inst.type());
          for (unsigned lane = 0; lane < out.lanes(); ++lane) {
            const bool pick_true = cond.type.is_vector()
                                       ? cond.lane_bool(lane)
                                       : cond.lane_bool(0);
            out.raw[lane] = pick_true ? on_true.raw[lane]
                                      : on_false.raw[lane];
          }
          store_result(&inst, std::move(out));
          break;
        }
        case Opcode::Call: {
          std::vector<RtVal> call_args;
          call_args.reserve(inst.num_operands());
          for (unsigned i = 0; i < inst.num_operands(); ++i) {
            call_args.push_back(value_of(frame, inst.operand(i)));
          }
          RtVal result = eval_call(inst, std::move(call_args), depth);
          if (!inst.type().is_void() && !trap_) {
            VULFI_ASSERT(result.type == inst.type(),
                         "callee returned wrong type");
            store_result(&inst, std::move(result));
          }
          break;
        }
        case Opcode::Br: {
          const ir::BasicBlock* next = inst.successor(0);
          enter_block(block, next);
          block = next;
          goto next_block;
        }
        case Opcode::CondBr: {
          const RtVal cond = value_of(frame, inst.operand(0));
          const ir::BasicBlock* next =
              cond.lane_bool(0) ? inst.successor(0) : inst.successor(1);
          enter_block(block, next);
          block = next;
          goto next_block;
        }
        case Opcode::Ret: {
          arena_.restore_watermark(watermark);
          if (inst.num_operands() == 0) return RtVal{};
          return value_of(frame, inst.operand(0));
        }
        case Opcode::Unreachable:
          trap(TrapKind::UnreachableExecuted, "executed unreachable");
          break;
        case Opcode::Phi:
          break;  // unreachable; phis skipped above
      }
      if (trap_) break;
    }
    // Reached only when the block ran out of instructions (trap mid-block)
    // — a well-formed block always exits via the goto in its terminator.
    VULFI_ASSERT(trap_, "basic block fell through without a terminator");
    break;
  next_block:;
  }
  arena_.restore_watermark(watermark);
  return RtVal{};
}

}  // namespace vulfi::interp
