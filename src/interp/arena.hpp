// Flat, bounds-checked memory arena backing the interpreted program.
//
// This is the substitute for native process memory in the paper's
// experiments: address-site bit flips that escape the program's data
// produce a deterministic OutOfBounds trap — the interpreter's analogue of
// the SIGSEGV that classifies a run as "Crash" (paper §IV-B).
//
// Layout: [0, kGuardBytes) is a permanently invalid null/guard page, then
// bump-allocated named regions (kernel inputs/outputs), then stack space
// for dynamic allocas, delimited per call frame with watermarks.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace vulfi::interp {

class Arena {
 public:
  static constexpr std::uint64_t kGuardBytes = 64;

  explicit Arena(std::uint64_t capacity_bytes = 16u << 20);

  // Copyable by design: the fault-injection driver snapshots a pristine
  // arena and restores it between the golden and the faulty execution.

  /// Bump-allocates a named region. Returns its base address.
  std::uint64_t alloc(std::uint64_t bytes, std::string name,
                      std::uint64_t align = 64);

  /// Stack discipline for dynamic allocas.
  std::uint64_t frame_watermark() const { return top_; }
  std::uint64_t alloc_stack(std::uint64_t bytes, std::uint64_t align = 16);
  void restore_watermark(std::uint64_t watermark);

  /// Restores this arena to the exact state of `pristine` without
  /// reallocating: copies the allocated prefix and zeroes only the bytes
  /// this arena dirtied above it (tracked via a high-water mark). The
  /// injection driver resets one scratch arena per execution instead of
  /// copy-constructing a fresh multi-megabyte arena — equivalent because
  /// a pristine arena is zero beyond its own top (it is allocated zeroed
  /// and host writes stay below top). Requires equal capacities.
  void reset_from(const Arena& pristine);

  /// True iff [addr, addr + size) lies fully inside allocated memory.
  bool valid(std::uint64_t addr, std::uint64_t size) const {
    return addr >= kGuardBytes && size <= top_ && addr <= top_ - size;
  }

  std::uint64_t capacity() const { return bytes_.size(); }
  std::uint64_t allocated() const { return top_; }

  // --- raw access (caller must have checked valid()) ---------------------
  const std::uint8_t* data(std::uint64_t addr) const { return bytes_.data() + addr; }
  std::uint8_t* data(std::uint64_t addr) { return bytes_.data() + addr; }

  // --- typed host-side access for kernel setup/validation ---------------
  template <typename T>
  void write(std::uint64_t addr, const T& value) {
    VULFI_ASSERT(valid(addr, sizeof(T)), "host write out of bounds");
    std::memcpy(data(addr), &value, sizeof(T));
  }
  template <typename T>
  T read(std::uint64_t addr) const {
    VULFI_ASSERT(valid(addr, sizeof(T)), "host read out of bounds");
    T value;
    std::memcpy(&value, data(addr), sizeof(T));
    return value;
  }
  template <typename T>
  void write_array(std::uint64_t addr, const std::vector<T>& values) {
    VULFI_ASSERT(valid(addr, values.size() * sizeof(T)),
                 "host array write out of bounds");
    std::memcpy(data(addr), values.data(), values.size() * sizeof(T));
  }
  template <typename T>
  std::vector<T> read_array(std::uint64_t addr, std::size_t count) const {
    VULFI_ASSERT(valid(addr, count * sizeof(T)),
                 "host array read out of bounds");
    std::vector<T> values(count);
    std::memcpy(values.data(), data(addr), count * sizeof(T));
    return values;
  }

  /// A named allocation; the fault-injection driver compares the bytes of
  /// designated output regions between golden and faulty runs.
  struct Region {
    std::string name;
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
  };
  const std::vector<Region>& regions() const { return regions_; }
  const Region& region(const std::string& name) const;

  /// Raw bytes of a region (for output comparison).
  std::vector<std::uint8_t> region_bytes(const Region& region) const;

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t top_ = kGuardBytes;
  /// Highest top_ ever reached — the upper bound of bytes an execution
  /// may have dirtied (valid() confines writes below the current top_).
  std::uint64_t high_water_ = kGuardBytes;
  std::vector<Region> regions_;
};

}  // namespace vulfi::interp
