// Runtime value representation.
//
// Every SSA value evaluates to an RtVal: a type plus one raw 64-bit lane
// pattern per vector lane. Integers are stored zero-extended to their
// element width, f32 as the IEEE-754 single bit pattern in the low 32
// bits, f64 and pointers as full 64-bit patterns. Keeping raw bit patterns
// (rather than decoded numbers) makes single-bit-flip injection exact and
// uniform across types — the core requirement of the paper's fault model
// (§II-B).
#pragma once

#include <bit>
#include <cstdint>

#include "ir/type.hpp"
#include "ir/value.hpp"
#include "support/error.hpp"

namespace vulfi::interp {

/// Fixed-capacity lane storage. 16 lanes covers every vector shape the
/// AVX/SSE targets produce (max is <8 x float> under AVX) with headroom
/// for a future AVX-512-style 16-lane target.
class LaneArray {
 public:
  static constexpr unsigned kMaxLanes = 16;

  LaneArray() = default;
  explicit LaneArray(unsigned size) : size_(size) {
    VULFI_ASSERT(size <= kMaxLanes, "too many vector lanes");
    for (unsigned i = 0; i < size_; ++i) lanes_[i] = 0;
  }

  unsigned size() const { return size_; }

  std::uint64_t operator[](unsigned i) const {
    VULFI_ASSERT(i < size_, "lane index out of range");
    return lanes_[i];
  }
  std::uint64_t& operator[](unsigned i) {
    VULFI_ASSERT(i < size_, "lane index out of range");
    return lanes_[i];
  }

 private:
  std::uint64_t lanes_[kMaxLanes] = {};
  unsigned size_ = 0;
};

struct RtVal {
  ir::Type type;
  LaneArray raw;

  RtVal() = default;
  explicit RtVal(ir::Type t) : type(t), raw(t.lanes()) {}

  unsigned lanes() const { return raw.size(); }

  // --- lane decoding -----------------------------------------------------
  std::int64_t lane_int(unsigned lane) const {
    return ir::Constant::sign_extend(raw[lane], type.element_bits());
  }
  std::uint64_t lane_uint(unsigned lane) const {
    return ir::Constant::truncate_to_width(raw[lane], type.element_bits());
  }
  float lane_f32(unsigned lane) const {
    return std::bit_cast<float>(static_cast<std::uint32_t>(raw[lane]));
  }
  double lane_f64(unsigned lane) const {
    return std::bit_cast<double>(raw[lane]);
  }
  /// Numeric value of an fp lane regardless of width.
  double lane_fp(unsigned lane) const {
    return type.kind() == ir::TypeKind::F32
               ? static_cast<double>(lane_f32(lane))
               : lane_f64(lane);
  }
  bool lane_bool(unsigned lane) const { return (raw[lane] & 1) != 0; }
  std::uint64_t lane_ptr(unsigned lane) const { return raw[lane]; }

  // --- lane encoding -----------------------------------------------------
  void set_lane_int(unsigned lane, std::int64_t value) {
    raw[lane] = ir::Constant::truncate_to_width(
        static_cast<std::uint64_t>(value), type.element_bits());
  }
  void set_lane_f32(unsigned lane, float value) {
    raw[lane] = std::bit_cast<std::uint32_t>(value);
  }
  void set_lane_f64(unsigned lane, double value) {
    raw[lane] = std::bit_cast<std::uint64_t>(value);
  }
  /// Stores `value` with the lane's fp width.
  void set_lane_fp(unsigned lane, double value) {
    if (type.kind() == ir::TypeKind::F32) {
      set_lane_f32(lane, static_cast<float>(value));
    } else {
      set_lane_f64(lane, value);
    }
  }
  void set_lane_raw(unsigned lane, std::uint64_t bits) {
    raw[lane] = type.is_integer() ? ir::Constant::truncate_to_width(
                                        bits, type.element_bits())
                                  : bits;
  }

  // --- scalar factories --------------------------------------------------
  static RtVal int_scalar(ir::Type type, std::int64_t value) {
    VULFI_ASSERT(type.is_integer() && type.is_scalar(),
                 "int_scalar needs a scalar integer type");
    RtVal v(type);
    v.set_lane_int(0, value);
    return v;
  }
  static RtVal i32(std::int32_t value) {
    return int_scalar(ir::Type::i32(), value);
  }
  static RtVal i64(std::int64_t value) {
    return int_scalar(ir::Type::i64(), value);
  }
  static RtVal boolean(bool value) {
    return int_scalar(ir::Type::i1(), value ? 1 : 0);
  }
  static RtVal f32(float value) {
    RtVal v(ir::Type::f32());
    v.set_lane_f32(0, value);
    return v;
  }
  static RtVal f64(double value) {
    RtVal v(ir::Type::f64());
    v.set_lane_f64(0, value);
    return v;
  }
  static RtVal ptr(std::uint64_t addr) {
    RtVal v(ir::Type::ptr());
    v.raw[0] = addr;
    return v;
  }

  /// Materializes an IR constant (undef lanes read as zero — the
  /// interpreter's deterministic undef semantics). Used on the fly by the
  /// reference executor and once per constant by the decode cache's
  /// per-function constant pool.
  static RtVal of_constant(const ir::Constant& constant) {
    RtVal v(constant.type());
    for (unsigned lane = 0; lane < v.lanes(); ++lane) {
      v.raw[lane] = constant.is_undef() ? 0 : constant.raw(lane);
    }
    return v;
  }
};

}  // namespace vulfi::interp
