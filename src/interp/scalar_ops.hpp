// Scalar operation semantics shared by every execution backend.
//
// The interpreter defines the repo's deterministic stand-ins for the
// paper's native-execution semantics (wrapping overflow, overshift,
// saturating float-to-int). The JIT backend reproduces most operations
// directly in machine code but routes the branch-heavy cases through
// helper callouts — those callouts must compute bit-identical results, so
// the definitions live here, in one place, instead of being duplicated.
#pragma once

#include <cmath>
#include <cstdint>

#include "ir/instruction.hpp"
#include "support/error.hpp"

namespace vulfi::interp {

/// Shl/LShr/AShr with deterministic overshift: shifting by >= the element
/// width yields 0, except AShr of a negative value, which keeps the sign
/// fill (-1). `value_signed` must be the sign-extended element,
/// `value_unsigned` the zero-extended one.
inline std::uint64_t shift_result(ir::Opcode op, std::int64_t value_signed,
                                  std::uint64_t value_unsigned,
                                  std::uint64_t amount, unsigned width) {
  if (amount >= width) {
    // Deterministic overshift: logical shifts vanish; arithmetic shift
    // keeps the sign fill.
    if (op == ir::Opcode::AShr && value_signed < 0) return ~std::uint64_t{0};
    return 0;
  }
  switch (op) {
    case ir::Opcode::Shl: return value_unsigned << amount;
    case ir::Opcode::LShr: return value_unsigned >> amount;
    case ir::Opcode::AShr:
      return static_cast<std::uint64_t>(value_signed >>
                                        static_cast<std::int64_t>(amount));
    default: VULFI_UNREACHABLE("not a shift opcode");
  }
}

/// fptosi/fptoui with saturation at the destination width; NaN converts
/// to 0. Operates on the numeric (double) value of the source lane.
inline std::uint64_t saturating_fp_to_int(double value, unsigned width,
                                          bool is_signed) {
  if (std::isnan(value)) return 0;
  if (is_signed) {
    const double lo = -std::ldexp(1.0, static_cast<int>(width) - 1);
    const double hi = std::ldexp(1.0, static_cast<int>(width) - 1) - 1.0;
    if (value <= lo) {
      return std::uint64_t{1} << (width - 1);  // min value bit pattern
    }
    if (value >= hi) {
      return (std::uint64_t{1} << (width - 1)) - 1;
    }
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(value));
  }
  if (value <= 0.0) return 0;
  const double hi = std::ldexp(1.0, static_cast<int>(width)) - 1.0;
  if (value >= hi) {
    return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace vulfi::interp
