// IR interpreter.
//
// Executes a module function over an Arena, dispatching runtime calls to a
// RuntimeEnv. This is the execution substrate substituting for native x86
// in the paper's study: it yields the same program-level observables —
// output bytes, crashes (traps), hangs (instruction-budget exhaustion) —
// deterministically, plus the dynamic instruction counts reported in
// Table I.
//
// Execution modes (ExecMode):
//  * PreDecoded (default) — each function is decoded once into flat
//    per-block instruction arrays. Operands are resolved to dense
//    frame-slot / constant-pool indices at decode time, constants are
//    materialized into a per-function RtVal pool, and phi transfers are
//    pre-resolved per CFG edge, so the dispatch loop indexes arrays
//    instead of hashing Value pointers. Campaigns execute millions of
//    golden+faulty runs over the same few functions, which makes the
//    decode cost vanish and the per-operand savings dominate.
//  * Reference — the original per-operand hash-map lookup (value_of).
//    Bit-identical observables by construction; kept as the differential
//    -testing oracle for the decoded executor.
//
// Semantics notes (all deterministic; no undefined behaviour surface):
//  * integer overflow wraps (two's complement);
//  * sdiv/srem of INT_MIN by -1 wraps to INT_MIN / 0;
//  * shifts by >= bit-width yield 0 (ashr of a negative value yields -1);
//  * fptosi/fptoui saturate, NaN converts to 0;
//  * shufflevector undef lanes read as 0;
//  * masked load/store suppress memory faults on inactive lanes (x86
//    vmaskmov behaviour) and masked-off load lanes read as 0.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "interp/arena.hpp"
#include "interp/rtval.hpp"
#include "interp/runtime.hpp"
#include "interp/trap.hpp"
#include "ir/function.hpp"
#include "ir/module.hpp"

namespace vulfi::interp {

struct ExecLimits {
  /// Hard cap on executed IR instructions; exceeding it traps with
  /// InstructionBudget (the "hang" outcome).
  std::uint64_t max_instructions = 500'000'000;
  unsigned max_call_depth = 256;
};

struct ExecStats {
  std::uint64_t total_instructions = 0;
  /// Instructions with a vector result or operand (paper §II-A).
  std::uint64_t vector_instructions = 0;
  std::uint64_t calls = 0;
};

struct ExecResult {
  Trap trap;
  RtVal return_value;
  ExecStats stats;

  bool ok() const { return !trap; }
};

/// Execution backend selector. PreDecoded and Reference are the two
/// interpreter flavors described above. Jit names the native x86-64
/// template-JIT backend (src/jit); the Interpreter itself treats Jit like
/// PreDecoded — it is the fallback substrate the JIT executor delegates
/// to for functions it declines to compile — while the injection engine
/// uses the enum to route whole runs to jit::JitExecutor.
enum class ExecMode : std::uint8_t { PreDecoded, Reference, Jit };

class Interpreter {
 public:
  Interpreter(Arena& arena, RuntimeEnv& env, ExecLimits limits = {},
              ExecMode mode = ExecMode::PreDecoded)
      : arena_(arena), env_(env), limits_(limits), mode_(mode) {}

  /// Replaces the execution limits for subsequent run() calls. The
  /// injection driver reuses one interpreter (and its decode caches)
  /// across golden and faulty runs that need different budgets.
  void set_limits(const ExecLimits& limits) { limits_ = limits; }
  ExecMode mode() const { return mode_; }

  /// Runs `fn` with `args` to completion or trap.
  ExecResult run(const ir::Function& fn, const std::vector<RtVal>& args);

 private:
  /// Signed operand reference resolved at decode time: >= 0 indexes the
  /// frame's dense slot array, < 0 indexes the function's constant pool
  /// at (-ref - 1).
  using OperandRef = std::int32_t;

  /// One pre-resolved phi transfer for a CFG edge.
  struct PhiMove {
    std::int32_t dst_slot;
    OperandRef src;
  };

  /// A pre-resolved branch target: successor block plus the phi moves
  /// that transfer values across this specific edge.
  struct DecodedTarget {
    std::uint32_t block = 0;
    std::uint32_t first_move = 0;
    std::uint32_t num_moves = 0;
  };

  struct DecodedInst {
    const ir::Instruction* inst;  // payload access (preds, masks, types)
    ir::Opcode op;
    std::int32_t result_slot;     // -1 when the result is void
    std::uint32_t first_operand;  // into Layout::operand_refs
    std::uint32_t num_operands;
    bool is_vector;
    DecodedTarget targets[2];     // Br: [0]; CondBr: [0]=then, [1]=else
  };

  struct DecodedBlock {
    std::uint32_t first_inst = 0;  // into Layout::insts (phis excluded)
    std::uint32_t num_insts = 0;
    /// Phi stat contributions applied when the block is entered through
    /// a branch. Matches the reference path: entry-block phis are never
    /// counted because entry is not reached through an edge.
    std::uint32_t phi_count = 0;
    std::uint32_t phi_vector_count = 0;
  };

  /// Per-function decode cache. `slots` / `slot_count` implement the
  /// dense value numbering shared by both modes; the remaining members
  /// are the PreDecoded representation (filled lazily on first use).
  struct Layout {
    std::unordered_map<const ir::Value*, unsigned> slots;
    unsigned slot_count = 0;
    std::vector<RtVal> constants;          // pre-materialized constant pool
    std::vector<DecodedInst> insts;        // flat, per-block contiguous
    std::vector<OperandRef> operand_refs;  // flat operand ref pool
    std::vector<PhiMove> phi_moves;        // flat per-edge phi transfers
    std::vector<DecodedBlock> blocks;      // function layout order
  };

  const Layout& layout_for(const ir::Function& fn);
  void decode_function(const ir::Function& fn, Layout& layout) const;

  struct Frame {
    const Layout* layout;
    std::vector<RtVal> slots;
  };

  RtVal run_function(const ir::Function& fn, const std::vector<RtVal>& args,
                     unsigned depth);
  RtVal run_decoded(const Layout& layout, Frame& frame, unsigned depth);
  RtVal run_reference(const ir::Function& fn, const Layout& layout,
                      Frame& frame, unsigned depth);

  /// Reference-mode operand resolution: hash lookup plus on-the-fly
  /// constant materialization. The decoded path resolves the same values
  /// through resolve() without hashing or copying.
  RtVal value_of(const Frame& frame, const ir::Value* value) const;

  const RtVal& resolve(const Frame& frame, OperandRef ref) const {
    return ref >= 0
               ? frame.slots[static_cast<unsigned>(ref)]
               : frame.layout->constants[static_cast<unsigned>(-(ref + 1))];
  }

  void trap(TrapKind kind, std::string detail);

  // Opcode groups.
  RtVal eval_int_binary(const ir::Instruction& inst, const RtVal& lhs,
                        const RtVal& rhs);
  RtVal eval_fp_binary(const ir::Instruction& inst, const RtVal& lhs,
                       const RtVal& rhs);
  RtVal eval_icmp(const ir::Instruction& inst, const RtVal& lhs,
                  const RtVal& rhs) const;
  RtVal eval_fcmp(const ir::Instruction& inst, const RtVal& lhs,
                  const RtVal& rhs) const;
  RtVal eval_cast(const ir::Instruction& inst, const RtVal& operand) const;
  RtVal eval_load(const ir::Instruction& inst, const RtVal& ptr);
  void eval_store(const RtVal& value, const RtVal& ptr);
  RtVal eval_alloca(const ir::Instruction& inst);
  RtVal eval_intrinsic(const ir::Function& callee,
                       const std::vector<RtVal>& args);
  RtVal eval_math_intrinsic(const ir::Function& callee,
                            const std::vector<RtVal>& args) const;
  RtVal eval_call(const ir::Instruction& inst, std::vector<RtVal> call_args,
                  unsigned depth);

  std::uint64_t read_element(std::uint64_t addr, unsigned bytes);
  void write_element(std::uint64_t addr, unsigned bytes, std::uint64_t bits);

  Arena& arena_;
  RuntimeEnv& env_;
  ExecLimits limits_;
  ExecMode mode_;
  Trap trap_;
  ExecStats stats_;
  std::unordered_map<const ir::Function*, Layout> layouts_;
};

}  // namespace vulfi::interp
