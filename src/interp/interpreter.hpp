// IR interpreter.
//
// Executes a module function over an Arena, dispatching runtime calls to a
// RuntimeEnv. This is the execution substrate substituting for native x86
// in the paper's study: it yields the same program-level observables —
// output bytes, crashes (traps), hangs (instruction-budget exhaustion) —
// deterministically, plus the dynamic instruction counts reported in
// Table I.
//
// Semantics notes (all deterministic; no undefined behaviour surface):
//  * integer overflow wraps (two's complement);
//  * sdiv/srem of INT_MIN by -1 wraps to INT_MIN / 0;
//  * shifts by >= bit-width yield 0 (ashr of a negative value yields -1);
//  * fptosi/fptoui saturate, NaN converts to 0;
//  * shufflevector undef lanes read as 0;
//  * masked load/store suppress memory faults on inactive lanes (x86
//    vmaskmov behaviour) and masked-off load lanes read as 0.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "interp/arena.hpp"
#include "interp/rtval.hpp"
#include "interp/runtime.hpp"
#include "interp/trap.hpp"
#include "ir/function.hpp"
#include "ir/module.hpp"

namespace vulfi::interp {

struct ExecLimits {
  /// Hard cap on executed IR instructions; exceeding it traps with
  /// InstructionBudget (the "hang" outcome).
  std::uint64_t max_instructions = 500'000'000;
  unsigned max_call_depth = 256;
};

struct ExecStats {
  std::uint64_t total_instructions = 0;
  /// Instructions with a vector result or operand (paper §II-A).
  std::uint64_t vector_instructions = 0;
  std::uint64_t calls = 0;
};

struct ExecResult {
  Trap trap;
  RtVal return_value;
  ExecStats stats;

  bool ok() const { return !trap; }
};

class Interpreter {
 public:
  Interpreter(Arena& arena, RuntimeEnv& env, ExecLimits limits = {})
      : arena_(arena), env_(env), limits_(limits) {}

  /// Runs `fn` with `args` to completion or trap.
  ExecResult run(const ir::Function& fn, const std::vector<RtVal>& args);

 private:
  struct Layout {
    std::unordered_map<const ir::Value*, unsigned> slots;
    unsigned slot_count = 0;
  };

  const Layout& layout_for(const ir::Function& fn);

  struct Frame {
    const Layout* layout;
    std::vector<RtVal> slots;
  };

  RtVal run_function(const ir::Function& fn, const std::vector<RtVal>& args,
                     unsigned depth);

  RtVal value_of(const Frame& frame, const ir::Value* value) const;
  void trap(TrapKind kind, std::string detail);

  // Opcode groups.
  RtVal eval_int_binary(const ir::Instruction& inst, const RtVal& lhs,
                        const RtVal& rhs);
  RtVal eval_fp_binary(const ir::Instruction& inst, const RtVal& lhs,
                       const RtVal& rhs);
  RtVal eval_icmp(const ir::Instruction& inst, const RtVal& lhs,
                  const RtVal& rhs) const;
  RtVal eval_fcmp(const ir::Instruction& inst, const RtVal& lhs,
                  const RtVal& rhs) const;
  RtVal eval_cast(const ir::Instruction& inst, const RtVal& operand) const;
  RtVal eval_load(const ir::Instruction& inst, const RtVal& ptr);
  void eval_store(const RtVal& value, const RtVal& ptr);
  RtVal eval_intrinsic(const ir::Function& callee,
                       const std::vector<RtVal>& args);
  RtVal eval_math_intrinsic(const ir::Function& callee,
                            const std::vector<RtVal>& args) const;

  std::uint64_t read_element(std::uint64_t addr, unsigned bytes);
  void write_element(std::uint64_t addr, unsigned bytes, std::uint64_t bits);

  Arena& arena_;
  RuntimeEnv& env_;
  ExecLimits limits_;
  Trap trap_;
  ExecStats stats_;
  std::unordered_map<const ir::Function*, Layout> layouts_;
};

}  // namespace vulfi::interp
