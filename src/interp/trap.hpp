// Trap taxonomy for the simulated program.
//
// A trap models the user-visible failure of the injected program: the
// paper's "Crash" outcome ("a system failure, a program crash, or any
// other issue that could easily be detected by the end user", §IV-B).
// Traps are values, not exceptions — the host library never aborts because
// the program under study fell over.
#pragma once

#include <cstdint>
#include <string>

namespace vulfi::interp {

enum class TrapKind : std::uint8_t {
  None,
  /// Load/store/masked access touched memory outside every allocation —
  /// the interpreter's SIGSEGV.
  OutOfBounds,
  /// Integer division or remainder by zero — SIGFPE.
  DivByZero,
  /// Dynamic instruction budget exhausted: the run diverged (e.g. a
  /// control-site flip corrupted a loop bound). Models the hang an end
  /// user would notice and kill.
  InstructionBudget,
  /// Call depth limit exceeded — stack overflow.
  CallDepthExceeded,
  /// extractelement/insertelement with an out-of-range lane index.
  BadLaneIndex,
  /// An `unreachable` instruction was executed.
  UnreachableExecuted,
  /// Arena stack exhausted by dynamic allocas.
  StackOverflow,
};

const char* trap_kind_name(TrapKind kind);

struct Trap {
  TrapKind kind = TrapKind::None;
  std::string detail;

  explicit operator bool() const { return kind != TrapKind::None; }
};

}  // namespace vulfi::interp
