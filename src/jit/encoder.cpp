#include "jit/encoder.hpp"

#include "support/error.hpp"

namespace vulfi::jit {

namespace {

constexpr unsigned lo3(Reg r) { return static_cast<unsigned>(r) & 7; }
constexpr unsigned lo3(Xmm r) { return static_cast<unsigned>(r) & 7; }
constexpr bool ext(Reg r) { return static_cast<unsigned>(r) >= 8; }
constexpr bool ext(Xmm r) { return static_cast<unsigned>(r) >= 8; }
constexpr unsigned num(Reg r) { return static_cast<unsigned>(r); }
constexpr unsigned num(Xmm r) { return static_cast<unsigned>(r); }

constexpr bool fits_i8(std::int32_t v) { return v >= -128 && v <= 127; }

constexpr unsigned scale_bits(unsigned scale) {
  return scale == 1 ? 0 : scale == 2 ? 1 : scale == 4 ? 2 : 3;
}

}  // namespace

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::rex(bool w, unsigned reg, unsigned index, unsigned rm,
                  bool force) {
  const std::uint8_t b = 0x40 | (w ? 0x8 : 0) | ((reg >> 3) << 2) |
                         ((index >> 3) << 1) | (rm >> 3);
  if (b != 0x40 || force) u8(b);
}

void Encoder::modrm_reg(unsigned reg, unsigned rm) {
  u8(static_cast<std::uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
}

void Encoder::modrm_mem(unsigned reg, Reg base, std::int32_t disp) {
  const unsigned base3 = lo3(base);
  // RBP/R13 as base cannot use the no-displacement form (that encoding
  // means RIP-relative); force at least disp8.
  const bool need_disp = disp != 0 || base3 == 5;
  const unsigned mod = !need_disp ? 0 : fits_i8(disp) ? 1 : 2;
  if (base3 == 4) {
    // RSP/R12 as base requires a SIB byte with index=100 (none).
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | 4));
    u8(static_cast<std::uint8_t>((0 << 6) | (4 << 3) | base3));
  } else {
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | base3));
  }
  if (mod == 1) {
    u8(static_cast<std::uint8_t>(disp));
  } else if (mod == 2) {
    u32(static_cast<std::uint32_t>(disp));
  }
}

void Encoder::modrm_mem_index(unsigned reg, Reg base, Reg index,
                              unsigned scale, std::int32_t disp) {
  VULFI_ASSERT(index != Reg::RSP, "rsp cannot be an index register");
  const unsigned base3 = lo3(base);
  const bool need_disp = disp != 0 || base3 == 5;
  const unsigned mod = !need_disp ? 0 : fits_i8(disp) ? 1 : 2;
  u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | 4));
  u8(static_cast<std::uint8_t>((scale_bits(scale) << 6) | (lo3(index) << 3) |
                               base3));
  if (mod == 1) {
    u8(static_cast<std::uint8_t>(disp));
  } else if (mod == 2) {
    u32(static_cast<std::uint32_t>(disp));
  }
}

Encoder::Label Encoder::new_label() {
  label_pos_.push_back(-1);
  return static_cast<Label>(label_pos_.size() - 1);
}

void Encoder::bind(Label label) {
  VULFI_ASSERT(label_pos_[label] < 0, "label bound twice");
  label_pos_[label] = static_cast<std::int64_t>(buf_.size());
}

bool Encoder::bound(Label label) const { return label_pos_[label] >= 0; }

void Encoder::emit_rel32(Label label) {
  fixups_.push_back(Fixup{buf_.size(), label});
  u32(0);
}

const std::vector<std::uint8_t>& Encoder::finish() {
  for (const Fixup& fixup : fixups_) {
    const std::int64_t target = label_pos_[fixup.label];
    VULFI_ASSERT(target >= 0, "jump to unbound label");
    const std::int64_t rel =
        target - static_cast<std::int64_t>(fixup.pos) - 4;
    const auto rel32 = static_cast<std::uint32_t>(rel);
    for (int i = 0; i < 4; ++i) {
      buf_[fixup.pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(rel32 >> (8 * i));
    }
  }
  fixups_.clear();
  return buf_;
}

// --- GPR moves -------------------------------------------------------------

void Encoder::mov_ri64(Reg dst, std::uint64_t imm) {
  // Shrink to the 32-bit zero-extending form when the value allows it.
  if (imm <= 0xFFFFFFFFu) {
    mov_ri32(dst, static_cast<std::uint32_t>(imm));
    return;
  }
  rex(true, 0, 0, num(dst));
  u8(static_cast<std::uint8_t>(0xB8 | lo3(dst)));
  u64(imm);
}

void Encoder::mov_ri32(Reg dst, std::uint32_t imm) {
  rex(false, 0, 0, num(dst));
  u8(static_cast<std::uint8_t>(0xB8 | lo3(dst)));
  u32(imm);
}

void Encoder::mov_rr(Reg dst, Reg src) {
  rex(true, num(src), 0, num(dst));
  u8(0x89);
  modrm_reg(num(src), num(dst));
}

void Encoder::mov_rr32(Reg dst, Reg src) {
  rex(false, num(src), 0, num(dst));
  u8(0x89);
  modrm_reg(num(src), num(dst));
}

void Encoder::mov_rm(Reg dst, Reg base, std::int32_t disp) {
  rex(true, num(dst), 0, num(base));
  u8(0x8B);
  modrm_mem(num(dst), base, disp);
}

void Encoder::mov_mr(Reg base, std::int32_t disp, Reg src) {
  rex(true, num(src), 0, num(base));
  u8(0x89);
  modrm_mem(num(src), base, disp);
}

void Encoder::mov_rm32(Reg dst, Reg base, std::int32_t disp) {
  rex(false, num(dst), 0, num(base));
  u8(0x8B);
  modrm_mem(num(dst), base, disp);
}

void Encoder::mov_mr32(Reg base, std::int32_t disp, Reg src) {
  rex(false, num(src), 0, num(base));
  u8(0x89);
  modrm_mem(num(src), base, disp);
}

void Encoder::mov_mr16(Reg base, std::int32_t disp, Reg src) {
  u8(0x66);
  rex(false, num(src), 0, num(base));
  u8(0x89);
  modrm_mem(num(src), base, disp);
}

void Encoder::mov_mr8(Reg base, std::int32_t disp, Reg src) {
  // With a REX prefix the 4-7 byte registers read SPL/BPL/SIL/DIL; the
  // lowering only stores AL/CL/DL, so the no-REX path stays unambiguous.
  VULFI_ASSERT(num(src) < 4 || ext(src), "byte store needs AL/CL/DL/BL");
  rex(false, num(src), 0, num(base));
  u8(0x88);
  modrm_mem(num(src), base, disp);
}

void Encoder::movzx_rm8(Reg dst, Reg base, std::int32_t disp) {
  rex(true, num(dst), 0, num(base));
  u8(0x0F);
  u8(0xB6);
  modrm_mem(num(dst), base, disp);
}

void Encoder::movzx_rm16(Reg dst, Reg base, std::int32_t disp) {
  rex(true, num(dst), 0, num(base));
  u8(0x0F);
  u8(0xB7);
  modrm_mem(num(dst), base, disp);
}

void Encoder::movzx_rr8(Reg dst, Reg src) {
  VULFI_ASSERT(num(src) < 4 || ext(src), "byte source needs AL/CL/DL/BL");
  rex(false, num(dst), 0, num(src));
  u8(0x0F);
  u8(0xB6);
  modrm_reg(num(dst), num(src));
}

void Encoder::movsx_rr8(Reg dst, Reg src) {
  VULFI_ASSERT(num(src) < 4 || ext(src), "byte source needs AL/CL/DL/BL");
  rex(true, num(dst), 0, num(src));
  u8(0x0F);
  u8(0xBE);
  modrm_reg(num(dst), num(src));
}

void Encoder::movsx_rr16(Reg dst, Reg src) {
  rex(true, num(dst), 0, num(src));
  u8(0x0F);
  u8(0xBF);
  modrm_reg(num(dst), num(src));
}

void Encoder::movsx_rr32(Reg dst, Reg src) {
  rex(true, num(dst), 0, num(src));
  u8(0x63);
  modrm_reg(num(dst), num(src));
}

void Encoder::mov_rm_index(Reg dst, Reg base, Reg index, unsigned scale,
                           std::int32_t disp) {
  rex(true, num(dst), num(index), num(base));
  u8(0x8B);
  modrm_mem_index(num(dst), base, index, scale, disp);
}

void Encoder::mov_mr_index(Reg base, Reg index, unsigned scale,
                           std::int32_t disp, Reg src) {
  rex(true, num(src), num(index), num(base));
  u8(0x89);
  modrm_mem_index(num(src), base, index, scale, disp);
}

void Encoder::mov_rm32_index(Reg dst, Reg base, Reg index, unsigned scale,
                             std::int32_t disp) {
  rex(false, num(dst), num(index), num(base));
  u8(0x8B);
  modrm_mem_index(num(dst), base, index, scale, disp);
}

void Encoder::mov_mr32_index(Reg base, Reg index, unsigned scale,
                             std::int32_t disp, Reg src) {
  rex(false, num(src), num(index), num(base));
  u8(0x89);
  modrm_mem_index(num(src), base, index, scale, disp);
}

void Encoder::mov_mr16_index(Reg base, Reg index, unsigned scale,
                             std::int32_t disp, Reg src) {
  u8(0x66);
  rex(false, num(src), num(index), num(base));
  u8(0x89);
  modrm_mem_index(num(src), base, index, scale, disp);
}

void Encoder::mov_mr8_index(Reg base, Reg index, unsigned scale,
                            std::int32_t disp, Reg src) {
  VULFI_ASSERT(num(src) < 4 || ext(src), "byte store needs AL/CL/DL/BL");
  rex(false, num(src), num(index), num(base));
  u8(0x88);
  modrm_mem_index(num(src), base, index, scale, disp);
}

void Encoder::movzx_rm8_index(Reg dst, Reg base, Reg index, unsigned scale,
                              std::int32_t disp) {
  rex(true, num(dst), num(index), num(base));
  u8(0x0F);
  u8(0xB6);
  modrm_mem_index(num(dst), base, index, scale, disp);
}

void Encoder::movzx_rm16_index(Reg dst, Reg base, Reg index, unsigned scale,
                               std::int32_t disp) {
  rex(true, num(dst), num(index), num(base));
  u8(0x0F);
  u8(0xB7);
  modrm_mem_index(num(dst), base, index, scale, disp);
}

void Encoder::lea(Reg dst, Reg base, std::int32_t disp) {
  rex(true, num(dst), 0, num(base));
  u8(0x8D);
  modrm_mem(num(dst), base, disp);
}

// --- ALU -------------------------------------------------------------------

void Encoder::alu_rr(std::uint8_t opcode, Reg dst, Reg src) {
  rex(true, num(src), 0, num(dst));
  u8(opcode);
  modrm_reg(num(src), num(dst));
}

void Encoder::alu_rr_rm(std::uint8_t opcode2, Reg dst, Reg src) {
  rex(true, num(dst), 0, num(src));
  u8(0x0F);
  u8(opcode2);
  modrm_reg(num(dst), num(src));
}

void Encoder::add_rr(Reg dst, Reg src) { alu_rr(0x01, dst, src); }
void Encoder::sub_rr(Reg dst, Reg src) { alu_rr(0x29, dst, src); }
void Encoder::and_rr(Reg dst, Reg src) { alu_rr(0x21, dst, src); }
void Encoder::or_rr(Reg dst, Reg src) { alu_rr(0x09, dst, src); }
void Encoder::xor_rr(Reg dst, Reg src) { alu_rr(0x31, dst, src); }
void Encoder::cmp_rr(Reg lhs, Reg rhs) { alu_rr(0x39, lhs, rhs); }
void Encoder::test_rr(Reg lhs, Reg rhs) { alu_rr(0x85, lhs, rhs); }
void Encoder::imul_rr(Reg dst, Reg src) { alu_rr_rm(0xAF, dst, src); }

void Encoder::imul_rri(Reg dst, Reg src, std::int32_t imm) {
  rex(true, num(dst), 0, num(src));
  u8(0x69);
  modrm_reg(num(dst), num(src));
  u32(static_cast<std::uint32_t>(imm));
}

namespace {
// /digit extensions for the 81/83 immediate-ALU group.
constexpr unsigned kAddExt = 0, kOrExt = 1, kAndExt = 4, kSubExt = 5,
                   kCmpExt = 7;
}  // namespace

void Encoder::add_ri(Reg dst, std::int32_t imm) {
  rex(true, 0, 0, num(dst));
  if (fits_i8(imm)) {
    u8(0x83);
    modrm_reg(kAddExt, num(dst));
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_reg(kAddExt, num(dst));
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Encoder::sub_ri(Reg dst, std::int32_t imm) {
  rex(true, 0, 0, num(dst));
  if (fits_i8(imm)) {
    u8(0x83);
    modrm_reg(kSubExt, num(dst));
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_reg(kSubExt, num(dst));
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Encoder::cmp_ri(Reg lhs, std::int32_t imm) {
  rex(true, 0, 0, num(lhs));
  if (fits_i8(imm)) {
    u8(0x83);
    modrm_reg(kCmpExt, num(lhs));
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_reg(kCmpExt, num(lhs));
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Encoder::and_ri(Reg dst, std::int32_t imm) {
  rex(true, 0, 0, num(dst));
  if (fits_i8(imm)) {
    u8(0x83);
    modrm_reg(kAndExt, num(dst));
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_reg(kAndExt, num(dst));
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Encoder::test_ri(Reg lhs, std::int32_t imm) {
  rex(true, 0, 0, num(lhs));
  u8(0xF7);
  modrm_reg(0, num(lhs));
  u32(static_cast<std::uint32_t>(imm));
}

void Encoder::neg(Reg dst) {
  rex(true, 0, 0, num(dst));
  u8(0xF7);
  modrm_reg(3, num(dst));
}

void Encoder::not_(Reg dst) {
  rex(true, 0, 0, num(dst));
  u8(0xF7);
  modrm_reg(2, num(dst));
}

void Encoder::add_mi(Reg base, std::int32_t disp, std::int32_t imm) {
  rex(true, 0, 0, num(base));
  if (fits_i8(imm)) {
    u8(0x83);
    modrm_mem(kAddExt, base, disp);
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_mem(kAddExt, base, disp);
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Encoder::cmp_mi(Reg base, std::int32_t disp, std::int32_t imm) {
  rex(true, 0, 0, num(base));
  if (fits_i8(imm)) {
    u8(0x83);
    modrm_mem(kCmpExt, base, disp);
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_mem(kCmpExt, base, disp);
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Encoder::cmp_rm(Reg lhs, Reg base, std::int32_t disp) {
  rex(true, num(lhs), 0, num(base));
  u8(0x3B);
  modrm_mem(num(lhs), base, disp);
}

// --- shifts ----------------------------------------------------------------

void Encoder::shift_cl(std::uint8_t extn, Reg dst) {
  rex(true, 0, 0, num(dst));
  u8(0xD3);
  modrm_reg(extn, num(dst));
}

void Encoder::shift_ri(std::uint8_t extn, Reg dst, std::uint8_t imm) {
  rex(true, 0, 0, num(dst));
  u8(0xC1);
  modrm_reg(extn, num(dst));
  u8(imm);
}

void Encoder::shl_cl(Reg dst) { shift_cl(4, dst); }
void Encoder::shr_cl(Reg dst) { shift_cl(5, dst); }
void Encoder::sar_cl(Reg dst) { shift_cl(7, dst); }
void Encoder::shl_ri(Reg dst, std::uint8_t imm) { shift_ri(4, dst, imm); }
void Encoder::shr_ri(Reg dst, std::uint8_t imm) { shift_ri(5, dst, imm); }
void Encoder::sar_ri(Reg dst, std::uint8_t imm) { shift_ri(7, dst, imm); }

// --- flags consumers -------------------------------------------------------

void Encoder::setcc(Cond cc, Reg dst) {
  VULFI_ASSERT(num(dst) < 4, "setcc target must be RAX/RCX/RDX/RBX");
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0x90 | static_cast<unsigned>(cc)));
  modrm_reg(0, num(dst));
}

void Encoder::setcc_zx(Cond cc, Reg dst) {
  setcc(cc, dst);
  movzx_rr8(dst, dst);
}

void Encoder::cmovcc(Cond cc, Reg dst, Reg src) {
  rex(true, num(dst), 0, num(src));
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0x40 | static_cast<unsigned>(cc)));
  modrm_reg(num(dst), num(src));
}

// --- control flow ----------------------------------------------------------

void Encoder::jcc(Cond cc, Label label) {
  u8(0x0F);
  u8(static_cast<std::uint8_t>(0x80 | static_cast<unsigned>(cc)));
  emit_rel32(label);
}

void Encoder::jmp(Label label) {
  u8(0xE9);
  emit_rel32(label);
}

void Encoder::call_reg(Reg target) {
  rex(false, 0, 0, num(target));
  u8(0xFF);
  modrm_reg(2, num(target));
}

void Encoder::ret() { u8(0xC3); }

void Encoder::push(Reg reg) {
  rex(false, 0, 0, num(reg));
  u8(static_cast<std::uint8_t>(0x50 | lo3(reg)));
}

void Encoder::pop(Reg reg) {
  rex(false, 0, 0, num(reg));
  u8(static_cast<std::uint8_t>(0x58 | lo3(reg)));
}

// --- SSE2 ------------------------------------------------------------------

void Encoder::sse_rr(std::uint8_t prefix, std::uint8_t opcode, unsigned dst,
                     unsigned src) {
  if (prefix != 0) u8(prefix);
  rex(false, dst, 0, src);
  u8(0x0F);
  u8(opcode);
  modrm_reg(dst, src);
}

void Encoder::sse_mem(std::uint8_t prefix, std::uint8_t opcode, unsigned xmm,
                      Reg base, std::int32_t disp) {
  if (prefix != 0) u8(prefix);
  rex(false, xmm, 0, num(base));
  u8(0x0F);
  u8(opcode);
  modrm_mem(xmm, base, disp);
}

void Encoder::movq_xr(Xmm dst, Reg src) {
  u8(0x66);
  rex(true, num(dst), 0, num(src));
  u8(0x0F);
  u8(0x6E);
  modrm_reg(num(dst), num(src));
}

void Encoder::movq_rx(Reg dst, Xmm src) {
  u8(0x66);
  rex(true, num(src), 0, num(dst));
  u8(0x0F);
  u8(0x7E);
  modrm_reg(num(src), num(dst));
}

void Encoder::movd_xr(Xmm dst, Reg src) {
  u8(0x66);
  rex(false, num(dst), 0, num(src));
  u8(0x0F);
  u8(0x6E);
  modrm_reg(num(dst), num(src));
}

void Encoder::movd_rx(Reg dst, Xmm src) {
  u8(0x66);
  rex(false, num(src), 0, num(dst));
  u8(0x0F);
  u8(0x7E);
  modrm_reg(num(src), num(dst));
}

void Encoder::movq_xm(Xmm dst, Reg base, std::int32_t disp) {
  sse_mem(0xF3, 0x7E, num(dst), base, disp);
}

void Encoder::movq_mx(Reg base, std::int32_t disp, Xmm src) {
  sse_mem(0x66, 0xD6, num(src), base, disp);
}

void Encoder::movss_xm(Xmm dst, Reg base, std::int32_t disp) {
  sse_mem(0xF3, 0x10, num(dst), base, disp);
}

void Encoder::movss_mx(Reg base, std::int32_t disp, Xmm src) {
  sse_mem(0xF3, 0x11, num(src), base, disp);
}

void Encoder::movsd_xm(Xmm dst, Reg base, std::int32_t disp) {
  sse_mem(0xF2, 0x10, num(dst), base, disp);
}

void Encoder::movsd_mx(Reg base, std::int32_t disp, Xmm src) {
  sse_mem(0xF2, 0x11, num(src), base, disp);
}

void Encoder::movdqu_xm(Xmm dst, Reg base, std::int32_t disp) {
  sse_mem(0xF3, 0x6F, num(dst), base, disp);
}

void Encoder::movdqu_mx(Reg base, std::int32_t disp, Xmm src) {
  sse_mem(0xF3, 0x7F, num(src), base, disp);
}

void Encoder::movaps_xx(Xmm dst, Xmm src) {
  sse_rr(0, 0x28, num(dst), num(src));
}

void Encoder::addss(Xmm dst, Xmm src) { sse_rr(0xF3, 0x58, num(dst), num(src)); }
void Encoder::subss(Xmm dst, Xmm src) { sse_rr(0xF3, 0x5C, num(dst), num(src)); }
void Encoder::mulss(Xmm dst, Xmm src) { sse_rr(0xF3, 0x59, num(dst), num(src)); }
void Encoder::divss(Xmm dst, Xmm src) { sse_rr(0xF3, 0x5E, num(dst), num(src)); }
void Encoder::addsd(Xmm dst, Xmm src) { sse_rr(0xF2, 0x58, num(dst), num(src)); }
void Encoder::subsd(Xmm dst, Xmm src) { sse_rr(0xF2, 0x5C, num(dst), num(src)); }
void Encoder::mulsd(Xmm dst, Xmm src) { sse_rr(0xF2, 0x59, num(dst), num(src)); }
void Encoder::divsd(Xmm dst, Xmm src) { sse_rr(0xF2, 0x5E, num(dst), num(src)); }
void Encoder::addps(Xmm dst, Xmm src) { sse_rr(0, 0x58, num(dst), num(src)); }
void Encoder::subps(Xmm dst, Xmm src) { sse_rr(0, 0x5C, num(dst), num(src)); }
void Encoder::mulps(Xmm dst, Xmm src) { sse_rr(0, 0x59, num(dst), num(src)); }
void Encoder::divps(Xmm dst, Xmm src) { sse_rr(0, 0x5E, num(dst), num(src)); }
void Encoder::addpd(Xmm dst, Xmm src) { sse_rr(0x66, 0x58, num(dst), num(src)); }
void Encoder::subpd(Xmm dst, Xmm src) { sse_rr(0x66, 0x5C, num(dst), num(src)); }
void Encoder::mulpd(Xmm dst, Xmm src) { sse_rr(0x66, 0x59, num(dst), num(src)); }
void Encoder::divpd(Xmm dst, Xmm src) { sse_rr(0x66, 0x5E, num(dst), num(src)); }

void Encoder::paddb(Xmm dst, Xmm src) { sse_rr(0x66, 0xFC, num(dst), num(src)); }
void Encoder::psubb(Xmm dst, Xmm src) { sse_rr(0x66, 0xF8, num(dst), num(src)); }
void Encoder::paddw(Xmm dst, Xmm src) { sse_rr(0x66, 0xFD, num(dst), num(src)); }
void Encoder::psubw(Xmm dst, Xmm src) { sse_rr(0x66, 0xF9, num(dst), num(src)); }
void Encoder::paddd(Xmm dst, Xmm src) { sse_rr(0x66, 0xFE, num(dst), num(src)); }
void Encoder::psubd(Xmm dst, Xmm src) { sse_rr(0x66, 0xFA, num(dst), num(src)); }
void Encoder::paddq(Xmm dst, Xmm src) { sse_rr(0x66, 0xD4, num(dst), num(src)); }
void Encoder::psubq(Xmm dst, Xmm src) { sse_rr(0x66, 0xFB, num(dst), num(src)); }
void Encoder::pand(Xmm dst, Xmm src) { sse_rr(0x66, 0xDB, num(dst), num(src)); }
void Encoder::por(Xmm dst, Xmm src) { sse_rr(0x66, 0xEB, num(dst), num(src)); }
void Encoder::pxor(Xmm dst, Xmm src) { sse_rr(0x66, 0xEF, num(dst), num(src)); }

void Encoder::shufps(Xmm dst, Xmm src, std::uint8_t imm) {
  sse_rr(0, 0xC6, num(dst), num(src));
  u8(imm);
}

void Encoder::punpckldq(Xmm dst, Xmm src) {
  sse_rr(0x66, 0x62, num(dst), num(src));
}

void Encoder::punpckhdq(Xmm dst, Xmm src) {
  sse_rr(0x66, 0x6A, num(dst), num(src));
}

void Encoder::punpcklqdq(Xmm dst, Xmm src) {
  sse_rr(0x66, 0x6C, num(dst), num(src));
}

void Encoder::cvtss2sd(Xmm dst, Xmm src) {
  sse_rr(0xF3, 0x5A, num(dst), num(src));
}

void Encoder::cvtsd2ss(Xmm dst, Xmm src) {
  sse_rr(0xF2, 0x5A, num(dst), num(src));
}

void Encoder::cvtsi2sd(Xmm dst, Reg src) {
  u8(0xF2);
  rex(true, num(dst), 0, num(src));
  u8(0x0F);
  u8(0x2A);
  modrm_reg(num(dst), num(src));
}

void Encoder::ucomiss(Xmm lhs, Xmm rhs) {
  sse_rr(0, 0x2E, num(lhs), num(rhs));
}

void Encoder::ucomisd(Xmm lhs, Xmm rhs) {
  sse_rr(0x66, 0x2E, num(lhs), num(rhs));
}

void Encoder::xorps(Xmm dst, Xmm src) { sse_rr(0, 0x57, num(dst), num(src)); }
void Encoder::xorpd(Xmm dst, Xmm src) { sse_rr(0x66, 0x57, num(dst), num(src)); }

}  // namespace vulfi::jit
