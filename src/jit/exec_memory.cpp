#include "jit/exec_memory.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "support/error.hpp"

namespace vulfi::jit {

namespace {

std::size_t page_align(std::size_t n) {
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return (n + page - 1) / page * page;
}

bool probe_exec_mmap() {
  const std::size_t page = page_align(1);
  void* mem = ::mmap(nullptr, page, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return false;
  // ret — enough to prove the mapping is truly executable if we ever
  // wanted to call it; the mprotect result alone decides availability.
  static_cast<std::uint8_t*>(mem)[0] = 0xC3;
  const bool ok = ::mprotect(mem, page, PROT_READ | PROT_EXEC) == 0;
  ::munmap(mem, page);
  return ok;
}

}  // namespace

bool ExecMemory::available() {
  static const bool ok = probe_exec_mmap();
  return ok;
}

ExecMemory::~ExecMemory() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

const std::uint8_t* ExecMemory::publish(
    const std::vector<std::uint8_t>& code) {
  VULFI_ASSERT(base_ == nullptr, "ExecMemory::publish called twice");
  VULFI_ASSERT(!code.empty(), "cannot publish empty code");
  const std::size_t size = page_align(code.size());
  void* mem = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return nullptr;
  std::memcpy(mem, code.data(), code.size());
  if (::mprotect(mem, size, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(mem, size);
    return nullptr;
  }
  base_ = static_cast<std::uint8_t*>(mem);
  size_ = size;
  return base_;
}

}  // namespace vulfi::jit
