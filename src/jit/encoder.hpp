// x86-64 machine-code encoder.
//
// A minimal, self-contained byte emitter covering exactly the
// instruction-template vocabulary the lowering pass (compiler.cpp) uses:
// 64-bit GPR moves/ALU, shifts, setcc/cmov/jcc with label fixups, calls
// through a register, and the SSE2 subset needed for the paper's i32x4 /
// f32x4 vector categories (packed integer ALU, packed/scalar float
// arithmetic, pack/unpack shuffles, scalar conversions, ucomis*).
//
// Encoding conventions (Intel SDM Vol. 2):
//   [legacy prefix 66/F2/F3] [REX] opcode [ModRM] [SIB] [disp] [imm]
// REX = 0x40 | W<<3 | R<<2 | X<<1 | B, emitted whenever W=1, an extended
// register (r8-r15 / xmm8-xmm15) is named, or a 64-bit operand is needed.
// Memory operands handle the two irregular base encodings: RSP/R12 force
// a SIB byte, RBP/R13 force an explicit displacement.
//
// Labels: new_label() returns a handle; jcc/jmp record rel32 fixups that
// finish() patches once every label is bound. Code is position-independent
// except for imm64 absolute constants (helper entry points, descriptor
// addresses), which do not need relocation because the buffer is copied
// into executable memory verbatim — absolutes stay absolute.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vulfi::jit {

enum class Reg : std::uint8_t {
  RAX = 0, RCX, RDX, RBX, RSP, RBP, RSI, RDI,
  R8, R9, R10, R11, R12, R13, R14, R15,
};

enum class Xmm : std::uint8_t {
  XMM0 = 0, XMM1, XMM2, XMM3, XMM4, XMM5, XMM6, XMM7,
  XMM8, XMM9, XMM10, XMM11, XMM12, XMM13, XMM14, XMM15,
};

/// Condition codes in x86 encoding order (the low nibble of 0F 8x / 0F 9x
/// / 0F 4x opcodes).
enum class Cond : std::uint8_t {
  O = 0x0, NO = 0x1, B = 0x2, AE = 0x3, E = 0x4, NE = 0x5, BE = 0x6,
  A = 0x7, S = 0x8, NS = 0x9, P = 0xA, NP = 0xB, L = 0xC, GE = 0xD,
  LE = 0xE, G = 0xF,
};

class Encoder {
 public:
  using Label = std::uint32_t;

  Label new_label();
  void bind(Label label);
  bool bound(Label label) const;

  /// Current emit offset (used for frame-size bookkeeping / tests).
  std::size_t size() const { return buf_.size(); }

  /// Patches all pending rel32 fixups and returns the finished bytes.
  /// Every referenced label must be bound by now.
  const std::vector<std::uint8_t>& finish();

  // --- 64-bit GPR moves ---------------------------------------------------
  void mov_ri64(Reg dst, std::uint64_t imm);          // mov r64, imm64
  void mov_ri32(Reg dst, std::uint32_t imm);          // mov r32, imm32 (zext)
  void mov_rr(Reg dst, Reg src);                      // mov r64, r64
  void mov_rr32(Reg dst, Reg src);                    // mov r32, r32 (zext)
  void mov_rm(Reg dst, Reg base, std::int32_t disp);  // mov r64, [base+disp]
  void mov_mr(Reg base, std::int32_t disp, Reg src);  // mov [base+disp], r64
  void mov_rm32(Reg dst, Reg base, std::int32_t disp);   // mov r32, m32
  void mov_mr32(Reg base, std::int32_t disp, Reg src);   // mov m32, r32
  void mov_mr16(Reg base, std::int32_t disp, Reg src);   // mov m16, r16
  void mov_mr8(Reg base, std::int32_t disp, Reg src);    // mov m8, r8
  void movzx_rm8(Reg dst, Reg base, std::int32_t disp);  // movzx r64, m8
  void movzx_rm16(Reg dst, Reg base, std::int32_t disp); // movzx r64, m16
  void movzx_rr8(Reg dst, Reg src);                      // movzx r32, r8
  void movsx_rr8(Reg dst, Reg src);    // movsx r64, r8
  void movsx_rr16(Reg dst, Reg src);   // movsx r64, r16
  void movsx_rr32(Reg dst, Reg src);   // movsxd r64, r32
  /// mov r64, [base + index*scale + disp]; scale in {1,2,4,8}.
  void mov_rm_index(Reg dst, Reg base, Reg index, unsigned scale,
                    std::int32_t disp);
  void mov_mr_index(Reg base, Reg index, unsigned scale, std::int32_t disp,
                    Reg src);
  void mov_rm32_index(Reg dst, Reg base, Reg index, unsigned scale,
                      std::int32_t disp);
  void mov_mr32_index(Reg base, Reg index, unsigned scale, std::int32_t disp,
                      Reg src);
  void mov_mr16_index(Reg base, Reg index, unsigned scale, std::int32_t disp,
                      Reg src);
  void mov_mr8_index(Reg base, Reg index, unsigned scale, std::int32_t disp,
                     Reg src);
  void movzx_rm8_index(Reg dst, Reg base, Reg index, unsigned scale,
                       std::int32_t disp);
  void movzx_rm16_index(Reg dst, Reg base, Reg index, unsigned scale,
                        std::int32_t disp);
  void lea(Reg dst, Reg base, std::int32_t disp);

  // --- 64-bit ALU ---------------------------------------------------------
  void add_rr(Reg dst, Reg src);
  void sub_rr(Reg dst, Reg src);
  void and_rr(Reg dst, Reg src);
  void or_rr(Reg dst, Reg src);
  void xor_rr(Reg dst, Reg src);
  void cmp_rr(Reg lhs, Reg rhs);
  void test_rr(Reg lhs, Reg rhs);
  void imul_rr(Reg dst, Reg src);
  void imul_rri(Reg dst, Reg src, std::int32_t imm);
  void add_ri(Reg dst, std::int32_t imm);
  void sub_ri(Reg dst, std::int32_t imm);
  void cmp_ri(Reg lhs, std::int32_t imm);
  void and_ri(Reg dst, std::int32_t imm);
  void test_ri(Reg lhs, std::int32_t imm);
  void neg(Reg dst);
  void not_(Reg dst);
  /// add qword [base+disp], imm32 (sign-extended)
  void add_mi(Reg base, std::int32_t disp, std::int32_t imm);
  /// cmp qword [base+disp], imm32 (sign-extended)
  void cmp_mi(Reg base, std::int32_t disp, std::int32_t imm);
  void cmp_rm(Reg lhs, Reg base, std::int32_t disp);  // cmp r64, [base+disp]

  // --- shifts -------------------------------------------------------------
  void shl_cl(Reg dst);
  void shr_cl(Reg dst);
  void sar_cl(Reg dst);
  void shl_ri(Reg dst, std::uint8_t imm);
  void shr_ri(Reg dst, std::uint8_t imm);
  void sar_ri(Reg dst, std::uint8_t imm);

  // --- flags consumers ----------------------------------------------------
  /// setcc on the low byte of dst, then zero-extends dst to 64 bits.
  /// Restricted to RAX/RCX/RDX/RBX low bytes (no REX byte-register issues).
  void setcc_zx(Cond cc, Reg dst);
  /// setcc only (low byte of RAX/RCX/RDX/RBX), no zero-extension.
  void setcc(Cond cc, Reg dst);
  void cmovcc(Cond cc, Reg dst, Reg src);  // cmovcc r64, r64

  // --- control flow -------------------------------------------------------
  void jcc(Cond cc, Label label);  // jcc rel32
  void jmp(Label label);           // jmp rel32
  void call_reg(Reg target);
  void ret();
  void push(Reg reg);
  void pop(Reg reg);

  // --- SSE2 ---------------------------------------------------------------
  void movq_xr(Xmm dst, Reg src);   // movq xmm, r64
  void movq_rx(Reg dst, Xmm src);   // movq r64, xmm
  void movd_xr(Xmm dst, Reg src);   // movd xmm, r32
  void movd_rx(Reg dst, Xmm src);   // movd r32, xmm
  void movq_xm(Xmm dst, Reg base, std::int32_t disp);   // movq xmm, m64
  void movq_mx(Reg base, std::int32_t disp, Xmm src);   // movq m64, xmm
  void movss_xm(Xmm dst, Reg base, std::int32_t disp);
  void movss_mx(Reg base, std::int32_t disp, Xmm src);
  void movsd_xm(Xmm dst, Reg base, std::int32_t disp);
  void movsd_mx(Reg base, std::int32_t disp, Xmm src);
  void movdqu_xm(Xmm dst, Reg base, std::int32_t disp);
  void movdqu_mx(Reg base, std::int32_t disp, Xmm src);
  void movaps_xx(Xmm dst, Xmm src);

  void addss(Xmm dst, Xmm src);
  void subss(Xmm dst, Xmm src);
  void mulss(Xmm dst, Xmm src);
  void divss(Xmm dst, Xmm src);
  void addsd(Xmm dst, Xmm src);
  void subsd(Xmm dst, Xmm src);
  void mulsd(Xmm dst, Xmm src);
  void divsd(Xmm dst, Xmm src);
  void addps(Xmm dst, Xmm src);
  void subps(Xmm dst, Xmm src);
  void mulps(Xmm dst, Xmm src);
  void divps(Xmm dst, Xmm src);
  void addpd(Xmm dst, Xmm src);
  void subpd(Xmm dst, Xmm src);
  void mulpd(Xmm dst, Xmm src);
  void divpd(Xmm dst, Xmm src);

  void paddb(Xmm dst, Xmm src);
  void psubb(Xmm dst, Xmm src);
  void paddw(Xmm dst, Xmm src);
  void psubw(Xmm dst, Xmm src);
  void paddd(Xmm dst, Xmm src);
  void psubd(Xmm dst, Xmm src);
  void paddq(Xmm dst, Xmm src);
  void psubq(Xmm dst, Xmm src);
  void pand(Xmm dst, Xmm src);
  void por(Xmm dst, Xmm src);
  void pxor(Xmm dst, Xmm src);

  void shufps(Xmm dst, Xmm src, std::uint8_t imm);
  void punpckldq(Xmm dst, Xmm src);
  void punpckhdq(Xmm dst, Xmm src);
  void punpcklqdq(Xmm dst, Xmm src);

  void cvtss2sd(Xmm dst, Xmm src);
  void cvtsd2ss(Xmm dst, Xmm src);
  void cvtsi2sd(Xmm dst, Reg src);  // cvtsi2sd xmm, r64
  void ucomiss(Xmm lhs, Xmm rhs);
  void ucomisd(Xmm lhs, Xmm rhs);
  void xorps(Xmm dst, Xmm src);
  void xorpd(Xmm dst, Xmm src);

 private:
  struct Fixup {
    std::size_t pos;  // offset of the rel32 field
    Label label;
  };

  void u8(std::uint8_t b) { buf_.push_back(b); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// REX prefix; emitted only when non-trivial or `force` is set.
  void rex(bool w, unsigned reg, unsigned index, unsigned rm,
           bool force = false);
  void modrm_reg(unsigned reg, unsigned rm);
  void modrm_mem(unsigned reg, Reg base, std::int32_t disp);
  void modrm_mem_index(unsigned reg, Reg base, Reg index, unsigned scale,
                       std::int32_t disp);
  void alu_rr(std::uint8_t opcode, Reg dst, Reg src);         // MR form
  void alu_rr_rm(std::uint8_t opcode2, Reg dst, Reg src);     // 0F xx RM form
  void shift_cl(std::uint8_t ext, Reg dst);
  void shift_ri(std::uint8_t ext, Reg dst, std::uint8_t imm);
  void sse_rr(std::uint8_t prefix, std::uint8_t opcode, unsigned dst,
              unsigned src);
  void sse_mem(std::uint8_t prefix, std::uint8_t opcode, unsigned xmm,
               Reg base, std::int32_t disp);
  void emit_rel32(Label label);

  std::vector<std::uint8_t> buf_;
  std::vector<std::int64_t> label_pos_;  // -1 while unbound
  std::vector<Fixup> fixups_;
};

}  // namespace vulfi::jit
