// Executable-memory arena with a W^X discipline.
//
// Code is never writable and executable at the same time: the compiler
// assembles every function into plain std::vector buffers, then a single
// publish() call maps one anonymous region read-write, copies all the
// finished code in, and flips the whole region to read-execute. There is
// no incremental patching after publish — the "patchable callouts" into
// fi_runtime are indirections through data (descriptor tables holding
// handler pointers), not code edits.
//
// Hosts can forbid executable anonymous mappings (hardened kernels,
// seccomp sandboxes, some containers). available() probes this once per
// process by round-tripping a tiny RW->RX mapping; when it fails, the JIT
// backend reports itself unavailable and every run falls back to the
// interpreter — same results, no error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vulfi::jit {

class ExecMemory {
 public:
  ExecMemory() = default;
  ~ExecMemory();

  ExecMemory(const ExecMemory&) = delete;
  ExecMemory& operator=(const ExecMemory&) = delete;

  /// True when this process can map executable memory (probed once).
  static bool available();

  /// Copies `code` into a fresh executable mapping and returns the base
  /// address of the mapped copy, or nullptr on failure. May be called at
  /// most once per ExecMemory instance.
  const std::uint8_t* publish(const std::vector<std::uint8_t>& code);

  const std::uint8_t* base() const { return base_; }
  std::size_t size() const { return size_; }

 private:
  std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace vulfi::jit
