// Shared data structures between the JIT compiler (lowering) and the JIT
// executor (runtime helpers). Internal to src/jit.
//
// Compiled-code ABI
// -----------------
//   using JitFn = void (*)(JitContext* ctx, const std::uint64_t* argv,
//                          std::uint64_t* retv);
// Pinned registers inside compiled code: rbx = ctx, rbp = frame base,
// r12 = retv, r13 = arena data base. argv/retv are flattened lane words
// (RtVal::raw encoding, one u64 per lane, in argument order).
//
// Frame layout (all 8-byte words, addressed off rbp):
//   word 0            — the caller arena watermark saved by the prologue
//   word 1 ..         — one word per lane of every dense value slot
//                       (arguments first, then non-void instruction
//                       results, in the interpreter's slot order)
//   tail words        — phi scratch for the widest edge transfer
// Frame lane words hold exactly the RtVal::raw invariant: integers
// truncated to their element width, f32 patterns zero-extended to 64 bits.
//
// Helper callouts use the SysV C ABI: rdi = ctx, then helper-specific
// arguments. Every operation the template does not lower inline (division
// with trap semantics, saturating fp<->int, frem, calls, alloca) becomes a
// callout carrying an InstDesc* baked into the code as an imm64. The
// descriptor holds pre-resolved operand locations and callee pointers —
// this is the "patchable" half of the design: retargeting a fault-site
// callout means swapping a pointer in data, never rewriting code.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "interp/arena.hpp"
#include "interp/runtime.hpp"
#include "interp/trap.hpp"
#include "ir/function.hpp"
#include "ir/instruction.hpp"

namespace vulfi::jit {

class JitExecutor;
struct CompiledFunction;

/// Per-run state shared between compiled code and the helper callouts.
/// Standard-layout so the emitter can address fields by offsetof.
struct JitContext {
  std::uint64_t total_instructions = 0;
  std::uint64_t max_instructions = 0;
  std::uint64_t vector_instructions = 0;
  std::uint64_t calls = 0;
  /// Host address of arena byte 0 (so guest address A lives at
  /// arena_base + A).
  std::uint64_t arena_base = 0;
  /// Mirror of Arena::frame_watermark(), kept in sync by the alloca and
  /// watermark-restore helpers; compiled bounds checks read it directly.
  std::uint64_t arena_top = 0;
  /// TrapKind as u64; 0 = TrapKind::None. First writer wins (helpers
  /// refuse to overwrite); compiled code tests it after every callout.
  std::uint64_t trap_kind = 0;
  /// Current call depth (0 in the entry function).
  std::uint64_t depth = 0;
  std::uint64_t max_call_depth = 0;
  interp::Arena* arena = nullptr;
  JitExecutor* exec = nullptr;
};

static_assert(offsetof(JitContext, trap_kind) == 48);

/// Pre-resolved operand: where the lanes live at runtime.
struct OperandLoc {
  /// >= 0: frame word index (lane 0) in the executing frame; < 0: the
  /// lanes live in the function's constant pool at `pool`.
  std::int32_t word = -1;
  const std::uint64_t* pool = nullptr;
  ir::Type type;

  bool is_const() const { return word < 0; }
};

/// One callout descriptor, baked into the code stream as an imm64.
struct InstDesc {
  const ir::Instruction* inst = nullptr;
  ir::Type type;                  // result type
  std::int32_t result_word = -1;  // -1 when void (or result unused slot)
  std::vector<OperandLoc> operands;
  /// Call to a Runtime declaration: the resolved handler.
  const interp::RuntimeHandler* handler = nullptr;
  /// Call to a Definition: the compiled callee (entry read at call time).
  CompiledFunction* callee = nullptr;
};

using JitFn = void (*)(JitContext*, const std::uint64_t*, std::uint64_t*);

struct CompiledFunction {
  const ir::Function* fn = nullptr;
  /// Entry point; set when the owning code batch is published.
  JitFn entry = nullptr;
  /// Assembled bytes, relative to the function's own origin; moved into
  /// executable memory by the executor, then cleared.
  std::vector<std::uint8_t> code;
  /// Frame word index (lane 0) per dense value slot.
  std::vector<std::uint32_t> slot_word;
  /// Lane count per dense value slot.
  std::vector<std::uint32_t> slot_lanes;
  /// Dense slots of the arguments, in order.
  std::vector<std::uint32_t> arg_slots;
  std::uint32_t frame_bytes = 0;
  /// Constant lane pool; OperandLoc::pool points into this (stable once
  /// compilation finishes — it is sized up front and never grown after
  /// pointers are taken).
  std::vector<std::uint64_t> const_pool;
  /// Callout descriptors; deque for address stability.
  std::deque<InstDesc> descs;
};

// --- helper callouts (defined in executor.cpp) -----------------------------
extern "C" {
/// SDiv/UDiv/SRem/URem, FRem, FPToSI, FPToUI, UIToFP — the scalar cases
/// whose trap/saturation semantics live in interp/scalar_ops.hpp.
void vulfi_jit_slow_op(JitContext* ctx, std::uint64_t* frame,
                       const InstDesc* desc);
/// Call to a Runtime / Intrinsic / Definition callee.
void vulfi_jit_call(JitContext* ctx, std::uint64_t* frame,
                    const InstDesc* desc);
void vulfi_jit_alloca(JitContext* ctx, std::uint64_t* frame,
                      const InstDesc* desc);
void vulfi_jit_restore_watermark(JitContext* ctx, std::uint64_t watermark);
/// Traps with a fixed detail string (budget, unreachable, lane index).
void vulfi_jit_trap(JitContext* ctx, std::uint64_t kind, const char* detail);
/// OutOfBounds trap with the interpreter's formatted detail.
void vulfi_jit_trap_oob(JitContext* ctx, std::uint64_t addr,
                        std::uint64_t bytes, std::uint64_t is_store);
}

/// Lowers `fn` into `out` (code + descriptors + frame layout). The caller
/// guarantees can_compile(fn) held; `resolve_callee` maps a Definition
/// callee to its CompiledFunction shell (same batch or already published).
void compile_function(const ir::Function& fn, const interp::RuntimeEnv& env,
                      CompiledFunction& out,
                      CompiledFunction* (*resolve_callee)(void*,
                                                          const ir::Function*),
                      void* resolve_ctx);

/// True when the lowering pass covers every instruction of `fn` (locally —
/// callees are checked separately by the executor's call-graph walk).
bool function_is_compilable(const ir::Function& fn,
                            const interp::RuntimeEnv& env);

}  // namespace vulfi::jit
