// Template lowering: one pass over a decoded-order function, emitting
// x86-64 through the Encoder. The contract is bit-identical observables
// with interp::Interpreter's pre-decoded loop — same stats ordering, same
// trap kinds and detail strings, same partial-store semantics, same raw
// lane encodings (see internal.hpp for the frame invariant).
//
// Structure per instruction: a budget prologue (check-then-increment, like
// the interpreter's dispatch loop), then either inline code or a callout
// to one of the fi_runtime helpers in executor.cpp with an InstDesc*
// baked in as an imm64. Every callout is followed by a trap-flag test
// that bails to the shared epilogue, so a trapping helper ends the run
// exactly where the interpreter's `while (!trap_)` loop would.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "interp/rtval.hpp"
#include "jit/encoder.hpp"
#include "jit/internal.hpp"
#include "support/error.hpp"

namespace vulfi::jit {

namespace {

using ir::Opcode;
using ir::Type;
using ir::TypeKind;

/// Widest vector the template lowers; wider kernels (a hypothetical
/// AVX-512-style 16-lane target) fall back to the interpreter.
constexpr unsigned kMaxJitLanes = 8;
/// Flattened-argument budget for Definition-to-Definition calls (lane
/// words); matches the fixed buffer in vulfi_jit_call.
constexpr unsigned kMaxCallArgWords = 128;

// Trap detail strings, byte-for-byte the interpreter's. Static storage so
// their addresses can be baked into code as imm64.
constexpr const char kBudgetDetail[] = "dynamic instruction budget exhausted";
constexpr const char kUnreachableDetail[] = "executed unreachable";
constexpr const char kExtractDetail[] = "extractelement lane out of range";
constexpr const char kInsertDetail[] = "insertelement lane out of range";

constexpr std::int32_t kCtxTotal =
    offsetof(JitContext, total_instructions);
constexpr std::int32_t kCtxMaxInsts = offsetof(JitContext, max_instructions);
constexpr std::int32_t kCtxVector =
    offsetof(JitContext, vector_instructions);
constexpr std::int32_t kCtxCalls = offsetof(JitContext, calls);
constexpr std::int32_t kCtxArenaBase = offsetof(JitContext, arena_base);
constexpr std::int32_t kCtxArenaTop = offsetof(JitContext, arena_top);
constexpr std::int32_t kCtxTrap = offsetof(JitContext, trap_kind);

template <typename Fn>
std::uint64_t fn_addr(Fn* fn) {
  return reinterpret_cast<std::uint64_t>(reinterpret_cast<void*>(fn));
}

bool type_fits(Type type) {
  return type.is_void() || type.lanes() <= kMaxJitLanes;
}

/// Compile-time operand location: a frame word run or a constant-pool run
/// (with the lane values known, since the pool is materialized up front).
struct Src {
  bool is_const = false;
  std::int32_t word = -1;           // frame word of lane 0 (!is_const)
  const std::uint64_t* pool = nullptr;  // lane words (is_const)
  Type type;
};

class FunctionCompiler {
 public:
  FunctionCompiler(const ir::Function& fn, const interp::RuntimeEnv& env,
                   CompiledFunction& out,
                   CompiledFunction* (*resolve_callee)(void*,
                                                       const ir::Function*),
                   void* resolve_ctx)
      : fn_(fn),
        env_(env),
        out_(out),
        resolve_callee_(resolve_callee),
        resolve_ctx_(resolve_ctx) {}

  void run() {
    assign_slots();
    build_const_pool();
    size_phi_scratch();
    emit();
    out_.code = e_.finish();
  }

 private:
  using Reg = jit::Reg;
  using Xmm = jit::Xmm;
  using Cond = jit::Cond;
  using Label = Encoder::Label;

  // --- layout --------------------------------------------------------------

  void assign_slots() {
    // Same dense numbering as the interpreter's layout_for: arguments
    // first, then non-void instruction results in block order.
    auto add_slot = [&](const ir::Value* value) {
      const auto slot = static_cast<std::uint32_t>(out_.slot_word.size());
      slot_of_[value] = slot;
      out_.slot_word.push_back(next_word_);
      out_.slot_lanes.push_back(value->type().lanes());
      next_word_ += value->type().lanes();
      return slot;
    };
    next_word_ = 1;  // word 0 holds the saved arena watermark
    for (const auto& arg : fn_.args()) {
      out_.arg_slots.push_back(add_slot(arg.get()));
    }
    for (const auto& block : fn_) {
      for (const auto& inst : *block) {
        if (!inst->type().is_void()) add_slot(inst.get());
      }
    }
  }

  void build_const_pool() {
    // Dedup by Value* (like the decode cache) and materialize with
    // of_constant semantics: undef lanes read as zero. Sized before any
    // pointer is taken so OperandLoc::pool stays stable.
    std::vector<const ir::Constant*> order;
    for (const auto& block : fn_) {
      for (const auto& inst : *block) {
        for (const ir::Value* op : inst->operands()) {
          if (op->value_kind() != ir::ValueKind::Constant) continue;
          if (const_off_.contains(op)) continue;
          const auto* c = static_cast<const ir::Constant*>(op);
          const_off_[op] = pool_words_;
          pool_words_ += c->type().lanes();
          order.push_back(c);
        }
      }
    }
    out_.const_pool.resize(pool_words_, 0);
    std::size_t off = 0;
    for (const ir::Constant* c : order) {
      for (unsigned lane = 0; lane < c->type().lanes(); ++lane) {
        out_.const_pool[off + lane] = c->is_undef() ? 0 : c->raw(lane);
      }
      off += c->type().lanes();
    }
  }

  void size_phi_scratch() {
    // Tail scratch sized for the widest edge transfer (phi moves are
    // simultaneous: sources are staged before destinations are written).
    std::uint32_t widest = 0;
    for (const auto& block : fn_) {
      std::uint32_t words = 0;
      for (const auto& inst : *block) {
        if (inst->opcode() != Opcode::Phi) break;
        words += inst->type().lanes();
      }
      if (words > widest) widest = words;
    }
    scratch_word_ = next_word_;
    std::uint32_t total = next_word_ + widest;
    // Keep rsp ≡ 0 (mod 16) at helper call sites: entry rsp ≡ 8, four
    // pushes keep ≡ 8, so the frame must be ≡ 8 (mod 16), i.e. an odd
    // number of words.
    if (total % 2 == 0) total += 1;
    out_.frame_bytes = total * 8;
  }

  // --- operand access ------------------------------------------------------

  Src src_of(const ir::Value* value) const {
    Src s;
    s.type = value->type();
    if (value->value_kind() == ir::ValueKind::Constant) {
      s.is_const = true;
      s.pool = out_.const_pool.data() + const_off_.at(value);
    } else {
      s.word = static_cast<std::int32_t>(
          out_.slot_word[slot_of_.at(value)]);
    }
    return s;
  }

  std::int32_t word_of(const ir::Instruction& inst) const {
    if (inst.type().is_void()) return -1;
    return static_cast<std::int32_t>(out_.slot_word[slot_of_.at(&inst)]);
  }

  static std::int32_t disp(std::int32_t word, unsigned lane) {
    return (word + static_cast<std::int32_t>(lane)) * 8;
  }

  /// Raw lane word into a GPR (the RtVal::raw encoding, unchanged).
  void load_raw(Reg dst, const Src& s, unsigned lane) {
    if (s.is_const) {
      e_.mov_ri64(dst, s.pool[lane]);
    } else {
      e_.mov_rm(dst, Reg::RBP, disp(s.word, lane));
    }
  }

  /// Sign-extended element into a GPR. dst must be RAX/RCX/RDX (byte-wide
  /// movsx source restriction).
  void load_sext(Reg dst, const Src& s, unsigned lane) {
    const unsigned width = s.type.element_bits();
    if (s.is_const) {
      e_.mov_ri64(dst, static_cast<std::uint64_t>(ir::Constant::sign_extend(
                           s.pool[lane], width)));
      return;
    }
    e_.mov_rm(dst, Reg::RBP, disp(s.word, lane));
    switch (width) {
      case 64: break;
      case 32: e_.movsx_rr32(dst, dst); break;
      case 16: e_.movsx_rr16(dst, dst); break;
      case 8: e_.movsx_rr8(dst, dst); break;
      case 1:
        e_.and_ri(dst, 1);
        e_.neg(dst);
        break;
      default: VULFI_UNREACHABLE("bad element width");
    }
  }

  void store_word(std::int32_t dst_word, unsigned lane, Reg src) {
    e_.mov_mr(Reg::RBP, disp(dst_word, lane), src);
  }

  /// Truncates a register value to the element width, re-establishing the
  /// frame invariant after arithmetic that may overflow it.
  void emit_mask(Reg r, unsigned width) {
    switch (width) {
      case 64: break;
      case 32: e_.mov_rr32(r, r); break;  // 32-bit mov zero-extends
      case 16: e_.and_ri(r, 0xFFFF); break;
      case 8: e_.and_ri(r, 0xFF); break;
      case 1: e_.and_ri(r, 1); break;
      default: VULFI_UNREACHABLE("bad element width");
    }
  }

  /// Two consecutive lane words (16 bytes) into an xmm.
  void load_pair(Xmm dst, const Src& s, unsigned lane) {
    if (s.is_const) {
      e_.mov_ri64(Reg::R11,
                  reinterpret_cast<std::uint64_t>(s.pool + lane));
      e_.movdqu_xm(dst, Reg::R11, 0);
    } else {
      e_.movdqu_xm(dst, Reg::RBP, disp(s.word, lane));
    }
  }

  void store_pair(std::int32_t dst_word, unsigned lane, Xmm src) {
    e_.movdqu_mx(Reg::RBP, disp(dst_word, lane), src);
  }

  void load_f32(Xmm dst, const Src& s, unsigned lane) {
    if (s.is_const) {
      e_.mov_ri64(Reg::R11,
                  reinterpret_cast<std::uint64_t>(s.pool + lane));
      e_.movss_xm(dst, Reg::R11, 0);
    } else {
      e_.movss_xm(dst, Reg::RBP, disp(s.word, lane));
    }
  }

  void load_f64(Xmm dst, const Src& s, unsigned lane) {
    if (s.is_const) {
      e_.mov_ri64(Reg::R11,
                  reinterpret_cast<std::uint64_t>(s.pool + lane));
      e_.movsd_xm(dst, Reg::R11, 0);
    } else {
      e_.movsd_xm(dst, Reg::RBP, disp(s.word, lane));
    }
  }

  /// Stores the low f32 of an xmm as a frame lane word (bits zero-extended
  /// to 64 via a 32-bit GPR move, so upper-xmm garbage never leaks).
  void store_f32_result(std::int32_t dst_word, unsigned lane, Xmm src) {
    e_.movd_rx(Reg::RAX, src);
    store_word(dst_word, lane, Reg::RAX);
  }

  void store_f64_result(std::int32_t dst_word, unsigned lane, Xmm src) {
    e_.movsd_mx(Reg::RBP, disp(dst_word, lane), src);
  }

  // --- shared stubs and callouts -------------------------------------------

  /// The interpreter's per-instruction budget gate: check, then count.
  /// A phi-stat transfer at block entry bypasses this (emit_edge).
  void emit_budget(bool is_vector) {
    e_.mov_rm(Reg::RAX, Reg::RBX, kCtxTotal);
    e_.cmp_rm(Reg::RAX, Reg::RBX, kCtxMaxInsts);
    e_.jcc(Cond::AE, budget_label_);
    e_.add_ri(Reg::RAX, 1);
    e_.mov_mr(Reg::RBX, kCtxTotal, Reg::RAX);
    if (is_vector) e_.add_mi(Reg::RBX, kCtxVector, 1);
  }

  void emit_helper_call(std::uint64_t helper, const InstDesc* desc) {
    e_.mov_rr(Reg::RDI, Reg::RBX);
    e_.mov_rr(Reg::RSI, Reg::RBP);
    e_.mov_ri64(Reg::RDX, reinterpret_cast<std::uint64_t>(desc));
    e_.mov_ri64(Reg::RAX, helper);
    e_.call_reg(Reg::RAX);
    e_.cmp_mi(Reg::RBX, kCtxTrap, 0);
    e_.jcc(Cond::NE, ret_label_);
  }

  /// Fixed-detail trap stub: vulfi_jit_trap(ctx, kind, detail) then bail.
  void emit_trap_stub(Label label, interp::TrapKind kind,
                      const char* detail) {
    e_.bind(label);
    e_.mov_rr(Reg::RDI, Reg::RBX);
    e_.mov_ri32(Reg::RSI, static_cast<std::uint32_t>(kind));
    e_.mov_ri64(Reg::RDX, reinterpret_cast<std::uint64_t>(detail));
    e_.mov_ri64(Reg::RAX, fn_addr(&vulfi_jit_trap));
    e_.call_reg(Reg::RAX);
    e_.jmp(ret_label_);
  }

  Label lane_trap_label(Label& label) {
    if (label == kNoLabel) label = e_.new_label();
    return label;
  }

  /// Registers a per-instruction out-of-bounds stub. The inline check
  /// jumps here with the failing guest address in RDI.
  Label oob_label(unsigned bytes, bool is_store) {
    oob_stubs_.push_back({e_.new_label(), bytes, is_store});
    return oob_stubs_.back().label;
  }

  /// Inline Arena::valid(addr, bytes) for a constant size <= 8: since
  /// top >= kGuardBytes >= 8, the `size <= top` clause is vacuous and the
  /// check reduces to addr >= 64 && addr <= top - bytes. Guest address is
  /// expected (and preserved) in RDI.
  void emit_bounds_check(unsigned bytes, Label oob) {
    e_.cmp_ri(Reg::RDI, static_cast<std::int32_t>(interp::Arena::kGuardBytes));
    e_.jcc(Cond::B, oob);
    e_.mov_rm(Reg::RAX, Reg::RBX, kCtxArenaTop);
    e_.sub_ri(Reg::RAX, static_cast<std::int32_t>(bytes));
    e_.cmp_rr(Reg::RDI, Reg::RAX);
    e_.jcc(Cond::A, oob);
  }

  InstDesc* make_desc(const ir::Instruction& inst) {
    out_.descs.emplace_back();
    InstDesc& desc = out_.descs.back();
    desc.inst = &inst;
    desc.type = inst.type();
    desc.result_word = word_of(inst);
    for (const ir::Value* op : inst.operands()) {
      const Src s = src_of(op);
      OperandLoc loc;
      loc.word = s.is_const ? -1 : s.word;
      loc.pool = s.pool;
      loc.type = s.type;
      desc.operands.push_back(loc);
    }
    return &desc;
  }

  // --- per-opcode lowering -------------------------------------------------

  void emit_int_binary(const ir::Instruction& inst) {
    const Src lhs = src_of(inst.operand(0));
    const Src rhs = src_of(inst.operand(1));
    const std::int32_t dst = word_of(inst);
    const unsigned width = inst.type().element_bits();
    const unsigned lanes = inst.type().lanes();
    const Opcode op = inst.opcode();

    const bool bitwise =
        op == Opcode::And || op == Opcode::Or || op == Opcode::Xor;
    const bool packed_addsub =
        (op == Opcode::Add || op == Opcode::Sub) &&
        (width == 8 || width == 16 || width == 32 || width == 64);

    unsigned lane = 0;
    if (bitwise || packed_addsub) {
      while (lane + 2 <= lanes) {
        load_pair(Xmm::XMM0, lhs, lane);
        load_pair(Xmm::XMM1, rhs, lane);
        switch (op) {
          case Opcode::And: e_.pand(Xmm::XMM0, Xmm::XMM1); break;
          case Opcode::Or: e_.por(Xmm::XMM0, Xmm::XMM1); break;
          case Opcode::Xor: e_.pxor(Xmm::XMM0, Xmm::XMM1); break;
          case Opcode::Add:
            // Per-element adds on upper-zero lane words: the live bytes
            // wrap at the element width, the zero bytes stay zero, so the
            // frame invariant is preserved without a masking pass.
            switch (width) {
              case 8: e_.paddb(Xmm::XMM0, Xmm::XMM1); break;
              case 16: e_.paddw(Xmm::XMM0, Xmm::XMM1); break;
              case 32: e_.paddd(Xmm::XMM0, Xmm::XMM1); break;
              default: e_.paddq(Xmm::XMM0, Xmm::XMM1); break;
            }
            break;
          case Opcode::Sub:
            switch (width) {
              case 8: e_.psubb(Xmm::XMM0, Xmm::XMM1); break;
              case 16: e_.psubw(Xmm::XMM0, Xmm::XMM1); break;
              case 32: e_.psubd(Xmm::XMM0, Xmm::XMM1); break;
              default: e_.psubq(Xmm::XMM0, Xmm::XMM1); break;
            }
            break;
          default: VULFI_UNREACHABLE("not a packed int opcode");
        }
        store_pair(dst, lane, Xmm::XMM0);
        lane += 2;
      }
    }
    for (; lane < lanes; ++lane) {
      load_raw(Reg::RAX, lhs, lane);
      load_raw(Reg::RCX, rhs, lane);
      switch (op) {
        case Opcode::Add: e_.add_rr(Reg::RAX, Reg::RCX); break;
        case Opcode::Sub: e_.sub_rr(Reg::RAX, Reg::RCX); break;
        case Opcode::Mul: e_.imul_rr(Reg::RAX, Reg::RCX); break;
        case Opcode::And: e_.and_rr(Reg::RAX, Reg::RCX); break;
        case Opcode::Or: e_.or_rr(Reg::RAX, Reg::RCX); break;
        case Opcode::Xor: e_.xor_rr(Reg::RAX, Reg::RCX); break;
        default: VULFI_UNREACHABLE("not an inline int opcode");
      }
      if (!bitwise) emit_mask(Reg::RAX, width);
      store_word(dst, lane, Reg::RAX);
    }
  }

  void emit_shift(const ir::Instruction& inst) {
    const Src lhs = src_of(inst.operand(0));
    const Src rhs = src_of(inst.operand(1));
    const std::int32_t dst = word_of(inst);
    const unsigned width = inst.type().element_bits();
    const Opcode op = inst.opcode();
    for (unsigned lane = 0; lane < inst.type().lanes(); ++lane) {
      // Amount is the zero-extended element; the frame/pool word already
      // is exactly that.
      load_raw(Reg::RCX, rhs, lane);
      if (op == Opcode::AShr) {
        load_sext(Reg::RAX, lhs, lane);
      } else {
        load_raw(Reg::RAX, lhs, lane);
      }
      const Label in_range = e_.new_label();
      const Label done = e_.new_label();
      e_.cmp_ri(Reg::RCX, static_cast<std::int32_t>(width));
      e_.jcc(Cond::B, in_range);
      // Deterministic overshift (interp::shift_result): logical shifts
      // vanish; ashr keeps the sign fill.
      if (op == Opcode::AShr) {
        e_.sar_ri(Reg::RAX, 63);
      } else {
        e_.xor_rr(Reg::RAX, Reg::RAX);
      }
      e_.jmp(done);
      e_.bind(in_range);
      switch (op) {
        case Opcode::Shl: e_.shl_cl(Reg::RAX); break;
        case Opcode::LShr: e_.shr_cl(Reg::RAX); break;
        case Opcode::AShr: e_.sar_cl(Reg::RAX); break;
        default: VULFI_UNREACHABLE("not a shift opcode");
      }
      e_.bind(done);
      emit_mask(Reg::RAX, width);
      store_word(dst, lane, Reg::RAX);
    }
  }

  void emit_fp_binary(const ir::Instruction& inst) {
    const Src lhs = src_of(inst.operand(0));
    const Src rhs = src_of(inst.operand(1));
    const std::int32_t dst = word_of(inst);
    const unsigned lanes = inst.type().lanes();
    const bool single = inst.type().kind() == TypeKind::F32;
    const Opcode op = inst.opcode();

    auto op_ss = [&](Xmm a, Xmm b) {
      switch (op) {
        case Opcode::FAdd: e_.addss(a, b); break;
        case Opcode::FSub: e_.subss(a, b); break;
        case Opcode::FMul: e_.mulss(a, b); break;
        default: e_.divss(a, b); break;
      }
    };
    auto op_sd = [&](Xmm a, Xmm b) {
      switch (op) {
        case Opcode::FAdd: e_.addsd(a, b); break;
        case Opcode::FSub: e_.subsd(a, b); break;
        case Opcode::FMul: e_.mulsd(a, b); break;
        default: e_.divsd(a, b); break;
      }
    };
    auto op_ps = [&](Xmm a, Xmm b) {
      switch (op) {
        case Opcode::FAdd: e_.addps(a, b); break;
        case Opcode::FSub: e_.subps(a, b); break;
        case Opcode::FMul: e_.mulps(a, b); break;
        default: e_.divps(a, b); break;
      }
    };
    auto op_pd = [&](Xmm a, Xmm b) {
      switch (op) {
        case Opcode::FAdd: e_.addpd(a, b); break;
        case Opcode::FSub: e_.subpd(a, b); break;
        case Opcode::FMul: e_.mulpd(a, b); break;
        default: e_.divpd(a, b); break;
      }
    };

    unsigned lane = 0;
    if (!single) {
      // f64 lane pairs are already packed doubles.
      while (lane + 2 <= lanes) {
        load_pair(Xmm::XMM0, lhs, lane);
        load_pair(Xmm::XMM1, rhs, lane);
        op_pd(Xmm::XMM0, Xmm::XMM1);
        store_pair(dst, lane, Xmm::XMM0);
        lane += 2;
      }
      for (; lane < lanes; ++lane) {
        load_f64(Xmm::XMM0, lhs, lane);
        load_f64(Xmm::XMM1, rhs, lane);
        op_sd(Xmm::XMM0, Xmm::XMM1);
        store_f64_result(dst, lane, Xmm::XMM0);
      }
      return;
    }
    // f32 lanes sit one-per-word; pack quads (or a duplicated pair) into
    // dwords, operate packed, then unpack against zero to restore the
    // upper-zero word encoding.
    while (lane + 4 <= lanes) {
      load_pair(Xmm::XMM0, lhs, lane);
      load_pair(Xmm::XMM2, lhs, lane + 2);
      e_.shufps(Xmm::XMM0, Xmm::XMM2, 0x88);
      load_pair(Xmm::XMM1, rhs, lane);
      load_pair(Xmm::XMM2, rhs, lane + 2);
      e_.shufps(Xmm::XMM1, Xmm::XMM2, 0x88);
      op_ps(Xmm::XMM0, Xmm::XMM1);
      e_.pxor(Xmm::XMM3, Xmm::XMM3);
      e_.movaps_xx(Xmm::XMM2, Xmm::XMM0);
      e_.punpckldq(Xmm::XMM0, Xmm::XMM3);
      e_.punpckhdq(Xmm::XMM2, Xmm::XMM3);
      store_pair(dst, lane, Xmm::XMM0);
      store_pair(dst, lane + 2, Xmm::XMM2);
      lane += 4;
    }
    while (lane + 2 <= lanes) {
      load_pair(Xmm::XMM0, lhs, lane);
      e_.shufps(Xmm::XMM0, Xmm::XMM0, 0x88);  // [l0,l1,l0,l1]
      load_pair(Xmm::XMM1, rhs, lane);
      e_.shufps(Xmm::XMM1, Xmm::XMM1, 0x88);
      op_ps(Xmm::XMM0, Xmm::XMM1);
      e_.pxor(Xmm::XMM3, Xmm::XMM3);
      e_.punpckldq(Xmm::XMM0, Xmm::XMM3);
      store_pair(dst, lane, Xmm::XMM0);
      lane += 2;
    }
    for (; lane < lanes; ++lane) {
      load_f32(Xmm::XMM0, lhs, lane);
      load_f32(Xmm::XMM1, rhs, lane);
      op_ss(Xmm::XMM0, Xmm::XMM1);
      store_f32_result(dst, lane, Xmm::XMM0);
    }
  }

  void emit_fneg(const ir::Instruction& inst) {
    const Src src = src_of(inst.operand(0));
    const std::int32_t dst = word_of(inst);
    const bool single = inst.type().kind() == TypeKind::F32;
    e_.mov_ri64(Reg::RAX, std::uint64_t{1} << 63);
    e_.movq_xr(Xmm::XMM1, Reg::RAX);
    for (unsigned lane = 0; lane < inst.type().lanes(); ++lane) {
      if (single) {
        // Match the interpreter's round trip through double: it widens,
        // negates the double, and narrows — which quiets a signalling
        // NaN where a bare 32-bit sign flip would not.
        load_f32(Xmm::XMM0, src, lane);
        e_.cvtss2sd(Xmm::XMM0, Xmm::XMM0);
        e_.xorpd(Xmm::XMM0, Xmm::XMM1);
        e_.cvtsd2ss(Xmm::XMM0, Xmm::XMM0);
        store_f32_result(dst, lane, Xmm::XMM0);
      } else {
        load_f64(Xmm::XMM0, src, lane);
        e_.xorpd(Xmm::XMM0, Xmm::XMM1);
        store_f64_result(dst, lane, Xmm::XMM0);
      }
    }
  }

  void emit_icmp(const ir::Instruction& inst) {
    const Src lhs = src_of(inst.operand(0));
    const Src rhs = src_of(inst.operand(1));
    const std::int32_t dst = word_of(inst);
    const ir::ICmpPred pred = inst.icmp_pred();
    const bool is_signed =
        pred == ir::ICmpPred::SLT || pred == ir::ICmpPred::SLE ||
        pred == ir::ICmpPred::SGT || pred == ir::ICmpPred::SGE;
    Cond cc = Cond::E;
    switch (pred) {
      case ir::ICmpPred::EQ: cc = Cond::E; break;
      case ir::ICmpPred::NE: cc = Cond::NE; break;
      case ir::ICmpPred::SLT: cc = Cond::L; break;
      case ir::ICmpPred::SLE: cc = Cond::LE; break;
      case ir::ICmpPred::SGT: cc = Cond::G; break;
      case ir::ICmpPred::SGE: cc = Cond::GE; break;
      case ir::ICmpPred::ULT: cc = Cond::B; break;
      case ir::ICmpPred::ULE: cc = Cond::BE; break;
      case ir::ICmpPred::UGT: cc = Cond::A; break;
      case ir::ICmpPred::UGE: cc = Cond::AE; break;
    }
    for (unsigned lane = 0; lane < inst.type().lanes(); ++lane) {
      if (is_signed) {
        load_sext(Reg::RAX, lhs, lane);
        load_sext(Reg::RCX, rhs, lane);
      } else {
        // Raw words are the zero-extended elements by the frame invariant.
        load_raw(Reg::RAX, lhs, lane);
        load_raw(Reg::RCX, rhs, lane);
      }
      e_.cmp_rr(Reg::RAX, Reg::RCX);
      e_.setcc_zx(cc, Reg::RAX);
      store_word(dst, lane, Reg::RAX);
    }
  }

  void emit_fcmp(const ir::Instruction& inst) {
    const Src lhs = src_of(inst.operand(0));
    const Src rhs = src_of(inst.operand(1));
    const std::int32_t dst = word_of(inst);
    const bool single = inst.operand(0)->type().kind() == TypeKind::F32;
    const ir::FCmpPred pred = inst.fcmp_pred();

    bool swap = false;       // compare (rhs, lhs) instead
    Cond cc = Cond::E;       // primary setcc
    enum class Combine { None, AndNP, OrP } combine = Combine::None;
    switch (pred) {
      case ir::FCmpPred::OEQ: cc = Cond::E; combine = Combine::AndNP; break;
      case ir::FCmpPred::ONE: cc = Cond::NE; break;  // ZF=1 when unordered
      case ir::FCmpPred::OLT: cc = Cond::A; swap = true; break;
      case ir::FCmpPred::OLE: cc = Cond::AE; swap = true; break;
      case ir::FCmpPred::OGT: cc = Cond::A; break;
      case ir::FCmpPred::OGE: cc = Cond::AE; break;
      case ir::FCmpPred::UEQ: cc = Cond::E; break;  // ZF=1 when unordered
      case ir::FCmpPred::UNE: cc = Cond::NE; combine = Combine::OrP; break;
      case ir::FCmpPred::ULT: cc = Cond::B; break;
      case ir::FCmpPred::ULE: cc = Cond::BE; break;
      case ir::FCmpPred::UGT: cc = Cond::B; swap = true; break;
      case ir::FCmpPred::UGE: cc = Cond::BE; swap = true; break;
      case ir::FCmpPred::ORD: cc = Cond::NP; break;
      case ir::FCmpPred::UNO: cc = Cond::P; break;
    }
    for (unsigned lane = 0; lane < inst.type().lanes(); ++lane) {
      if (single) {
        load_f32(Xmm::XMM0, swap ? rhs : lhs, lane);
        load_f32(Xmm::XMM1, swap ? lhs : rhs, lane);
        e_.ucomiss(Xmm::XMM0, Xmm::XMM1);
      } else {
        load_f64(Xmm::XMM0, swap ? rhs : lhs, lane);
        load_f64(Xmm::XMM1, swap ? lhs : rhs, lane);
        e_.ucomisd(Xmm::XMM0, Xmm::XMM1);
      }
      e_.setcc_zx(cc, Reg::RAX);
      if (combine == Combine::AndNP) {
        e_.setcc_zx(Cond::NP, Reg::RCX);
        e_.and_rr(Reg::RAX, Reg::RCX);
      } else if (combine == Combine::OrP) {
        e_.setcc_zx(Cond::P, Reg::RCX);
        e_.or_rr(Reg::RAX, Reg::RCX);
      }
      store_word(dst, lane, Reg::RAX);
    }
  }

  void emit_load(const ir::Instruction& inst) {
    const Src ptr = src_of(inst.operand(0));
    const std::int32_t dst = word_of(inst);
    const Type type = inst.type();
    const unsigned bytes = type.element_bytes();
    const Label oob = oob_label(bytes, /*is_store=*/false);
    load_raw(Reg::R10, ptr, 0);
    for (unsigned lane = 0; lane < type.lanes(); ++lane) {
      e_.lea(Reg::RDI, Reg::R10, static_cast<std::int32_t>(lane * bytes));
      emit_bounds_check(bytes, oob);
      switch (bytes) {
        case 1: e_.movzx_rm8_index(Reg::RAX, Reg::R13, Reg::RDI, 1, 0); break;
        case 2: e_.movzx_rm16_index(Reg::RAX, Reg::R13, Reg::RDI, 1, 0); break;
        case 4: e_.mov_rm32_index(Reg::RAX, Reg::R13, Reg::RDI, 1, 0); break;
        default: e_.mov_rm_index(Reg::RAX, Reg::R13, Reg::RDI, 1, 0); break;
      }
      // An i1 occupies a whole byte in memory; only bit 0 is the value.
      if (type.element_bits() == 1) e_.and_ri(Reg::RAX, 1);
      store_word(dst, lane, Reg::RAX);
    }
  }

  void emit_store(const ir::Instruction& inst) {
    const Src value = src_of(inst.operand(0));
    const Src ptr = src_of(inst.operand(1));
    const Type type = inst.operand(0)->type();
    const unsigned bytes = type.element_bytes();
    const Label oob = oob_label(bytes, /*is_store=*/true);
    load_raw(Reg::R10, ptr, 0);
    // Lane-at-a-time, check-then-write: a mid-vector fault leaves the
    // earlier lanes committed, exactly like eval_store.
    for (unsigned lane = 0; lane < type.lanes(); ++lane) {
      e_.lea(Reg::RDI, Reg::R10, static_cast<std::int32_t>(lane * bytes));
      emit_bounds_check(bytes, oob);
      load_raw(Reg::RAX, value, lane);
      switch (bytes) {
        case 1: e_.mov_mr8_index(Reg::R13, Reg::RDI, 1, 0, Reg::RAX); break;
        case 2: e_.mov_mr16_index(Reg::R13, Reg::RDI, 1, 0, Reg::RAX); break;
        case 4: e_.mov_mr32_index(Reg::R13, Reg::RDI, 1, 0, Reg::RAX); break;
        default: e_.mov_mr_index(Reg::R13, Reg::RDI, 1, 0, Reg::RAX); break;
      }
    }
  }

  void emit_gep(const ir::Instruction& inst) {
    const Src base = src_of(inst.operand(0));
    load_raw(Reg::RAX, base, 0);
    const auto& strides = inst.gep_strides();
    for (unsigned i = 1; i < inst.num_operands(); ++i) {
      const Src index = src_of(inst.operand(i));
      load_sext(Reg::RCX, index, 0);
      const std::uint64_t stride = strides[i - 1];
      if (stride <= 0x7FFFFFFF) {
        e_.imul_rri(Reg::RCX, Reg::RCX, static_cast<std::int32_t>(stride));
      } else {
        e_.mov_ri64(Reg::RDX, stride);
        e_.imul_rr(Reg::RCX, Reg::RDX);
      }
      e_.add_rr(Reg::RAX, Reg::RCX);  // wraps mod 2^64, like the interpreter
    }
    store_word(word_of(inst), 0, Reg::RAX);
  }

  void emit_extract(const ir::Instruction& inst) {
    const Src vec = src_of(inst.operand(0));
    const Src idx = src_of(inst.operand(1));
    const unsigned lanes = vec.type.lanes();
    const std::int32_t dst = word_of(inst);
    const Label trap = lane_trap_label(extract_label_);
    if (idx.is_const) {
      const std::uint64_t lane = idx.pool[0];
      if (lane >= lanes) {
        e_.jmp(trap);
        return;
      }
      load_raw(Reg::RAX, vec, static_cast<unsigned>(lane));
      store_word(dst, 0, Reg::RAX);
      return;
    }
    load_raw(Reg::RCX, idx, 0);
    e_.cmp_ri(Reg::RCX, static_cast<std::int32_t>(lanes));
    e_.jcc(Cond::AE, trap);
    if (vec.is_const) {
      e_.mov_ri64(Reg::R11, reinterpret_cast<std::uint64_t>(vec.pool));
      e_.mov_rm_index(Reg::RAX, Reg::R11, Reg::RCX, 8, 0);
    } else {
      e_.mov_rm_index(Reg::RAX, Reg::RBP, Reg::RCX, 8, vec.word * 8);
    }
    store_word(dst, 0, Reg::RAX);
  }

  void emit_insert(const ir::Instruction& inst) {
    const Src vec = src_of(inst.operand(0));
    const Src elem = src_of(inst.operand(1));
    const Src idx = src_of(inst.operand(2));
    const unsigned lanes = vec.type.lanes();
    const std::int32_t dst = word_of(inst);
    const Label trap = lane_trap_label(insert_label_);
    if (idx.is_const && idx.pool[0] >= lanes) {
      e_.jmp(trap);
      return;
    }
    // Copy the vector into the result slot first; a trap abandons the run
    // before the slot could be observed.
    for (unsigned lane = 0; lane < lanes; ++lane) {
      load_raw(Reg::RAX, vec, lane);
      store_word(dst, lane, Reg::RAX);
    }
    if (idx.is_const) {
      load_raw(Reg::RAX, elem, 0);
      store_word(dst, static_cast<unsigned>(idx.pool[0]), Reg::RAX);
      return;
    }
    load_raw(Reg::RCX, idx, 0);
    e_.cmp_ri(Reg::RCX, static_cast<std::int32_t>(lanes));
    e_.jcc(Cond::AE, trap);
    load_raw(Reg::RAX, elem, 0);
    e_.mov_mr_index(Reg::RBP, Reg::RCX, 8, dst * 8, Reg::RAX);
  }

  void emit_shuffle(const ir::Instruction& inst) {
    const Src v1 = src_of(inst.operand(0));
    const Src v2 = src_of(inst.operand(1));
    const unsigned in_lanes = v1.type.lanes();
    const std::int32_t dst = word_of(inst);
    const auto& mask = inst.shuffle_mask();
    for (unsigned lane = 0; lane < inst.type().lanes(); ++lane) {
      const int m = mask[lane];
      if (m < 0) {
        e_.xor_rr(Reg::RAX, Reg::RAX);  // undef lane reads as zero
      } else if (static_cast<unsigned>(m) < in_lanes) {
        load_raw(Reg::RAX, v1, static_cast<unsigned>(m));
      } else {
        load_raw(Reg::RAX, v2, static_cast<unsigned>(m) - in_lanes);
      }
      store_word(dst, lane, Reg::RAX);
    }
  }

  void emit_cast(const ir::Instruction& inst) {
    const Src src = src_of(inst.operand(0));
    const std::int32_t dst = word_of(inst);
    const Type dst_type = inst.type();
    const unsigned width = dst_type.element_bits();
    for (unsigned lane = 0; lane < dst_type.lanes(); ++lane) {
      switch (inst.opcode()) {
        case Opcode::Trunc:
        case Opcode::PtrToInt:
          load_raw(Reg::RAX, src, lane);
          emit_mask(Reg::RAX, width);
          store_word(dst, lane, Reg::RAX);
          break;
        case Opcode::ZExt:
        case Opcode::IntToPtr:
          // Source words are already zero-extended to a wider-or-equal
          // destination: a raw copy.
          load_raw(Reg::RAX, src, lane);
          store_word(dst, lane, Reg::RAX);
          break;
        case Opcode::Bitcast:
          load_raw(Reg::RAX, src, lane);
          if (dst_type.is_integer()) emit_mask(Reg::RAX, width);
          store_word(dst, lane, Reg::RAX);
          break;
        case Opcode::SExt:
          load_sext(Reg::RAX, src, lane);
          emit_mask(Reg::RAX, width);
          store_word(dst, lane, Reg::RAX);
          break;
        case Opcode::FPTrunc:
          load_f64(Xmm::XMM0, src, lane);
          e_.cvtsd2ss(Xmm::XMM0, Xmm::XMM0);
          store_f32_result(dst, lane, Xmm::XMM0);
          break;
        case Opcode::FPExt:
          load_f32(Xmm::XMM0, src, lane);
          e_.cvtss2sd(Xmm::XMM0, Xmm::XMM0);
          store_f64_result(dst, lane, Xmm::XMM0);
          break;
        case Opcode::SIToFP:
          // The interpreter converts through double even for an f32
          // destination; cvtsi2sd + cvtsd2ss reproduces that exact
          // double rounding.
          load_sext(Reg::RAX, src, lane);
          e_.cvtsi2sd(Xmm::XMM0, Reg::RAX);
          if (dst_type.kind() == TypeKind::F32) {
            e_.cvtsd2ss(Xmm::XMM0, Xmm::XMM0);
            store_f32_result(dst, lane, Xmm::XMM0);
          } else {
            store_f64_result(dst, lane, Xmm::XMM0);
          }
          break;
        default:
          VULFI_UNREACHABLE("cast handled by slow_op");
      }
    }
  }

  void emit_select(const ir::Instruction& inst) {
    const Src cond = src_of(inst.operand(0));
    const Src on_true = src_of(inst.operand(1));
    const Src on_false = src_of(inst.operand(2));
    const std::int32_t dst = word_of(inst);
    for (unsigned lane = 0; lane < inst.type().lanes(); ++lane) {
      const unsigned cond_lane = cond.type.is_vector() ? lane : 0;
      load_raw(Reg::RDX, cond, cond_lane);
      e_.test_ri(Reg::RDX, 1);
      load_raw(Reg::RAX, on_true, lane);
      load_raw(Reg::RCX, on_false, lane);
      e_.cmovcc(Cond::E, Reg::RAX, Reg::RCX);  // bit clear -> false value
      store_word(dst, lane, Reg::RAX);
    }
  }

  /// Scalar runtime calls with a registered raw fast path (the fault
  /// injectors) compile to a direct C call on frame words: no InstDesc,
  /// no RtVal marshalling, no trap-flag test (the raw contract forbids
  /// trapping). This is the campaign hot path — instrumentation turns
  /// every fault site into one of these calls, and they outnumber the
  /// program's own instructions.
  bool try_emit_raw_runtime_call(const ir::Instruction& inst,
                                 const ir::Function& callee) {
    if (inst.num_operands() != 4 || inst.type().is_void() ||
        inst.type().lanes() != 1) {
      return false;
    }
    for (unsigned i = 0; i < inst.num_operands(); ++i) {
      if (inst.operand(i)->type().lanes() != 1) return false;
    }
    const interp::RawRuntimeHandler* raw =
        env_.find_raw_handler(callee.name());
    if (raw == nullptr) return false;
    e_.add_mi(Reg::RBX, kCtxCalls, 1);  // eval_call counts before dispatch
    e_.mov_ri64(Reg::RDI, reinterpret_cast<std::uint64_t>(raw->self));
    load_raw(Reg::RSI, src_of(inst.operand(0)), 0);
    load_raw(Reg::RDX, src_of(inst.operand(1)), 0);
    load_raw(Reg::RCX, src_of(inst.operand(2)), 0);
    load_raw(Reg::R8, src_of(inst.operand(3)), 0);
    e_.mov_ri64(Reg::RAX, reinterpret_cast<std::uint64_t>(raw->fn));
    e_.call_reg(Reg::RAX);
    store_word(word_of(inst), 0, Reg::RAX);
    return true;
  }

  void emit_call(const ir::Instruction& inst) {
    const ir::Function* raw_callee = inst.callee();
    if (raw_callee->kind() == ir::FunctionKind::Runtime &&
        try_emit_raw_runtime_call(inst, *raw_callee)) {
      return;
    }
    InstDesc* desc = make_desc(inst);
    const ir::Function* callee = inst.callee();
    if (callee->kind() == ir::FunctionKind::Runtime) {
      desc->handler = env_.find_handler(callee->name());
      VULFI_ASSERT(desc->handler != nullptr,
                   "compiled call to unregistered runtime function");
    } else if (callee->kind() == ir::FunctionKind::Definition) {
      desc->callee = resolve_callee_(resolve_ctx_, callee);
      VULFI_ASSERT(desc->callee != nullptr, "callee was not compiled");
    }
    emit_helper_call(fn_addr(&vulfi_jit_call), desc);
  }

  /// Phi transfer + stat bump for one CFG edge, mirroring take_edge: all
  /// sources staged to scratch, then written, then the entered block's
  /// leading-phi counts land without a budget check.
  void emit_edge(const ir::BasicBlock* from, const ir::BasicBlock* to) {
    std::uint32_t off = scratch_word_;
    std::uint32_t phi_count = 0;
    std::uint32_t phi_vector_count = 0;
    std::vector<const ir::Instruction*> phis;
    for (const auto& inst : *to) {
      if (inst->opcode() != Opcode::Phi) break;
      phis.push_back(inst.get());
      phi_count += 1;
      if (inst->is_vector_instruction()) phi_vector_count += 1;
    }
    for (const ir::Instruction* phi : phis) {
      const Src src = src_of(phi->phi_value_for(from));
      for (unsigned lane = 0; lane < phi->type().lanes(); ++lane) {
        load_raw(Reg::RAX, src, lane);
        e_.mov_mr(Reg::RBP,
                  static_cast<std::int32_t>((off + lane) * 8), Reg::RAX);
      }
      off += phi->type().lanes();
    }
    off = scratch_word_;
    for (const ir::Instruction* phi : phis) {
      const std::int32_t dst = word_of(*phi);
      for (unsigned lane = 0; lane < phi->type().lanes(); ++lane) {
        e_.mov_rm(Reg::RAX, Reg::RBP,
                  static_cast<std::int32_t>((off + lane) * 8));
        store_word(dst, lane, Reg::RAX);
      }
      off += phi->type().lanes();
    }
    if (phi_count > 0) {
      e_.add_mi(Reg::RBX, kCtxTotal, static_cast<std::int32_t>(phi_count));
    }
    if (phi_vector_count > 0) {
      e_.add_mi(Reg::RBX, kCtxVector,
                static_cast<std::int32_t>(phi_vector_count));
    }
  }

  void emit_ret(const ir::Instruction& inst) {
    if (inst.num_operands() > 0) {
      const Src src = src_of(inst.operand(0));
      for (unsigned lane = 0; lane < src.type.lanes(); ++lane) {
        load_raw(Reg::RAX, src, lane);
        e_.mov_mr(Reg::R12, static_cast<std::int32_t>(lane * 8), Reg::RAX);
      }
    }
    e_.jmp(ret_label_);
  }

  void emit_instruction(const ir::Instruction& inst) {
    emit_budget(inst.is_vector_instruction());
    switch (inst.opcode()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::And: case Opcode::Or: case Opcode::Xor:
        emit_int_binary(inst);
        break;
      case Opcode::SDiv: case Opcode::UDiv: case Opcode::SRem:
      case Opcode::URem: case Opcode::FRem:
      case Opcode::FPToSI: case Opcode::FPToUI: case Opcode::UIToFP:
        emit_helper_call(fn_addr(&vulfi_jit_slow_op), make_desc(inst));
        break;
      case Opcode::Shl: case Opcode::LShr: case Opcode::AShr:
        emit_shift(inst);
        break;
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv:
        emit_fp_binary(inst);
        break;
      case Opcode::FNeg:
        emit_fneg(inst);
        break;
      case Opcode::ICmp:
        emit_icmp(inst);
        break;
      case Opcode::FCmp:
        emit_fcmp(inst);
        break;
      case Opcode::Alloca:
        emit_helper_call(fn_addr(&vulfi_jit_alloca), make_desc(inst));
        break;
      case Opcode::Load:
        emit_load(inst);
        break;
      case Opcode::Store:
        emit_store(inst);
        break;
      case Opcode::GetElementPtr:
        emit_gep(inst);
        break;
      case Opcode::ExtractElement:
        emit_extract(inst);
        break;
      case Opcode::InsertElement:
        emit_insert(inst);
        break;
      case Opcode::ShuffleVector:
        emit_shuffle(inst);
        break;
      case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt:
      case Opcode::FPTrunc: case Opcode::FPExt: case Opcode::SIToFP:
      case Opcode::PtrToInt: case Opcode::IntToPtr: case Opcode::Bitcast:
        emit_cast(inst);
        break;
      case Opcode::Select:
        emit_select(inst);
        break;
      case Opcode::Call:
        emit_call(inst);
        break;
      case Opcode::Br: {
        const ir::BasicBlock* to = inst.successor(0);
        emit_edge(inst.parent(), to);
        e_.jmp(block_labels_.at(to));
        break;
      }
      case Opcode::CondBr: {
        const Src cond = src_of(inst.operand(0));
        load_raw(Reg::RAX, cond, 0);
        e_.test_ri(Reg::RAX, 1);
        const Label else_edge = e_.new_label();
        e_.jcc(Cond::E, else_edge);
        emit_edge(inst.parent(), inst.successor(0));
        e_.jmp(block_labels_.at(inst.successor(0)));
        e_.bind(else_edge);
        emit_edge(inst.parent(), inst.successor(1));
        e_.jmp(block_labels_.at(inst.successor(1)));
        break;
      }
      case Opcode::Ret:
        emit_ret(inst);
        break;
      case Opcode::Unreachable:
        e_.jmp(lane_trap_label(unreachable_label_));
        break;
      case Opcode::Phi:
        VULFI_UNREACHABLE("phis are lowered at edges");
    }
  }

  void emit() {
    ret_label_ = e_.new_label();
    budget_label_ = e_.new_label();
    for (const auto& block : fn_) {
      block_labels_[block.get()] = e_.new_label();
    }

    // Prologue: pin rbx=ctx, rbp=frame, r12=retv, r13=arena base; save the
    // entry watermark in frame word 0.
    e_.push(Reg::RBP);
    e_.push(Reg::RBX);
    e_.push(Reg::R12);
    e_.push(Reg::R13);
    e_.sub_ri(Reg::RSP, static_cast<std::int32_t>(out_.frame_bytes));
    e_.mov_rr(Reg::RBP, Reg::RSP);
    e_.mov_rr(Reg::RBX, Reg::RDI);
    e_.mov_rr(Reg::R12, Reg::RDX);
    e_.mov_rm(Reg::R13, Reg::RBX, kCtxArenaBase);
    e_.mov_rm(Reg::RAX, Reg::RBX, kCtxArenaTop);
    e_.mov_mr(Reg::RBP, 0, Reg::RAX);
    // Spill the flattened arguments (rsi) into their slots.
    unsigned argv_word = 0;
    for (unsigned i = 0; i < fn_.num_args(); ++i) {
      const std::uint32_t slot = out_.arg_slots[i];
      const std::int32_t word =
          static_cast<std::int32_t>(out_.slot_word[slot]);
      for (unsigned lane = 0; lane < out_.slot_lanes[slot]; ++lane) {
        e_.mov_rm(Reg::RAX, Reg::RSI,
                  static_cast<std::int32_t>(argv_word * 8));
        store_word(word, lane, Reg::RAX);
        argv_word += 1;
      }
    }

    for (const auto& block : fn_) {
      e_.bind(block_labels_.at(block.get()));
      for (const auto& inst : *block) {
        if (inst->opcode() == Opcode::Phi) continue;
        emit_instruction(*inst);
      }
    }

    // Shared stubs.
    emit_trap_stub(budget_label_, interp::TrapKind::InstructionBudget,
                   kBudgetDetail);
    if (unreachable_label_ != kNoLabel) {
      emit_trap_stub(unreachable_label_, interp::TrapKind::UnreachableExecuted,
                     kUnreachableDetail);
    }
    if (extract_label_ != kNoLabel) {
      emit_trap_stub(extract_label_, interp::TrapKind::BadLaneIndex,
                     kExtractDetail);
    }
    if (insert_label_ != kNoLabel) {
      emit_trap_stub(insert_label_, interp::TrapKind::BadLaneIndex,
                     kInsertDetail);
    }
    for (const OobStub& stub : oob_stubs_) {
      e_.bind(stub.label);
      e_.mov_rr(Reg::RSI, Reg::RDI);  // failing guest address
      e_.mov_rr(Reg::RDI, Reg::RBX);
      e_.mov_ri32(Reg::RDX, stub.bytes);
      e_.mov_ri32(Reg::RCX, stub.is_store ? 1 : 0);
      e_.mov_ri64(Reg::RAX, fn_addr(&vulfi_jit_trap_oob));
      e_.call_reg(Reg::RAX);
      e_.jmp(ret_label_);
    }

    // Epilogue: pop the callee frame off the arena, restore and return.
    e_.bind(ret_label_);
    e_.mov_rr(Reg::RDI, Reg::RBX);
    e_.mov_rm(Reg::RSI, Reg::RBP, 0);
    e_.mov_ri64(Reg::RAX, fn_addr(&vulfi_jit_restore_watermark));
    e_.call_reg(Reg::RAX);
    e_.add_ri(Reg::RSP, static_cast<std::int32_t>(out_.frame_bytes));
    e_.pop(Reg::R13);
    e_.pop(Reg::R12);
    e_.pop(Reg::RBX);
    e_.pop(Reg::RBP);
    e_.ret();
  }

  static constexpr Label kNoLabel = ~Label{0};

  struct OobStub {
    Label label;
    unsigned bytes;
    bool is_store;
  };

  const ir::Function& fn_;
  const interp::RuntimeEnv& env_;
  CompiledFunction& out_;
  CompiledFunction* (*resolve_callee_)(void*, const ir::Function*);
  void* resolve_ctx_;

  Encoder e_;
  std::unordered_map<const ir::Value*, std::uint32_t> slot_of_;
  std::unordered_map<const ir::Value*, std::size_t> const_off_;
  std::unordered_map<const ir::BasicBlock*, Label> block_labels_;
  std::uint32_t next_word_ = 1;
  std::size_t pool_words_ = 0;
  std::uint32_t scratch_word_ = 0;
  Label ret_label_ = kNoLabel;
  Label budget_label_ = kNoLabel;
  Label unreachable_label_ = kNoLabel;
  Label extract_label_ = kNoLabel;
  Label insert_label_ = kNoLabel;
  std::vector<OobStub> oob_stubs_;
};

}  // namespace

bool function_is_compilable(const ir::Function& fn,
                            const interp::RuntimeEnv& env) {
  if (!fn.is_definition() || fn.num_blocks() == 0) return false;
  if (!type_fits(fn.return_type())) return false;
  for (const auto& arg : fn.args()) {
    if (!type_fits(arg->type())) return false;
  }
  for (const auto& block : fn) {
    bool in_phi_prefix = true;
    for (const auto& inst : *block) {
      if (inst->opcode() == Opcode::Phi) {
        // The edge lowering only transfers the leading phi run (like the
        // decode cache); a non-leading phi would be silently dead.
        if (!in_phi_prefix) return false;
      } else {
        in_phi_prefix = false;
      }
      if (!type_fits(inst->type())) return false;
      for (const ir::Value* op : inst->operands()) {
        if (!type_fits(op->type())) return false;
      }
      if (inst->opcode() != Opcode::Call) continue;
      const ir::Function* callee = inst->callee();
      switch (callee->kind()) {
        case ir::FunctionKind::Intrinsic:
          if (callee->intrinsic_info().id == ir::IntrinsicId::None) {
            return false;
          }
          break;
        case ir::FunctionKind::Runtime:
          if (env.find_handler(callee->name()) == nullptr) return false;
          break;
        case ir::FunctionKind::Definition: {
          unsigned words = 0;
          for (const ir::Value* op : inst->operands()) {
            words += op->type().lanes();
          }
          if (words > kMaxCallArgWords) return false;
          break;
        }
      }
    }
  }
  return true;
}

void compile_function(const ir::Function& fn, const interp::RuntimeEnv& env,
                      CompiledFunction& out,
                      CompiledFunction* (*resolve_callee)(void*,
                                                          const ir::Function*),
                      void* resolve_ctx) {
  out.fn = &fn;
  FunctionCompiler compiler(fn, env, out, resolve_callee, resolve_ctx);
  compiler.run();
}

}  // namespace vulfi::jit
