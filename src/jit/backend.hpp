// Public entry point of the JIT backend.
//
// JitExecutor presents the same run() contract as interp::Interpreter —
// identical ExecResult (trap kind + detail string, return value, dynamic
// instruction/vector/call counts) for identical inputs — but executes
// compiled x86-64 templates instead of the dispatch loop. Fault injection
// and detection keep working unchanged: the injected program's runtime
// calls go through the same RuntimeEnv handlers, reached from compiled
// code via descriptor callouts.
//
// Per-function fallback: functions the template JIT declines to compile
// (wider than 8 lanes, unregistered runtime callees, non-leading phis) and
// hosts without executable memory run on the pre-decoded interpreter
// instead — the decision is per entry call graph, cached, and invisible
// in the observables.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/arena.hpp"
#include "interp/interpreter.hpp"
#include "interp/runtime.hpp"
#include "interp/trap.hpp"
#include "ir/function.hpp"

namespace vulfi::jit {

struct CompiledFunction;
class ExecMemory;

class JitExecutor {
 public:
  /// `fallback` handles everything the JIT declines; limits are pushed
  /// into it before each fallback run so both paths see the same budget.
  JitExecutor(interp::Arena& arena, interp::RuntimeEnv& env,
              interp::Interpreter& fallback, interp::ExecLimits limits = {});
  ~JitExecutor();

  JitExecutor(const JitExecutor&) = delete;
  JitExecutor& operator=(const JitExecutor&) = delete;

  /// True when this process can map executable memory at all.
  static bool available();

  void set_limits(interp::ExecLimits limits) { limits_ = limits; }

  interp::ExecResult run(const ir::Function& fn,
                         const std::vector<interp::RtVal>& args);

  /// Compiles `fn` (and its callee graph) on demand and reports whether
  /// runs will execute natively (false = interpreter fallback).
  bool function_compiled(const ir::Function& fn);

  std::uint64_t native_runs() const { return native_runs_; }
  std::uint64_t fallback_runs() const { return fallback_runs_; }

  // --- used by the extern "C" helper callouts (not part of the API) -------
  void record_trap(interp::TrapKind kind, std::string detail);
  /// Reusable argument buffer for runtime-handler dispatch. Safe to share
  /// across call sites because handlers never re-enter IR execution.
  std::vector<interp::RtVal>& call_scratch() { return call_scratch_; }

 private:
  /// Returns the compiled entry for `fn`, compiling its whole Definition
  /// call graph in one published batch on first request; nullptr when any
  /// reachable function is uncompilable (cached either way).
  CompiledFunction* ensure_compiled(const ir::Function& fn);
  static CompiledFunction* resolve_callee(void* self, const ir::Function* fn);

  interp::Arena& arena_;
  interp::RuntimeEnv& env_;
  interp::Interpreter& fallback_;
  interp::ExecLimits limits_;

  /// Compile-decision cache; nullptr marks a known-uncompilable entry.
  std::unordered_map<const ir::Function*, CompiledFunction*> compiled_;
  /// Shells being compiled in the current batch (callee resolution).
  std::unordered_map<const ir::Function*, CompiledFunction*> pending_;
  /// Owns every CompiledFunction; addresses are baked into code and
  /// descriptors, so elements are never moved or dropped once published.
  std::vector<std::unique_ptr<CompiledFunction>> owned_;
  std::vector<std::unique_ptr<ExecMemory>> batches_;

  std::vector<interp::RtVal> call_scratch_;
  interp::Trap trap_;
  std::uint64_t native_runs_ = 0;
  std::uint64_t fallback_runs_ = 0;
};

}  // namespace vulfi::jit
