// JIT executor: batch compilation, the native run loop, and the extern "C"
// helper callouts compiled code reaches at every fault site and slow
// operation. Each helper reproduces the corresponding interpreter
// evaluation bit-for-bit — the shared scalar semantics live in
// interp/scalar_ops.hpp, and the trap detail strings match verbatim so a
// census diff between backends is empty by construction.

#include <cmath>
#include <cstring>
#include <unordered_set>

#include "interp/scalar_ops.hpp"
#include "jit/backend.hpp"
#include "jit/exec_memory.hpp"
#include "jit/internal.hpp"
#include "ir/intrinsics.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::jit {

namespace {

using interp::RtVal;
using interp::TrapKind;
using ir::Opcode;

/// Flattened-argument capacity of vulfi_jit_call (mirrored by the
/// compilability check in compiler.cpp).
constexpr unsigned kMaxCallArgWords = 128;

/// First writer wins, like Interpreter::trap: compiled code tests
/// ctx->trap_kind after every callout, so a later helper can only run
/// before any trap has been recorded — but the masked intrinsics probe
/// multiple lanes and must not overwrite the first fault.
void set_trap(JitContext* ctx, TrapKind kind, std::string detail) {
  if (ctx->trap_kind != 0) return;
  ctx->trap_kind = static_cast<std::uint64_t>(kind);
  ctx->exec->record_trap(kind, std::move(detail));
}

std::uint64_t lane_raw(const std::uint64_t* frame, const OperandLoc& op,
                       unsigned lane) {
  return op.is_const() ? op.pool[lane]
                       : frame[static_cast<std::uint32_t>(op.word) + lane];
}

/// Numeric value of an fp lane regardless of width (RtVal::lane_fp).
double lane_fp(const std::uint64_t* frame, const OperandLoc& op,
               unsigned lane) {
  const std::uint64_t bits = lane_raw(frame, op, lane);
  return op.type.kind() == ir::TypeKind::F32
             ? static_cast<double>(
                   std::bit_cast<float>(static_cast<std::uint32_t>(bits)))
             : std::bit_cast<double>(bits);
}

/// RtVal::set_lane_raw: integers are truncated to the element width.
void store_result(std::uint64_t* frame, const InstDesc& d, unsigned lane,
                  std::uint64_t bits) {
  if (d.type.is_integer()) {
    bits = ir::Constant::truncate_to_width(bits, d.type.element_bits());
  }
  frame[static_cast<std::uint32_t>(d.result_word) + lane] = bits;
}

std::uint64_t f32_bits(float value) {
  return std::bit_cast<std::uint32_t>(value);
}

/// Interpreter::read_element, over the ctx arena.
std::uint64_t read_element(JitContext* ctx, std::uint64_t addr,
                           unsigned bytes) {
  if (!ctx->arena->valid(addr, bytes)) {
    set_trap(ctx, TrapKind::OutOfBounds,
             strf("load of %u bytes at address %llu", bytes,
                  static_cast<unsigned long long>(addr)));
    return 0;
  }
  std::uint64_t bits = 0;
  std::memcpy(&bits, ctx->arena->data(addr), bytes);
  return bits;
}

void write_element(JitContext* ctx, std::uint64_t addr, unsigned bytes,
                   std::uint64_t bits) {
  if (!ctx->arena->valid(addr, bytes)) {
    set_trap(ctx, TrapKind::OutOfBounds,
             strf("store of %u bytes at address %llu", bytes,
                  static_cast<unsigned long long>(addr)));
    return;
  }
  std::memcpy(ctx->arena->data(addr), &bits, bytes);
}

void int_div_op(JitContext* ctx, std::uint64_t* frame, const InstDesc& d) {
  const Opcode op = d.inst->opcode();
  const unsigned width = d.type.element_bits();
  const OperandLoc& lhs = d.operands[0];
  const OperandLoc& rhs = d.operands[1];
  for (unsigned lane = 0; lane < d.type.lanes(); ++lane) {
    const std::uint64_t ua = lane_raw(frame, lhs, lane);
    const std::uint64_t ub = lane_raw(frame, rhs, lane);
    const std::int64_t sa = ir::Constant::sign_extend(ua, width);
    const std::int64_t sb = ir::Constant::sign_extend(ub, width);
    std::uint64_t bits = 0;
    switch (op) {
      case Opcode::SDiv:
        if (sb == 0) {
          set_trap(ctx, TrapKind::DivByZero, "sdiv by zero");
          return;
        }
        // INT_MIN / -1 wraps (deterministic stand-in for LLVM UB).
        bits = (sb == -1) ? static_cast<std::uint64_t>(-sa)
                          : static_cast<std::uint64_t>(sa / sb);
        break;
      case Opcode::UDiv:
        if (ub == 0) {
          set_trap(ctx, TrapKind::DivByZero, "udiv by zero");
          return;
        }
        bits = ua / ub;
        break;
      case Opcode::SRem:
        if (sb == 0) {
          set_trap(ctx, TrapKind::DivByZero, "srem by zero");
          return;
        }
        bits = (sb == -1) ? 0 : static_cast<std::uint64_t>(sa % sb);
        break;
      default:  // URem
        if (ub == 0) {
          set_trap(ctx, TrapKind::DivByZero, "urem by zero");
          return;
        }
        bits = ua % ub;
        break;
    }
    store_result(frame, d, lane, bits);
  }
}

void frem_op(std::uint64_t* frame, const InstDesc& d) {
  const bool single = d.type.kind() == ir::TypeKind::F32;
  const OperandLoc& lhs = d.operands[0];
  const OperandLoc& rhs = d.operands[1];
  for (unsigned lane = 0; lane < d.type.lanes(); ++lane) {
    const std::uint64_t a = lane_raw(frame, lhs, lane);
    const std::uint64_t b = lane_raw(frame, rhs, lane);
    std::uint64_t bits;
    if (single) {
      bits = f32_bits(
          std::fmod(std::bit_cast<float>(static_cast<std::uint32_t>(a)),
                    std::bit_cast<float>(static_cast<std::uint32_t>(b))));
    } else {
      bits = std::bit_cast<std::uint64_t>(
          std::fmod(std::bit_cast<double>(a), std::bit_cast<double>(b)));
    }
    store_result(frame, d, lane, bits);
  }
}

void fp_cast_op(std::uint64_t* frame, const InstDesc& d) {
  const Opcode op = d.inst->opcode();
  const unsigned width = d.type.element_bits();
  const OperandLoc& src = d.operands[0];
  for (unsigned lane = 0; lane < d.type.lanes(); ++lane) {
    std::uint64_t bits = 0;
    switch (op) {
      case Opcode::FPToSI:
        bits = interp::saturating_fp_to_int(lane_fp(frame, src, lane), width,
                                            /*is_signed=*/true);
        break;
      case Opcode::FPToUI:
        bits = interp::saturating_fp_to_int(lane_fp(frame, src, lane), width,
                                            /*is_signed=*/false);
        break;
      default: {  // UIToFP (raw words are already zero-extended elements)
        const double v =
            static_cast<double>(lane_raw(frame, src, lane));
        bits = d.type.kind() == ir::TypeKind::F32
                   ? f32_bits(static_cast<float>(v))
                   : std::bit_cast<std::uint64_t>(v);
        break;
      }
    }
    store_result(frame, d, lane, bits);
  }
}

/// Interpreter::eval_intrinsic / eval_math_intrinsic over frame words.
void intrinsic_op(JitContext* ctx, std::uint64_t* frame, const InstDesc& d,
                  const ir::Function& callee) {
  const ir::IntrinsicInfo& info = callee.intrinsic_info();
  const auto& ops = d.operands;
  if (ir::is_math_intrinsic(info.id)) {
    const ir::Type type = callee.return_type();
    const bool single = type.kind() == ir::TypeKind::F32;
    for (unsigned lane = 0; lane < type.lanes(); ++lane) {
      std::uint64_t bits;
      if (single) {
        const float a = std::bit_cast<float>(
            static_cast<std::uint32_t>(lane_raw(frame, ops[0], lane)));
        const float b =
            ops.size() > 1
                ? std::bit_cast<float>(static_cast<std::uint32_t>(
                      lane_raw(frame, ops[1], lane)))
                : 0.0f;
        float r = 0.0f;
        switch (info.id) {
          case ir::IntrinsicId::Sqrt: r = std::sqrt(a); break;
          case ir::IntrinsicId::Exp: r = std::exp(a); break;
          case ir::IntrinsicId::Log: r = std::log(a); break;
          case ir::IntrinsicId::Pow: r = std::pow(a, b); break;
          case ir::IntrinsicId::Fabs: r = std::fabs(a); break;
          case ir::IntrinsicId::Fmin: r = std::fmin(a, b); break;
          case ir::IntrinsicId::Fmax: r = std::fmax(a, b); break;
          case ir::IntrinsicId::Sin: r = std::sin(a); break;
          case ir::IntrinsicId::Cos: r = std::cos(a); break;
          case ir::IntrinsicId::Floor: r = std::floor(a); break;
          default: VULFI_UNREACHABLE("not a math intrinsic");
        }
        bits = f32_bits(r);
      } else {
        const double a = std::bit_cast<double>(lane_raw(frame, ops[0], lane));
        const double b =
            ops.size() > 1
                ? std::bit_cast<double>(lane_raw(frame, ops[1], lane))
                : 0.0;
        double r = 0.0;
        switch (info.id) {
          case ir::IntrinsicId::Sqrt: r = std::sqrt(a); break;
          case ir::IntrinsicId::Exp: r = std::exp(a); break;
          case ir::IntrinsicId::Log: r = std::log(a); break;
          case ir::IntrinsicId::Pow: r = std::pow(a, b); break;
          case ir::IntrinsicId::Fabs: r = std::fabs(a); break;
          case ir::IntrinsicId::Fmin: r = std::fmin(a, b); break;
          case ir::IntrinsicId::Fmax: r = std::fmax(a, b); break;
          case ir::IntrinsicId::Sin: r = std::sin(a); break;
          case ir::IntrinsicId::Cos: r = std::cos(a); break;
          case ir::IntrinsicId::Floor: r = std::floor(a); break;
          default: VULFI_UNREACHABLE("not a math intrinsic");
        }
        bits = std::bit_cast<std::uint64_t>(r);
      }
      store_result(frame, d, lane, bits);
    }
    return;
  }
  if (info.id == ir::IntrinsicId::MaskLoad) {
    // (ptr, mask) -> data. Faults are suppressed on inactive lanes and
    // masked-off lanes read as zero (x86 vmaskmov semantics).
    const ir::Type data_type = callee.return_type();
    const unsigned elem_bytes = data_type.element_bytes();
    const unsigned elem_bits = data_type.element_bits();
    const std::uint64_t base = lane_raw(frame, ops[0], 0);
    for (unsigned lane = 0; lane < data_type.lanes(); ++lane) {
      store_result(frame, d, lane, 0);
    }
    for (unsigned lane = 0;
         lane < data_type.lanes() && ctx->trap_kind == 0; ++lane) {
      if (!ir::mask_lane_active(lane_raw(frame, ops[1], lane), elem_bits)) {
        continue;
      }
      store_result(frame, d, lane,
                   read_element(ctx, base + std::uint64_t{lane} * elem_bytes,
                                elem_bytes));
    }
    return;
  }
  if (info.id == ir::IntrinsicId::MoveMask) {
    const OperandLoc& data = ops[0];
    const unsigned elem_bits = data.type.element_bits();
    std::uint64_t bits = 0;
    for (unsigned lane = 0; lane < data.type.lanes(); ++lane) {
      if (ir::mask_lane_active(lane_raw(frame, data, lane), elem_bits)) {
        bits |= std::uint64_t{1} << lane;
      }
    }
    store_result(frame, d, 0, bits);
    return;
  }
  if (info.id == ir::IntrinsicId::MaskStore) {
    // (ptr, mask, data) -> void.
    const OperandLoc& data = ops[2];
    const unsigned elem_bytes = data.type.element_bytes();
    const unsigned elem_bits = data.type.element_bits();
    const std::uint64_t base = lane_raw(frame, ops[0], 0);
    for (unsigned lane = 0;
         lane < data.type.lanes() && ctx->trap_kind == 0; ++lane) {
      if (!ir::mask_lane_active(lane_raw(frame, ops[1], lane), elem_bits)) {
        continue;
      }
      write_element(ctx, base + std::uint64_t{lane} * elem_bytes, elem_bytes,
                    lane_raw(frame, data, lane));
    }
    return;
  }
  VULFI_UNREACHABLE("unknown intrinsic");
}

}  // namespace

// --- extern "C" callouts ---------------------------------------------------

extern "C" void vulfi_jit_slow_op(JitContext* ctx, std::uint64_t* frame,
                                  const InstDesc* desc) {
  switch (desc->inst->opcode()) {
    case Opcode::SDiv: case Opcode::UDiv:
    case Opcode::SRem: case Opcode::URem:
      int_div_op(ctx, frame, *desc);
      break;
    case Opcode::FRem:
      frem_op(frame, *desc);
      break;
    case Opcode::FPToSI: case Opcode::FPToUI: case Opcode::UIToFP:
      fp_cast_op(frame, *desc);
      break;
    default:
      VULFI_UNREACHABLE("opcode has no slow-op helper");
  }
}

extern "C" void vulfi_jit_call(JitContext* ctx, std::uint64_t* frame,
                               const InstDesc* desc) {
  ctx->calls += 1;  // Interpreter::eval_call counts before dispatch
  const ir::Function* callee = desc->inst->callee();
  switch (callee->kind()) {
    case ir::FunctionKind::Definition: {
      // The callee runs at depth + 1; run_function traps on entry when
      // that reaches the limit.
      if (ctx->depth + 1 >= ctx->max_call_depth) {
        set_trap(ctx, TrapKind::CallDepthExceeded,
                 "call depth limit exceeded");
        return;
      }
      std::uint64_t argv[kMaxCallArgWords];
      unsigned w = 0;
      for (const OperandLoc& op : desc->operands) {
        for (unsigned lane = 0; lane < op.type.lanes(); ++lane) {
          argv[w++] = lane_raw(frame, op, lane);
        }
      }
      std::uint64_t retv[interp::LaneArray::kMaxLanes] = {};
      ctx->depth += 1;
      desc->callee->entry(ctx, argv, retv);
      ctx->depth -= 1;
      if (ctx->trap_kind == 0 && desc->result_word >= 0) {
        for (unsigned lane = 0; lane < desc->type.lanes(); ++lane) {
          frame[static_cast<std::uint32_t>(desc->result_word) + lane] =
              retv[lane];
        }
      }
      return;
    }
    case ir::FunctionKind::Intrinsic:
      intrinsic_op(ctx, frame, *desc, *callee);
      return;
    case ir::FunctionKind::Runtime: {
      // Handlers (fault injectors, detectors) receive real RtVals — the
      // same values the interpreter would pass — built from frame words.
      auto& scratch = ctx->exec->call_scratch();
      scratch.clear();
      for (const OperandLoc& op : desc->operands) {
        RtVal v(op.type);
        for (unsigned lane = 0; lane < op.type.lanes(); ++lane) {
          v.raw[lane] = lane_raw(frame, op, lane);
        }
        scratch.push_back(std::move(v));
      }
      const RtVal result = (*desc->handler)(scratch);
      if (ctx->trap_kind == 0 && desc->result_word >= 0) {
        VULFI_ASSERT(result.type == desc->type, "callee returned wrong type");
        for (unsigned lane = 0; lane < desc->type.lanes(); ++lane) {
          frame[static_cast<std::uint32_t>(desc->result_word) + lane] =
              result.raw[lane];
        }
      }
      return;
    }
  }
  VULFI_UNREACHABLE("unknown function kind");
}

extern "C" void vulfi_jit_alloca(JitContext* ctx, std::uint64_t* frame,
                                 const InstDesc* desc) {
  const std::uint64_t bytes = desc->inst->alloca_bytes();
  interp::Arena& arena = *ctx->arena;
  if (arena.allocated() + bytes + 64 > arena.capacity()) {
    set_trap(ctx, TrapKind::StackOverflow, "alloca exhausted the arena");
    return;
  }
  const std::uint64_t addr = arena.alloc_stack(bytes);
  ctx->arena_top = arena.frame_watermark();
  frame[static_cast<std::uint32_t>(desc->result_word)] = addr;
}

extern "C" void vulfi_jit_restore_watermark(JitContext* ctx,
                                            std::uint64_t watermark) {
  ctx->arena->restore_watermark(watermark);
  ctx->arena_top = watermark;
}

extern "C" void vulfi_jit_trap(JitContext* ctx, std::uint64_t kind,
                               const char* detail) {
  set_trap(ctx, static_cast<TrapKind>(kind), detail);
}

extern "C" void vulfi_jit_trap_oob(JitContext* ctx, std::uint64_t addr,
                                   std::uint64_t bytes,
                                   std::uint64_t is_store) {
  set_trap(ctx, TrapKind::OutOfBounds,
           strf("%s of %u bytes at address %llu",
                is_store != 0 ? "store" : "load",
                static_cast<unsigned>(bytes),
                static_cast<unsigned long long>(addr)));
}

// --- JitExecutor -----------------------------------------------------------

JitExecutor::JitExecutor(interp::Arena& arena, interp::RuntimeEnv& env,
                         interp::Interpreter& fallback,
                         interp::ExecLimits limits)
    : arena_(arena), env_(env), fallback_(fallback), limits_(limits) {}

JitExecutor::~JitExecutor() = default;

bool JitExecutor::available() { return ExecMemory::available(); }

void JitExecutor::record_trap(interp::TrapKind kind, std::string detail) {
  trap_ = interp::Trap{kind, std::move(detail)};
}

CompiledFunction* JitExecutor::resolve_callee(void* self_ptr,
                                              const ir::Function* fn) {
  auto* self = static_cast<JitExecutor*>(self_ptr);
  if (auto it = self->pending_.find(fn); it != self->pending_.end()) {
    return it->second;
  }
  auto it = self->compiled_.find(fn);
  return it != self->compiled_.end() ? it->second : nullptr;
}

CompiledFunction* JitExecutor::ensure_compiled(const ir::Function& fn) {
  if (auto it = compiled_.find(&fn); it != compiled_.end()) {
    return it->second;
  }
  if (!ExecMemory::available()) {
    compiled_[&fn] = nullptr;
    return nullptr;
  }

  // The whole Definition call graph compiles (and publishes) together or
  // not at all — mixing native and interpreted frames inside one run
  // would need an RtVal bridge for no benefit.
  std::vector<const ir::Function*> order;
  std::unordered_set<const ir::Function*> visited;
  std::vector<const ir::Function*> stack{&fn};
  bool ok = true;
  while (ok && !stack.empty()) {
    const ir::Function* f = stack.back();
    stack.pop_back();
    if (visited.contains(f)) continue;
    visited.insert(f);
    if (auto it = compiled_.find(f); it != compiled_.end()) {
      // Published earlier — its callees are published too.
      if (it->second == nullptr) ok = false;
      continue;
    }
    if (!function_is_compilable(*f, env_)) {
      ok = false;
      break;
    }
    order.push_back(f);
    for (const auto& block : *f) {
      for (const auto& inst : *block) {
        if (inst->opcode() != ir::Opcode::Call) continue;
        const ir::Function* callee = inst->callee();
        if (callee->kind() == ir::FunctionKind::Definition) {
          stack.push_back(callee);
        }
      }
    }
  }
  if (!ok) {
    compiled_[&fn] = nullptr;
    return nullptr;
  }

  // Shells first: call descriptors bake CompiledFunction* addresses, so
  // every object must exist (and never move) before any body is lowered.
  const std::size_t first_owned = owned_.size();
  pending_.clear();
  for (const ir::Function* f : order) {
    owned_.push_back(std::make_unique<CompiledFunction>());
    pending_[f] = owned_.back().get();
  }
  for (const ir::Function* f : order) {
    compile_function(*f, env_, *pending_[f], &JitExecutor::resolve_callee,
                     this);
  }

  // Concatenate at 16-byte alignment and flip the batch W^X in one go.
  std::vector<std::uint8_t> blob;
  std::vector<std::size_t> offsets;
  offsets.reserve(order.size());
  for (const ir::Function* f : order) {
    while (blob.size() % 16 != 0) blob.push_back(0xCC);
    offsets.push_back(blob.size());
    const auto& code = pending_[f]->code;
    blob.insert(blob.end(), code.begin(), code.end());
  }
  auto memory = std::make_unique<ExecMemory>();
  const std::uint8_t* base = memory->publish(blob);
  if (base == nullptr) {
    owned_.resize(first_owned);
    pending_.clear();
    compiled_[&fn] = nullptr;
    return nullptr;
  }
  batches_.push_back(std::move(memory));
  for (std::size_t i = 0; i < order.size(); ++i) {
    CompiledFunction* cf = pending_[order[i]];
    cf->entry = reinterpret_cast<JitFn>(
        const_cast<std::uint8_t*>(base + offsets[i]));
    cf->code.clear();
    cf->code.shrink_to_fit();
    compiled_[order[i]] = cf;
  }
  pending_.clear();
  return compiled_.at(&fn);
}

bool JitExecutor::function_compiled(const ir::Function& fn) {
  return ensure_compiled(fn) != nullptr;
}

interp::ExecResult JitExecutor::run(const ir::Function& fn,
                                    const std::vector<interp::RtVal>& args) {
  CompiledFunction* cf = ensure_compiled(fn);
  if (cf == nullptr) {
    fallback_.set_limits(limits_);
    fallback_runs_ += 1;
    return fallback_.run(fn, args);
  }

  interp::ExecResult result;
  if (limits_.max_call_depth == 0) {
    // run_function traps before executing a single instruction.
    result.trap =
        interp::Trap{TrapKind::CallDepthExceeded, "call depth limit exceeded"};
    return result;
  }

  VULFI_ASSERT(args.size() == fn.num_args(), "argument count mismatch");
  std::uint64_t argv[kMaxCallArgWords];
  unsigned w = 0;
  for (unsigned i = 0; i < args.size(); ++i) {
    VULFI_ASSERT(args[i].type == fn.arg(i)->type(), "argument type mismatch");
    VULFI_ASSERT(w + args[i].lanes() <= kMaxCallArgWords,
                 "too many entry argument lanes");
    for (unsigned lane = 0; lane < args[i].lanes(); ++lane) {
      argv[w++] = args[i].raw[lane];
    }
  }

  trap_ = interp::Trap{};
  JitContext ctx;
  ctx.max_instructions = limits_.max_instructions;
  ctx.arena_base = reinterpret_cast<std::uint64_t>(arena_.data(0));
  ctx.arena_top = arena_.frame_watermark();
  ctx.max_call_depth = limits_.max_call_depth;
  ctx.arena = &arena_;
  ctx.exec = this;

  std::uint64_t retv[interp::LaneArray::kMaxLanes] = {};
  cf->entry(&ctx, argv, retv);
  native_runs_ += 1;

  result.trap = trap_;
  result.stats.total_instructions = ctx.total_instructions;
  result.stats.vector_instructions = ctx.vector_instructions;
  result.stats.calls = ctx.calls;
  if (!trap_ && !fn.return_type().is_void()) {
    RtVal ret(fn.return_type());
    for (unsigned lane = 0; lane < ret.lanes(); ++lane) {
      ret.raw[lane] = retv[lane];
    }
    result.return_value = ret;
  }
  return result;
}

}  // namespace vulfi::jit
