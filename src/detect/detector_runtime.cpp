#include "detect/detector_runtime.hpp"

#include "detect/foreach_detector.hpp"
#include "detect/uniform_detector.hpp"
#include "support/error.hpp"

namespace vulfi::detect {

bool foreach_invariants_hold(std::int64_t new_counter,
                             std::int64_t aligned_end, std::int64_t vl) {
  if (vl <= 0) return false;
  if (new_counter < 0) return false;                // Invariant 1
  if (new_counter > aligned_end) return false;      // Invariant 2
  if (new_counter % vl != 0) return false;          // Invariant 3
  return true;
}

void attach_detector_runtime(interp::RuntimeEnv& env,
                             interp::DetectionLog& log) {
  env.register_handler(
      kForeachDetectorFn,
      [&log](const std::vector<interp::RtVal>& args) {
        VULFI_ASSERT(args.size() == 3, "foreach detector takes 3 args");
        if (!foreach_invariants_hold(args[0].lane_int(0),
                                     args[1].lane_int(0),
                                     args[2].lane_int(0))) {
          log.events += 1;
        }
        return interp::RtVal{};
      });

  auto lanes_equal = [&log](const std::vector<interp::RtVal>& args) {
    VULFI_ASSERT(args.size() == 1, "lanes-equal detector takes 1 arg");
    const interp::RtVal& vec = args[0];
    // XOR every lane's raw bit pattern against lane 0: any set bit in the
    // accumulated difference means the lanes diverged.
    std::uint64_t diff = 0;
    for (unsigned lane = 1; lane < vec.lanes(); ++lane) {
      diff |= vec.raw[lane] ^ vec.raw[0];
    }
    if (diff != 0) log.events += 1;
    return interp::RtVal{};
  };

  const ir::TypeKind kinds[] = {ir::TypeKind::F32, ir::TypeKind::F64,
                                ir::TypeKind::I32, ir::TypeKind::I64};
  const unsigned widths[] = {2, 4, 8, 16};
  for (ir::TypeKind kind : kinds) {
    for (unsigned width : widths) {
      env.register_handler(
          lanes_equal_fn_name(ir::Type::vector(kind, width)), lanes_equal);
    }
  }
}

}  // namespace vulfi::detect
