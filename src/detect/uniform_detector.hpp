// Uniform-broadcast error detectors (paper §III-B, Figure 9).
//
// ISPC shares a `uniform` value across all vector lanes by storing it in a
// scalar register and broadcasting it with the
// insertelement-into-undef + shufflevector-zeroinitializer idiom. The
// invariant "all scalar elements of the broadcast register hold the same
// value" can be checked inexpensively (the paper suggests XORing); this
// pass — listed as future work in the paper and implemented here —
// pattern-matches the broadcast idiom and inserts a lanes-equal check
// before reads of the broadcast register.
#pragma once

#include <string>
#include <vector>

#include "ir/function.hpp"
#include "ir/module.hpp"

namespace vulfi::detect {

/// Runtime checker declaration for a given broadcast vector type, e.g.
///   void vulfi.detect.lanes_equal.v8f32(<8 x float>)
std::string lanes_equal_fn_name(ir::Type vector_type);
ir::Function* declare_lanes_equal(ir::Module& module, ir::Type vector_type);

enum class UniformCheckPlacement {
  /// Check once, immediately after the broadcast.
  AfterBroadcast,
  /// Paper's stated goal: check before every read of the broadcast
  /// register (phi reads are skipped — no single insertion point).
  BeforeEveryUse,
};

/// A recognized broadcast: shufflevector(zeromask) of
/// insertelement(undef, scalar, 0).
struct BroadcastMatch {
  ir::Instruction* shuffle = nullptr;   // the broadcast result
  ir::Instruction* insert = nullptr;    // the %..._init insertelement
  ir::Value* scalar = nullptr;          // the uniform scalar source
};

std::vector<BroadcastMatch> find_broadcasts(ir::Function& fn);

/// Inserts lanes-equal checks; returns the number of check calls inserted.
unsigned insert_uniform_detectors(
    ir::Function& fn,
    UniformCheckPlacement placement = UniformCheckPlacement::BeforeEveryUse);
unsigned insert_uniform_detectors(
    ir::Module& module,
    UniformCheckPlacement placement = UniformCheckPlacement::BeforeEveryUse);

}  // namespace vulfi::detect
