#include "detect/foreach_detector.hpp"

#include <string_view>

#include "ir/builder.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::detect {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;

ir::Function* declare_foreach_detector(ir::Module& module) {
  return module.declare_runtime(
      kForeachDetectorFn, Type::void_ty(),
      {Type::i32(), Type::i32(), Type::i32()});
}

namespace {

bool is_full_body_header(const BasicBlock& block) {
  const std::string_view name = block.name();
  return name.starts_with("foreach_full_body") &&
         name.find(".lr.ph") == std::string_view::npos;
}

/// Structural signature of the aligned trip bound: aligned_end is
/// `sub(n, srem(n, Vl))` for the same n and the loop's Vl. This is the
/// code-generation invariant itself — it holds regardless of how the
/// code generator happened to name its blocks, so the matcher does not
/// depend on the name hint alone.
bool is_aligned_end_of(const Value* aligned_end, unsigned vl) {
  const auto* sub = dynamic_cast<const Instruction*>(aligned_end);
  if (!sub || sub->opcode() != Opcode::Sub) return false;
  const auto* srem = dynamic_cast<const Instruction*>(sub->operand(1));
  if (!srem || srem->opcode() != Opcode::SRem) return false;
  if (srem->operand(0) != sub->operand(0)) return false;
  const auto* step = dynamic_cast<const ir::Constant*>(srem->operand(1));
  return step && step->type() == Type::i32() &&
         step->int_value() == static_cast<std::int64_t>(vl);
}

/// Matches `add i32 %phi, <const Vl>` among the users of the phi.
Instruction* find_counter_increment(Instruction* phi, unsigned* vl_out) {
  for (Instruction* user : phi->users()) {
    if (user->opcode() != Opcode::Add) continue;
    if (user->operand(0) != phi) continue;
    const auto* step = dynamic_cast<const ir::Constant*>(user->operand(1));
    if (!step || step->type() != Type::i32()) continue;
    const std::int64_t vl = step->int_value();
    // Vector lengths are small powers of two (4 for SSE, 8 for AVX).
    if (vl < 2 || vl > 64 || (vl & (vl - 1)) != 0) continue;
    *vl_out = static_cast<unsigned>(vl);
    return user;
  }
  return nullptr;
}

/// Finds the latch: an icmp slt (new_counter, aligned_end) feeding a
/// conditional branch whose true successor is the loop header.
bool find_latch(Instruction* new_counter, BasicBlock* header,
                ForeachLoopMatch* match) {
  for (Instruction* cmp : new_counter->users()) {
    if (cmp->opcode() != Opcode::ICmp) continue;
    if (cmp->icmp_pred() != ir::ICmpPred::SLT) continue;
    if (cmp->operand(0) != new_counter) continue;
    for (Instruction* br : cmp->users()) {
      if (br->opcode() != Opcode::CondBr) continue;
      if (br->successor(0) != header) continue;
      match->latch_block = br->parent();
      match->aligned_end = cmp->operand(1);
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<ForeachLoopMatch> find_foreach_loops(ir::Function& fn) {
  std::vector<ForeachLoopMatch> matches;
  if (!fn.is_definition()) return matches;
  for (auto& block : fn) {
    ForeachLoopMatch match;
    match.header = block.get();
    // The counter is the i32 phi whose increment-by-Vl feeds the latch
    // compare against aligned_end. Recognition accepts either evidence:
    // the structural aligned_end signature (sub/srem against the same n,
    // the invariant itself), or the code generator's block-name hint —
    // exactly the two facts the paper extracted from ISPC's codegen.
    for (auto& inst : *block) {
      if (inst->opcode() != Opcode::Phi) break;
      if (inst->type() != Type::i32()) continue;
      unsigned vl = 0;
      Instruction* increment = find_counter_increment(inst.get(), &vl);
      if (!increment) continue;
      if (!find_latch(increment, block.get(), &match)) continue;
      if (!is_aligned_end_of(match.aligned_end, vl) &&
          !is_full_body_header(*block)) {
        continue;
      }
      match.counter_phi = inst.get();
      match.new_counter = increment;
      match.vl = vl;
      break;
    }
    if (match.counter_phi != nullptr) {
      matches.push_back(match);
    }
  }
  return matches;
}

namespace {

void insert_exit_check(ir::Function& fn, const ForeachLoopMatch& match,
                       unsigned ordinal) {
  ir::Module& module = *fn.parent();
  ir::Function* detector = declare_foreach_detector(module);
  Instruction* latch_br = match.latch_block->terminator();
  BasicBlock* exit_target = latch_br->successor(1);

  const std::string name =
      ordinal == 0 ? "foreach_fullbody_check_invariants"
                   : strf("foreach_fullbody_check_invariants%u", ordinal);
  BasicBlock* check =
      fn.create_block_after(name, match.latch_block);

  ir::IRBuilder b(module);
  b.set_insert_block(check);
  b.call(detector, {match.new_counter, match.aligned_end,
                    module.const_int(Type::i32(), match.vl)});
  b.br(exit_target);

  latch_br->set_successor(1, check);

  // Phis in the old exit target must now name the detector block as the
  // incoming edge.
  for (auto& inst : *exit_target) {
    if (inst->opcode() != Opcode::Phi) break;
    inst->phi_replace_incoming_block(match.latch_block, check);
  }
}

void insert_iteration_check(ir::Function& fn, const ForeachLoopMatch& match) {
  ir::Module& module = *fn.parent();
  ir::Function* detector = declare_foreach_detector(module);
  // Check immediately after new_counter is computed, every iteration.
  ir::IRBuilder b(module);
  b.set_insert_after(match.new_counter);
  b.call(detector, {match.new_counter, match.aligned_end,
                    module.const_int(Type::i32(), match.vl)});
}

}  // namespace

unsigned insert_foreach_detectors(ir::Function& fn,
                                  CheckPlacement placement) {
  const std::vector<ForeachLoopMatch> matches = find_foreach_loops(fn);
  unsigned ordinal = 0;
  for (const ForeachLoopMatch& match : matches) {
    if (placement == CheckPlacement::EveryIteration) {
      insert_iteration_check(fn, match);
    }
    insert_exit_check(fn, match, ordinal);
    ordinal += 1;
  }
  return ordinal;
}

unsigned insert_foreach_detectors(ir::Module& module,
                                  CheckPlacement placement) {
  // Snapshot the definition list first: inserting a detector declares the
  // runtime function, which grows module.functions() under iteration.
  std::vector<ir::Function*> definitions;
  for (const auto& fn : module.functions()) {
    if (fn->is_definition()) definitions.push_back(fn.get());
  }
  unsigned total = 0;
  for (ir::Function* fn : definitions) {
    total += insert_foreach_detectors(*fn, placement);
  }
  return total;
}

}  // namespace vulfi::detect
