// Detector runtime: host implementations of the checker calls the detector
// passes insert. Violations are recorded in a DetectionLog — execution
// continues, the experiment driver reads the flag after the run (the
// paper reports "SDCs ... that get flagged by our detectors").
#pragma once

#include "interp/runtime.hpp"

namespace vulfi::detect {

/// Registers handlers for:
///  * vulfi.detect.foreach(new_counter, aligned_end, vl) — checks the
///    three Figure-8 invariants;
///  * vulfi.detect.lanes_equal.<vNty>(vec) — XOR-compares all lane bit
///    patterns (Figure 9 check) for every 32/64-bit 2/4/8-lane shape.
/// `log` must outlive `env`.
void attach_detector_runtime(interp::RuntimeEnv& env,
                             interp::DetectionLog& log);

/// The invariant predicate itself, exposed for unit tests:
/// true iff all three foreach invariants hold.
bool foreach_invariants_hold(std::int64_t new_counter,
                             std::int64_t aligned_end, std::int64_t vl);

}  // namespace vulfi::detect
