#include "detect/uniform_detector.hpp"

#include <algorithm>

#include "ir/builder.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::detect {

using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;

std::string lanes_equal_fn_name(Type vector_type) {
  VULFI_ASSERT(vector_type.is_vector(), "lanes-equal check takes a vector");
  const char* elem = nullptr;
  switch (vector_type.kind()) {
    case ir::TypeKind::F32: elem = "f32"; break;
    case ir::TypeKind::F64: elem = "f64"; break;
    case ir::TypeKind::I32: elem = "i32"; break;
    case ir::TypeKind::I64: elem = "i64"; break;
    default:
      VULFI_UNREACHABLE("uniform broadcasts carry 32/64-bit lanes");
  }
  return strf("vulfi.detect.lanes_equal.v%u%s", vector_type.lanes(), elem);
}

ir::Function* declare_lanes_equal(ir::Module& module, Type vector_type) {
  return module.declare_runtime(lanes_equal_fn_name(vector_type),
                                Type::void_ty(), {vector_type});
}

std::vector<BroadcastMatch> find_broadcasts(ir::Function& fn) {
  std::vector<BroadcastMatch> matches;
  if (!fn.is_definition()) return matches;
  for (auto& block : fn) {
    for (auto& inst : *block) {
      if (inst->opcode() != Opcode::ShuffleVector) continue;
      // Mask must be all-zero (replicate lane 0).
      const auto& mask = inst->shuffle_mask();
      if (!std::all_of(mask.begin(), mask.end(),
                       [](int m) { return m == 0; })) {
        continue;
      }
      auto* insert = dynamic_cast<Instruction*>(inst->operand(0));
      if (!insert || insert->opcode() != Opcode::InsertElement) continue;
      // insertelement <N x T> undef, T %scalar, i32 0
      const auto* base = dynamic_cast<const ir::Constant*>(insert->operand(0));
      if (!base || !base->is_undef()) continue;
      const auto* index =
          dynamic_cast<const ir::Constant*>(insert->operand(2));
      if (!index || index->int_value() != 0) continue;
      BroadcastMatch match;
      match.shuffle = inst.get();
      match.insert = insert;
      match.scalar = insert->operand(1);
      matches.push_back(match);
    }
  }
  return matches;
}

unsigned insert_uniform_detectors(ir::Function& fn,
                                  UniformCheckPlacement placement) {
  const std::vector<BroadcastMatch> matches = find_broadcasts(fn);
  ir::Module& module = *fn.parent();
  ir::IRBuilder b(module);
  unsigned inserted = 0;
  for (const BroadcastMatch& match : matches) {
    ir::Function* checker =
        declare_lanes_equal(module, match.shuffle->type());
    if (placement == UniformCheckPlacement::AfterBroadcast) {
      b.set_insert_after(match.shuffle);
      b.call(checker, {match.shuffle});
      inserted += 1;
      continue;
    }
    // Before every (non-phi) read of the broadcast register. Snapshot the
    // user list first: inserting calls adds users.
    const std::vector<Instruction*> users = match.shuffle->users();
    for (Instruction* user : users) {
      if (user->opcode() == Opcode::Phi) continue;
      b.set_insert_before(user);
      b.call(checker, {match.shuffle});
      inserted += 1;
    }
  }
  return inserted;
}

unsigned insert_uniform_detectors(ir::Module& module,
                                  UniformCheckPlacement placement) {
  // Snapshot first: declaring the checker grows module.functions() while
  // it would otherwise be under iteration.
  std::vector<ir::Function*> definitions;
  for (const auto& fn : module.functions()) {
    if (fn->is_definition()) definitions.push_back(fn.get());
  }
  unsigned total = 0;
  for (ir::Function* fn : definitions) {
    total += insert_uniform_detectors(*fn, placement);
  }
  return total;
}

}  // namespace vulfi::detect
