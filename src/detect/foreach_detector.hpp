// Foreach loop-invariant error detectors (paper §III-A, Figures 7 and 8).
//
// The ISPC code generator guarantees, for every foreach full-body loop:
//   Invariant 1: new_counter >= 0
//   Invariant 2: new_counter <= aligned_end
//   Invariant 3: new_counter % Vl == 0
// This pass turns those code-generation invariants into error-checking
// code: it pattern-matches the lowered foreach shape in the IR (it does
// NOT consume any metadata side channel — the recognition works off the
// same structural facts the paper extracted from ISPC's output) and
// inserts a `foreach_fullbody_check_invariants` block on the loop's exit
// edge containing a call to the runtime detector API with new_counter,
// aligned_end, and Vl as arguments. Checks run only upon loop exit, the
// paper's overhead-minimizing placement; per-iteration placement is
// available as an ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"
#include "ir/module.hpp"

namespace vulfi::detect {

/// Runtime detector function name and declaration:
///   void vulfi.detect.foreach(i32 new_counter, i32 aligned_end, i32 vl)
inline constexpr const char* kForeachDetectorFn = "vulfi.detect.foreach";
ir::Function* declare_foreach_detector(ir::Module& module);

enum class CheckPlacement {
  /// Paper default: one check on the loop-exit edge.
  LoopExit,
  /// Ablation: additionally check on every back edge (every vector
  /// iteration). Higher coverage window, higher overhead.
  EveryIteration,
};

/// One recognized foreach full-body loop.
struct ForeachLoopMatch {
  ir::BasicBlock* header = nullptr;        // foreach_full_body
  ir::BasicBlock* latch_block = nullptr;   // block with the back edge
  ir::Instruction* counter_phi = nullptr;  // %counter
  ir::Instruction* new_counter = nullptr;  // %new_counter = add counter, Vl
  ir::Value* aligned_end = nullptr;        // %aligned_end
  unsigned vl = 0;
};

/// Structural pattern matcher for lowered foreach loops. Exposed
/// separately so tests can validate recognition without insertion.
std::vector<ForeachLoopMatch> find_foreach_loops(ir::Function& fn);

/// Inserts detector blocks for every foreach loop in `fn`; returns the
/// number of detectors inserted.
unsigned insert_foreach_detectors(
    ir::Function& fn, CheckPlacement placement = CheckPlacement::LoopExit);

/// Convenience: all definitions in the module.
unsigned insert_foreach_detectors(
    ir::Module& module, CheckPlacement placement = CheckPlacement::LoopExit);

}  // namespace vulfi::detect
