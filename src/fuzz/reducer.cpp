#include "fuzz/reducer.hpp"

#include <algorithm>

namespace vulfi::fuzz {

bool KernelReducer::candidate_fails(const KernelSpec& candidate,
                                    ReduceStats* stats) const {
  if (stats != nullptr) stats->candidates += 1;
  // A candidate must still be a buildable kernel; the builder diagnostics
  // are the structural oracle, the predicate is the behavioural one.
  BuildResult built = build_runspec(candidate);
  if (!built.ok) return false;
  return still_fails_(candidate);
}

KernelSpec KernelReducer::reduce(KernelSpec spec, ReduceStats* stats) const {
  if (!candidate_fails(spec, stats)) return spec;

  bool changed = true;
  while (changed) {
    changed = false;
    if (stats != nullptr) stats->rounds += 1;

    // 1. Drop whole loops (a spec needs at least one).
    for (std::size_t li = 0; spec.loops.size() > 1 && li < spec.loops.size();) {
      KernelSpec candidate = spec;
      candidate.loops.erase(candidate.loops.begin() +
                            static_cast<std::ptrdiff_t>(li));
      if (candidate_fails(candidate, stats)) {
        spec = std::move(candidate);
        changed = true;
      } else {
        ++li;
      }
    }

    // 2. ddmin each loop's op list: try removing chunks, halving the
    // chunk size down to single ops.
    for (std::size_t li = 0; li < spec.loops.size(); ++li) {
      for (std::size_t chunk = std::max<std::size_t>(
               spec.loops[li].ops.size() / 2, 1);
           chunk >= 1; chunk /= 2) {
        for (std::size_t at = 0; at < spec.loops[li].ops.size();) {
          KernelSpec candidate = spec;
          auto& ops = candidate.loops[li].ops;
          const std::size_t take = std::min(chunk, ops.size() - at);
          if (take == 0 || take == ops.size()) {
            // Removing everything is handled by the empty-loop case below.
            ++at;
            continue;
          }
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(at),
                    ops.begin() + static_cast<std::ptrdiff_t>(at + take));
          if (candidate_fails(candidate, stats)) {
            spec = std::move(candidate);
            changed = true;
          } else {
            at += chunk;
          }
        }
        if (chunk == 1) break;
      }
      // An op-free loop body still stores its initial pool value; try
      // emptying outright.
      if (!spec.loops[li].ops.empty()) {
        KernelSpec candidate = spec;
        candidate.loops[li].ops.clear();
        if (candidate_fails(candidate, stats)) {
          spec = std::move(candidate);
          changed = true;
        }
      }
    }

    // 3. Knob shrinking: drop trip-count wrappers, demote reductions,
    // halve n toward the minimum.
    for (std::size_t li = 0; li < spec.loops.size(); ++li) {
      if (spec.loops[li].trip >= 0) {
        KernelSpec candidate = spec;
        candidate.loops[li].trip = -1;
        if (candidate_fails(candidate, stats)) {
          spec = std::move(candidate);
          changed = true;
        }
      }
      if (spec.loops[li].reduce) {
        KernelSpec candidate = spec;
        candidate.loops[li].reduce = false;
        if (candidate_fails(candidate, stats)) {
          spec = std::move(candidate);
          changed = true;
        }
      }
    }
    while (spec.n > kMinN) {
      KernelSpec candidate = spec;
      candidate.n = std::max(kMinN, spec.n / 2);
      if (!candidate_fails(candidate, stats)) break;
      spec = std::move(candidate);
      changed = true;
    }
  }
  return spec;
}

}  // namespace vulfi::fuzz
