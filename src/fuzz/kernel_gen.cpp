#include "fuzz/kernel_gen.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "ir/builder.hpp"
#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace vulfi::fuzz {

namespace {

using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

/// Foreach interior margin: iteration runs over [kMargin, n - kMargin) so
/// LoadOff offsets in [-kMargin, kMargin] stay in bounds.
constexpr std::int32_t kMargin = 4;
/// Uniform-pool slots appended to the params region after the per-loop
/// trip counts.
constexpr std::uint32_t kUniformParams = 4;
/// Values written into those slots (runtime-loaded, so known-bits cannot
/// fold conditions derived from them).
constexpr std::int32_t kUniformValues[kUniformParams] = {3, 7, -5, 11};

struct OpName {
  OpKind kind;
  const char* name;
};

constexpr OpName kOpNames[] = {
    {OpKind::FAdd, "fadd"},     {OpKind::FSub, "fsub"},
    {OpKind::FMul, "fmul"},     {OpKind::FDiv, "fdiv"},
    {OpKind::FMin, "fmin"},     {OpKind::FMax, "fmax"},
    {OpKind::FAbs, "fabs"},     {OpKind::Sqrt, "sqrt"},
    {OpKind::FNeg, "fneg"},     {OpKind::Fma, "fma"},
    {OpKind::FSel, "fsel"},     {OpKind::IAdd, "iadd"},
    {OpKind::ISub, "isub"},     {OpKind::IMul, "imul"},
    {OpKind::IAnd, "iand"},     {OpKind::IOr, "ior"},
    {OpKind::IXor, "ixor"},     {OpKind::IShl, "ishl"},
    {OpKind::IAShr, "iashr"},   {OpKind::IDiv, "idiv"},
    {OpKind::IRem, "irem"},     {OpKind::ISel, "isel"},
    {OpKind::IToF, "itof"},     {OpKind::FToI, "ftoi"},
    {OpKind::LoadF, "loadf"},   {OpKind::LoadI, "loadi"},
    {OpKind::LoadOff, "loadoff"}, {OpKind::Gather, "gather"},
    {OpKind::Scatter, "scatter"}, {OpKind::Uniform, "uniform"},
};

static_assert(sizeof(kOpNames) / sizeof(kOpNames[0]) == kNumOpKinds,
              "op name table out of sync with OpKind");

/// Weighted generator draw table: arithmetic is common, memory traffic
/// moderate, scatters rare (each scatter scalarizes the remainder path).
constexpr OpKind kDrawTable[] = {
    OpKind::FAdd, OpKind::FAdd, OpKind::FSub,  OpKind::FMul, OpKind::FMul,
    OpKind::FDiv, OpKind::FMin, OpKind::FMax,  OpKind::FAbs, OpKind::Sqrt,
    OpKind::FNeg, OpKind::Fma,  OpKind::Fma,   OpKind::FSel, OpKind::FSel,
    OpKind::IAdd, OpKind::IAdd, OpKind::ISub,  OpKind::IMul, OpKind::IAnd,
    OpKind::IOr,  OpKind::IXor, OpKind::IShl,  OpKind::IAShr, OpKind::IDiv,
    OpKind::IRem, OpKind::ISel, OpKind::IToF,  OpKind::IToF, OpKind::FToI,
    OpKind::LoadF, OpKind::LoadF, OpKind::LoadI, OpKind::LoadOff,
    OpKind::LoadOff, OpKind::Gather, OpKind::Gather, OpKind::Scatter,
    OpKind::Uniform,
};

constexpr unsigned kDrawTableSize =
    sizeof(kDrawTable) / sizeof(kDrawTable[0]);

const char* category_token(analysis::FaultSiteCategory category) {
  switch (category) {
    case analysis::FaultSiteCategory::PureData: return "puredata";
    case analysis::FaultSiteCategory::Control: return "control";
    case analysis::FaultSiteCategory::Address: return "address";
  }
  return "puredata";
}

bool category_from_token(const std::string& token,
                         analysis::FaultSiteCategory* out) {
  if (token == "puredata") {
    *out = analysis::FaultSiteCategory::PureData;
  } else if (token == "control") {
    *out = analysis::FaultSiteCategory::Control;
  } else if (token == "address") {
    *out = analysis::FaultSiteCategory::Address;
  } else {
    return false;
  }
  return true;
}

/// Emits one foreach-body's op sequence and returns the varying f32 the
/// loop observes (stored to out[] or accumulated). Pure function of the
/// LoopSpec: operand picks resolve modulo the live pools, so every op
/// sequence lowers to verifiable, trap-free IR.
Value* emit_body(KernelBuilder& kb, ForeachCtx& ctx, const LoopSpec& loop,
                 std::size_t loop_index, std::size_t num_loops,
                 Value* const farr[3], Value* const iarr[2], Value* params,
                 Value* out, Value* n_arg) {
  ir::IRBuilder& b = ctx.b();
  const Type f32 = Type::f32();
  const Type i32 = Type::i32();
  const Type vf32 = kb.target().varying_f32();
  const Type vi32 = kb.target().varying_i32();

  std::vector<Value*> fpool;
  std::vector<Value*> ipool;
  fpool.push_back(ctx.load(f32, farr[loop_index % 3]));
  ipool.push_back(ctx.index());

  // Lazily broadcast n once per body invocation (the callback runs twice:
  // full and partial body — the splat must live in the current block).
  Value* splat_n = nullptr;
  const auto vn = [&]() {
    if (splat_n == nullptr) splat_n = kb.uniform(n_arg, "vn");
    return splat_n;
  };
  const auto fp = [&](std::uint32_t x) { return fpool[x % fpool.size()]; };
  const auto ip = [&](std::uint32_t x) { return ipool[x % ipool.size()]; };
  const auto umod = [](std::int32_t imm, std::uint32_t m) {
    return static_cast<std::uint32_t>(imm) % m;
  };

  static const ir::FCmpPred kFPreds[] = {
      ir::FCmpPred::OLT, ir::FCmpPred::OLE, ir::FCmpPred::OGT,
      ir::FCmpPred::OGE, ir::FCmpPred::OEQ, ir::FCmpPred::ONE};
  static const ir::ICmpPred kIPreds[] = {
      ir::ICmpPred::SLT, ir::ICmpPred::SLE, ir::ICmpPred::SGT,
      ir::ICmpPred::SGE, ir::ICmpPred::EQ,  ir::ICmpPred::NE};

  for (const OpNode& op : loop.ops) {
    switch (op.kind) {
      case OpKind::FAdd: fpool.push_back(b.fadd(fp(op.a), fp(op.b))); break;
      case OpKind::FSub: fpool.push_back(b.fsub(fp(op.a), fp(op.b))); break;
      case OpKind::FMul: fpool.push_back(b.fmul(fp(op.a), fp(op.b))); break;
      case OpKind::FDiv: fpool.push_back(b.fdiv(fp(op.a), fp(op.b))); break;
      case OpKind::FMin:
        fpool.push_back(
            kb.intrinsic_call(ir::IntrinsicId::Fmin, fp(op.a), fp(op.b)));
        break;
      case OpKind::FMax:
        fpool.push_back(
            kb.intrinsic_call(ir::IntrinsicId::Fmax, fp(op.a), fp(op.b)));
        break;
      case OpKind::FAbs:
        fpool.push_back(kb.intrinsic_call(ir::IntrinsicId::Fabs, fp(op.a)));
        break;
      case OpKind::Sqrt:
        // fabs first: sqrt of a negative would be NaN, which is
        // deterministic but poisons every downstream compare.
        fpool.push_back(kb.intrinsic_call(
            ir::IntrinsicId::Sqrt,
            kb.intrinsic_call(ir::IntrinsicId::Fabs, fp(op.a))));
        break;
      case OpKind::FNeg: fpool.push_back(b.fneg(fp(op.a))); break;
      case OpKind::Fma:
        fpool.push_back(b.fadd(b.fmul(fp(op.a), fp(op.b)), fp(op.c)));
        break;
      case OpKind::FSel: {
        Value* cond = b.fcmp(kFPreds[umod(op.imm, 6)], fp(op.a), fp(op.b));
        fpool.push_back(b.select(cond, fp(op.a), fp(op.c)));
        break;
      }
      case OpKind::IAdd: ipool.push_back(b.add(ip(op.a), ip(op.b))); break;
      case OpKind::ISub: ipool.push_back(b.sub(ip(op.a), ip(op.b))); break;
      case OpKind::IMul: ipool.push_back(b.mul(ip(op.a), ip(op.b))); break;
      case OpKind::IAnd: ipool.push_back(b.and_(ip(op.a), ip(op.b))); break;
      case OpKind::IOr: ipool.push_back(b.or_(ip(op.a), ip(op.b))); break;
      case OpKind::IXor: ipool.push_back(b.xor_(ip(op.a), ip(op.b))); break;
      case OpKind::IShl:
        ipool.push_back(
            b.shl(ip(op.a), b.and_(ip(op.b), kb.vconst_i32(7))));
        break;
      case OpKind::IAShr:
        ipool.push_back(
            b.ashr(ip(op.a), b.and_(ip(op.b), kb.vconst_i32(7))));
        break;
      case OpKind::IDiv:
        // or 1 forces the divisor odd (never zero); INT_MIN / -1 wraps
        // deterministically in the interpreter.
        ipool.push_back(
            b.sdiv(ip(op.a), b.or_(ip(op.b), kb.vconst_i32(1))));
        break;
      case OpKind::IRem:
        ipool.push_back(
            b.srem(ip(op.a), b.or_(ip(op.b), kb.vconst_i32(1))));
        break;
      case OpKind::ISel: {
        Value* cond = b.icmp(kIPreds[umod(op.imm, 6)], ip(op.a), ip(op.b));
        ipool.push_back(b.select(cond, ip(op.a), ip(op.c)));
        break;
      }
      case OpKind::IToF: fpool.push_back(b.sitofp(ip(op.a), vf32)); break;
      case OpKind::FToI: ipool.push_back(b.fptosi(fp(op.a), vi32)); break;
      case OpKind::LoadF:
        fpool.push_back(ctx.load(f32, farr[umod(op.imm, 3)]));
        break;
      case OpKind::LoadI:
        ipool.push_back(ctx.load(i32, iarr[umod(op.imm, 2)]));
        break;
      case OpKind::LoadOff: {
        const std::int32_t off =
            static_cast<std::int32_t>(umod(op.imm, 2 * kMargin + 1)) -
            kMargin;
        fpool.push_back(
            ctx.load_offset(f32, farr[op.a % 3], b.i32_const(off)));
        break;
      }
      case OpKind::Gather: {
        Value* idx = b.urem(ip(op.a), vn(), "gidx");
        fpool.push_back(ctx.gather(f32, farr[op.b % 3], idx));
        break;
      }
      case OpKind::Scatter: {
        Value* idx = b.urem(ip(op.a), vn(), "sidx");
        ctx.scatter(fp(op.b), out, idx);
        break;
      }
      case OpKind::Uniform: {
        Value* slot = b.gep(
            params,
            b.i32_const(static_cast<std::int32_t>(
                num_loops + umod(op.imm, kUniformParams))),
            4, "upar_ptr");
        ipool.push_back(kb.uniform(b.load(i32, slot, "upar")));
        break;
      }
    }
  }
  return fpool.back();
}

}  // namespace

const char* op_kind_name(OpKind kind) {
  for (const OpName& entry : kOpNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "?";
}

bool op_kind_from_name(const std::string& name, OpKind* out) {
  for (const OpName& entry : kOpNames) {
    if (name == entry.name) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

std::size_t total_ops(const KernelSpec& spec) {
  std::size_t total = 0;
  for (const LoopSpec& loop : spec.loops) total += loop.ops.size();
  return total;
}

KernelSpec generate_kernel(std::uint64_t seed, const GenConfig& config) {
  // Counter-based stream: the spec is a pure function of (seed, config),
  // independent of which worker thread draws it.
  Rng rng(derive_stream_seed(seed, 0xF022'5EEDULL, 0));
  KernelSpec spec;
  spec.seed = seed;
  spec.isa = rng.next_bool(0.5) ? ir::Isa::AVX : ir::Isa::SSE4;
  switch (rng.next_below(3)) {
    case 0: spec.category = analysis::FaultSiteCategory::PureData; break;
    case 1: spec.category = analysis::FaultSiteCategory::Control; break;
    default: spec.category = analysis::FaultSiteCategory::Address; break;
  }
  const std::uint32_t min_n = std::max(config.min_n, kMinN);
  const std::uint32_t max_n = std::max(config.max_n, min_n);
  spec.n = min_n + static_cast<std::uint32_t>(
                       rng.next_below(max_n - min_n + 1));

  const std::uint32_t min_loops = std::max<std::uint32_t>(config.min_loops, 1);
  const std::uint32_t max_loops = std::max(config.max_loops, min_loops);
  const std::uint32_t num_loops =
      min_loops +
      static_cast<std::uint32_t>(rng.next_below(max_loops - min_loops + 1));
  for (std::uint32_t li = 0; li < num_loops; ++li) {
    LoopSpec loop;
    if (rng.next_bool(config.p_scalar_wrapper)) {
      loop.trip = 1 + static_cast<std::int32_t>(rng.next_below(3));
    }
    loop.reduce = rng.next_bool(config.p_reduce);
    const std::uint32_t min_ops = std::max<std::uint32_t>(config.min_ops, 1);
    const std::uint32_t max_ops = std::max(config.max_ops, min_ops);
    const std::uint32_t num_ops =
        min_ops +
        static_cast<std::uint32_t>(rng.next_below(max_ops - min_ops + 1));
    for (std::uint32_t oi = 0; oi < num_ops; ++oi) {
      OpNode op;
      op.kind = kDrawTable[rng.next_below(kDrawTableSize)];
      op.a = static_cast<std::uint32_t>(rng.next_u64() & 0xffff);
      op.b = static_cast<std::uint32_t>(rng.next_u64() & 0xffff);
      op.c = static_cast<std::uint32_t>(rng.next_u64() & 0xffff);
      op.imm = static_cast<std::int32_t>(rng.next_u64());
      loop.ops.push_back(op);
    }
    spec.loops.push_back(std::move(loop));
  }
  return spec;
}

BuildResult build_runspec(const KernelSpec& spec) {
  BuildResult result;
  const std::uint32_t n = std::max(spec.n, kMinN);
  const std::size_t num_loops = spec.loops.size();
  const Target target =
      spec.isa == ir::Isa::AVX ? Target::avx() : Target::sse4();

  RunSpec& rs = result.spec;
  rs.module = std::make_unique<ir::Module>("fuzz");
  KernelBuilder kb(*rs.module, target, "fuzz_kernel",
                   {Type::ptr(), Type::ptr(), Type::ptr(), Type::ptr(),
                    Type::ptr(), Type::ptr(), Type::ptr(), Type::ptr(),
                    Type::i32()});
  ir::IRBuilder& b = kb.b();
  Value* out = kb.arg(0);
  Value* acc = kb.arg(1);
  Value* params = kb.arg(2);
  Value* farr[3] = {kb.arg(3), kb.arg(4), kb.arg(5)};
  Value* iarr[2] = {kb.arg(6), kb.arg(7)};
  Value* n_arg = kb.arg(8);

  // Interior bounds [kMargin, n - kMargin): end is a runtime value, so
  // known-bits cannot prove the loop condition constant.
  Value* lo = b.i32_const(kMargin);
  Value* hi = b.sub(n_arg, b.i32_const(kMargin), "interior_end");

  for (std::size_t li = 0; li < num_loops; ++li) {
    const LoopSpec& loop = spec.loops[li];
    const auto emit_foreach = [&]() {
      if (loop.reduce) {
        std::vector<Value*> fin = kb.foreach_reduce(
            lo, hi, {kb.vconst_f32(0.0f)},
            [&](ForeachCtx& ctx, const std::vector<Value*>& carried)
                -> std::vector<Value*> {
              Value* v = emit_body(kb, ctx, loop, li, num_loops, farr, iarr,
                                   params, out, n_arg);
              return {ctx.b().fadd(carried[0], v, "acc_step")};
            });
        // Read-modify-write so wrapper trips stay observable.
        Value* acc_ptr =
            b.gep(acc, b.i32_const(static_cast<std::int32_t>(li)), 4,
                  "acc_ptr");
        Value* cur = b.load(Type::f32(), acc_ptr, "acc_cur");
        b.store(b.fadd(cur, kb.reduce_add(fin[0]), "acc_new"), acc_ptr);
      } else {
        kb.foreach_loop(lo, hi, [&](ForeachCtx& ctx) {
          Value* v = emit_body(kb, ctx, loop, li, num_loops, farr, iarr,
                               params, out, n_arg);
          ctx.store(v, out);
        });
      }
    };
    if (loop.trip >= 0) {
      Value* trip_ptr =
          b.gep(params, b.i32_const(static_cast<std::int32_t>(li)), 4,
                "trip_ptr");
      Value* trip = b.load(Type::i32(), trip_ptr, "trip");
      kb.scalar_loop(
          b.i32_const(0), trip, {},
          [&](Value*, const std::vector<Value*>&) -> std::vector<Value*> {
            emit_foreach();
            return {};
          },
          "wrap");
    } else {
      emit_foreach();
    }
  }

  result.ok = kb.finish();
  result.errors = kb.errors();
  if (!result.ok) return result;
  rs.entry = rs.module->find_function("fuzz_kernel");

  // Inputs are a pure function of the spec (n and loop count only), so a
  // reduced spec rebuilds its own consistent world.
  const std::uint64_t out_base = kernels::alloc_f32_zero(rs.arena, "out", n);
  const std::uint64_t acc_base =
      kernels::alloc_f32_zero(rs.arena, "acc", std::max<std::size_t>(1, num_loops));
  std::vector<std::int32_t> param_values;
  for (std::size_t li = 0; li < num_loops; ++li) {
    param_values.push_back(spec.loops[li].trip >= 0 ? spec.loops[li].trip : 0);
  }
  for (std::uint32_t u = 0; u < kUniformParams; ++u) {
    param_values.push_back(kUniformValues[u]);
  }
  const std::uint64_t params_base =
      kernels::alloc_i32(rs.arena, "params", param_values);
  std::uint64_t f_bases[3];
  for (unsigned k = 0; k < 3; ++k) {
    f_bases[k] = kernels::alloc_f32(
        rs.arena, "a" + std::to_string(k),
        kernels::random_f32(n, 0xA11CE00ULL + k, -4.0f, 4.0f));
  }
  std::uint64_t i_bases[2];
  for (unsigned k = 0; k < 2; ++k) {
    i_bases[k] = kernels::alloc_i32(
        rs.arena, "b" + std::to_string(k),
        kernels::random_i32(n, 0xB0B0B00ULL + k, 0,
                            static_cast<std::int32_t>(n) - 1));
  }
  rs.args = {interp::RtVal::ptr(out_base),      interp::RtVal::ptr(acc_base),
             interp::RtVal::ptr(params_base),   interp::RtVal::ptr(f_bases[0]),
             interp::RtVal::ptr(f_bases[1]),    interp::RtVal::ptr(f_bases[2]),
             interp::RtVal::ptr(i_bases[0]),    interp::RtVal::ptr(i_bases[1]),
             interp::RtVal::i32(static_cast<std::int32_t>(n))};
  rs.output_regions = {"out", "acc"};
  return result;
}

std::string serialize_spec(const KernelSpec& spec, const std::string& oracle) {
  std::ostringstream os;
  os << "vulfi.fuzz.kernel v" << spec.grammar << "\n";
  if (!oracle.empty()) os << "oracle " << oracle << "\n";
  os << "seed " << spec.seed << "\n";
  os << "isa " << (spec.isa == ir::Isa::AVX ? "avx" : "sse4") << "\n";
  os << "category " << category_token(spec.category) << "\n";
  os << "n " << spec.n << "\n";
  os << "loops " << spec.loops.size() << "\n";
  for (const LoopSpec& loop : spec.loops) {
    os << "loop trip " << loop.trip << " reduce " << (loop.reduce ? 1 : 0)
       << "\n";
    for (const OpNode& op : loop.ops) {
      os << "op " << op_kind_name(op.kind) << " " << op.a << " " << op.b
         << " " << op.c << " " << op.imm << "\n";
    }
    os << "end\n";
  }
  return os.str();
}

ParseResult parse_spec(const std::string& text) {
  ParseResult result;
  std::istringstream is(text);
  std::string line;

  if (!std::getline(is, line)) {
    result.error = "empty input";
    return result;
  }
  unsigned version = 0;
  if (std::sscanf(line.c_str(), "vulfi.fuzz.kernel v%u", &version) != 1) {
    result.error = "missing 'vulfi.fuzz.kernel v<N>' header";
    return result;
  }
  if (version != kGrammarVersion) {
    result.grammar_mismatch = true;
    result.error = "grammar version mismatch: file is v" +
                   std::to_string(version) + ", this build speaks v" +
                   std::to_string(kGrammarVersion);
    return result;
  }
  result.spec.grammar = version;
  result.spec.loops.clear();

  std::size_t declared_loops = 0;
  bool saw_loops = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "oracle") {
      ls >> result.oracle;
    } else if (key == "seed") {
      ls >> result.spec.seed;
    } else if (key == "isa") {
      std::string token;
      ls >> token;
      if (token == "avx") {
        result.spec.isa = ir::Isa::AVX;
      } else if (token == "sse4") {
        result.spec.isa = ir::Isa::SSE4;
      } else {
        result.error = "unknown isa '" + token + "'";
        return result;
      }
    } else if (key == "category") {
      std::string token;
      ls >> token;
      if (!category_from_token(token, &result.spec.category)) {
        result.error = "unknown category '" + token + "'";
        return result;
      }
    } else if (key == "n") {
      ls >> result.spec.n;
      if (result.spec.n < kMinN) {
        result.error = "n must be >= " + std::to_string(kMinN);
        return result;
      }
    } else if (key == "loops") {
      ls >> declared_loops;
      saw_loops = true;
    } else if (key == "loop") {
      LoopSpec loop;
      std::string trip_key, reduce_key;
      int reduce_flag = 0;
      ls >> trip_key >> loop.trip >> reduce_key >> reduce_flag;
      if (trip_key != "trip" || reduce_key != "reduce" || ls.fail()) {
        result.error = "malformed loop line: " + line;
        return result;
      }
      loop.reduce = reduce_flag != 0;
      // Op lines until `end`.
      bool closed = false;
      while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#') continue;
        if (line == "end") {
          closed = true;
          break;
        }
        std::istringstream ops(line);
        std::string op_key, op_name;
        OpNode op;
        ops >> op_key >> op_name >> op.a >> op.b >> op.c >> op.imm;
        if (op_key != "op" || ops.fail() ||
            !op_kind_from_name(op_name, &op.kind)) {
          result.error = "malformed op line: " + line;
          return result;
        }
        loop.ops.push_back(op);
      }
      if (!closed) {
        result.error = "loop block missing 'end'";
        return result;
      }
      result.spec.loops.push_back(std::move(loop));
    } else {
      result.error = "unknown directive '" + key + "'";
      return result;
    }
  }
  if (!saw_loops || result.spec.loops.size() != declared_loops) {
    result.error = "loop count mismatch (declared " +
                   std::to_string(declared_loops) + ", found " +
                   std::to_string(result.spec.loops.size()) + ")";
    return result;
  }
  if (result.spec.loops.empty()) {
    result.error = "spec has no loops";
    return result;
  }
  result.ok = true;
  return result;
}

std::uint64_t spec_fingerprint(const KernelSpec& spec) {
  return fnv1a64(serialize_spec(spec));
}

}  // namespace vulfi::fuzz
