#include "fuzz/oracles.hpp"

#include <sstream>

#include "analysis/lint.hpp"
#include "ir/instruction.hpp"
#include "support/rng.hpp"
#include "vulfi/driver.hpp"
#include "vulfi/fault_site.hpp"

namespace vulfi::fuzz {

namespace {

/// Builds the spec, failing the verdict on builder diagnostics or lint
/// findings. Returns false when the verdict is already decided.
bool build_checked(const KernelSpec& spec, RunSpec* out,
                   OracleVerdict* verdict) {
  BuildResult built = build_runspec(spec);
  if (!built.ok) {
    std::ostringstream os;
    os << "[build] kernel builder rejected the spec:";
    for (const std::string& error : built.errors) os << " " << error << ";";
    verdict->ok = false;
    verdict->diagnostic = os.str();
    return false;
  }
  const std::vector<analysis::LintDiagnostic> findings =
      analysis::lint_module(*built.spec.module);
  if (!findings.empty()) {
    std::ostringstream os;
    os << "[lint] generated kernel is not lint-clean:";
    for (const analysis::LintDiagnostic& finding : findings) {
      os << " " << finding.render() << ";";
    }
    verdict->ok = false;
    verdict->diagnostic = os.str();
    return false;
  }
  *out = std::move(built.spec);
  return true;
}

template <typename T>
bool check_eq(const char* what, const T& fast, const T& reference,
              OracleVerdict* verdict) {
  if (fast == reference) return true;
  std::ostringstream os;
  os << what << " differ";
  verdict->ok = false;
  verdict->diagnostic = os.str();
  return false;
}

OracleVerdict diff_oracle(const KernelSpec& spec) {
  OracleVerdict verdict;
  RunSpec fast_spec, ref_spec;
  if (!build_checked(spec, &fast_spec, &verdict)) return verdict;
  if (!build_checked(spec, &ref_spec, &verdict)) return verdict;

  EngineOptions fast_options;
  fast_options.predecode = true;
  fast_options.static_prune = true;  // record the golden census
  EngineOptions ref_options = fast_options;
  ref_options.predecode = false;

  InjectionEngine fast(std::move(fast_spec), spec.category, fast_options);
  InjectionEngine reference(std::move(ref_spec), spec.category, ref_options);
  const GoldenCache& g_fast = fast.golden();
  const GoldenCache& g_ref = reference.golden();

  if (g_fast.output_bytes != g_ref.output_bytes) {
    std::size_t at = 0;
    while (at < g_fast.output_bytes.size() &&
           at < g_ref.output_bytes.size() &&
           g_fast.output_bytes[at] == g_ref.output_bytes[at]) {
      ++at;
    }
    std::ostringstream os;
    os << "golden output bytes differ (sizes " << g_fast.output_bytes.size()
       << " vs " << g_ref.output_bytes.size() << ", first mismatch at byte "
       << at << ")";
    verdict.ok = false;
    verdict.diagnostic = os.str();
    return verdict;
  }
  if (!check_eq("golden return bits", g_fast.return_bits, g_ref.return_bits,
                &verdict)) {
    return verdict;
  }
  if (g_fast.dynamic_sites != g_ref.dynamic_sites) {
    std::ostringstream os;
    os << "golden dynamic-site counts differ (predecode "
       << g_fast.dynamic_sites << " vs reference " << g_ref.dynamic_sites
       << ")";
    verdict.ok = false;
    verdict.diagnostic = os.str();
    return verdict;
  }
  if (g_fast.golden_instructions != g_ref.golden_instructions) {
    std::ostringstream os;
    os << "golden retired-instruction counts differ (predecode "
       << g_fast.golden_instructions << " vs reference "
       << g_ref.golden_instructions << ")";
    verdict.ok = false;
    verdict.diagnostic = os.str();
    return verdict;
  }
  if (g_fast.golden_detected != g_ref.golden_detected) {
    verdict.ok = false;
    verdict.diagnostic = "golden detector events differ between exec modes";
    return verdict;
  }
  if (!check_eq("golden site-census sequences", g_fast.site_sequence,
                g_ref.site_sequence, &verdict)) {
    return verdict;
  }
  return verdict;
}

OracleVerdict prune_oracle(const KernelSpec& spec,
                           const OracleConfig& config) {
  OracleVerdict verdict;
  RunSpec pruned_spec, plain_spec;
  if (!build_checked(spec, &pruned_spec, &verdict)) return verdict;
  if (!build_checked(spec, &plain_spec, &verdict)) return verdict;

  EngineOptions pruned_options;
  pruned_options.static_prune = true;
  EngineOptions plain_options;
  plain_options.static_prune = false;

  InjectionEngine pruned(std::move(pruned_spec), spec.category,
                         pruned_options);
  InjectionEngine plain(std::move(plain_spec), spec.category, plain_options);

  if (pruned.golden().dynamic_sites != plain.golden().dynamic_sites) {
    std::ostringstream os;
    os << "golden dynamic-site counts differ (pruned "
       << pruned.golden().dynamic_sites << " vs unpruned "
       << plain.golden().dynamic_sites << ")";
    verdict.ok = false;
    verdict.diagnostic = os.str();
    return verdict;
  }
  if (pruned.golden().dynamic_sites == 0) return verdict;  // nothing to draw

  for (unsigned experiment = 0; experiment < config.prune_experiments;
       ++experiment) {
    // Private per-experiment streams, identical for both engines — the
    // documented claim is that run_experiment draws the same (site, bit)
    // pair whether or not pruning adjudicates it.
    const std::uint64_t stream = derive_stream_seed(
        config.experiment_seed ^ spec.seed, 1, experiment);
    Rng pruned_rng(stream);
    Rng plain_rng(stream);
    const ExperimentResult a = pruned.run_experiment(pruned_rng);
    const ExperimentResult b = plain.run_experiment(plain_rng);
    const bool match =
        a.outcome == b.outcome && a.detected == b.detected &&
        a.trap == b.trap && a.dynamic_sites == b.dynamic_sites &&
        a.injection.site_id == b.injection.site_id &&
        a.injection.bit == b.injection.bit &&
        a.injection.dynamic_index == b.injection.dynamic_index;
    if (!match) {
      std::ostringstream os;
      os << "experiment " << experiment << " diverges: pruned {outcome="
         << outcome_name(a.outcome) << " detected=" << a.detected
         << " site=" << a.injection.site_id << " dyn="
         << a.injection.dynamic_index << " bit=" << a.injection.bit
         << "} vs unpruned {outcome=" << outcome_name(b.outcome)
         << " detected=" << b.detected << " site=" << b.injection.site_id
         << " dyn=" << b.injection.dynamic_index << " bit="
         << b.injection.bit << "}";
      verdict.ok = false;
      verdict.diagnostic = os.str();
      return verdict;
    }
  }
  return verdict;
}

/// Field-wise fault-site equality (instruction pointers necessarily
/// differ across modules; compare the opcode instead).
bool sites_equal(const std::vector<FaultSite>& lhs,
                 const std::vector<FaultSite>& rhs, std::string* where) {
  if (lhs.size() != rhs.size()) {
    *where = "site counts differ (" + std::to_string(lhs.size()) + " vs " +
             std::to_string(rhs.size()) + ")";
    return false;
  }
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    const FaultSite& a = lhs[i];
    const FaultSite& b = rhs[i];
    const bool same =
        a.id == b.id && a.lane == b.lane &&
        a.element_type.to_string() == b.element_type.to_string() &&
        a.site_class.control == b.site_class.control &&
        a.site_class.address == b.site_class.address &&
        a.masked == b.masked &&
        a.store_operand == b.store_operand &&
        a.vector_instruction == b.vector_instruction &&
        ((a.inst == nullptr) == (b.inst == nullptr)) &&
        (a.inst == nullptr || a.inst->opcode() == b.inst->opcode());
    if (!same) {
      *where = "site " + std::to_string(i) + " differs";
      return false;
    }
  }
  return true;
}

OracleVerdict census_oracle(const KernelSpec& spec) {
  OracleVerdict verdict;
  RunSpec original;
  if (!build_checked(spec, &original, &verdict)) return verdict;

  const std::vector<FaultSite> enumerated =
      enumerate_fault_sites(*original.entry);
  RunSpec cloned = clone_spec(original);
  const std::vector<FaultSite> enumerated_clone =
      enumerate_fault_sites(*cloned.entry);
  std::string where;
  if (!sites_equal(enumerated, enumerated_clone, &where)) {
    verdict.ok = false;
    verdict.diagnostic = "enumeration unstable across clone_spec: " + where;
    return verdict;
  }

  // Instrumentation must reproduce the standalone enumeration...
  InjectionEngine engine(std::move(original), spec.category);
  if (!sites_equal(enumerated, engine.sites(), &where)) {
    verdict.ok = false;
    verdict.diagnostic =
        "instrumented site table diverges from enumeration: " + where;
    return verdict;
  }
  // ...and survive engine cloning (re-instrumentation from pristine IR).
  const std::unique_ptr<InjectionEngine> replica = engine.clone();
  if (!sites_equal(enumerated, replica->sites(), &where)) {
    verdict.ok = false;
    verdict.diagnostic =
        "replica site table diverges after engine clone: " + where;
    return verdict;
  }

  // Golden dynamic census must not depend on ExecMode: run the cloned
  // RunSpec through a Reference-mode engine and compare sequences.
  EngineOptions reference_options;
  reference_options.predecode = false;
  InjectionEngine reference(std::move(cloned), spec.category,
                            reference_options);
  if (engine.golden().site_sequence != reference.golden().site_sequence) {
    verdict.ok = false;
    verdict.diagnostic =
        "golden dynamic-site census differs between predecode and "
        "Reference execution";
    return verdict;
  }
  return verdict;
}

/// Compares every golden observable of two engines; labels name the
/// backends in the diagnostic.
bool goldens_equal(InjectionEngine& lhs, const char* lhs_name,
                   InjectionEngine& rhs, const char* rhs_name,
                   OracleVerdict* verdict) {
  const GoldenCache& a = lhs.golden();
  const GoldenCache& b = rhs.golden();
  if (a.output_bytes != b.output_bytes) {
    std::size_t at = 0;
    while (at < a.output_bytes.size() && at < b.output_bytes.size() &&
           a.output_bytes[at] == b.output_bytes[at]) {
      ++at;
    }
    std::ostringstream os;
    os << "golden output bytes differ (sizes " << a.output_bytes.size()
       << " vs " << b.output_bytes.size() << ", first mismatch at byte " << at
       << ")";
    verdict->ok = false;
    verdict->diagnostic = os.str();
    return false;
  }
  if (!check_eq("golden return bits", a.return_bits, b.return_bits,
                verdict)) {
    return false;
  }
  if (a.dynamic_sites != b.dynamic_sites ||
      a.golden_instructions != b.golden_instructions) {
    std::ostringstream os;
    os << "golden counters differ (" << lhs_name << " sites="
       << a.dynamic_sites << " insts=" << a.golden_instructions << " vs "
       << rhs_name << " sites=" << b.dynamic_sites << " insts="
       << b.golden_instructions << ")";
    verdict->ok = false;
    verdict->diagnostic = os.str();
    return false;
  }
  if (a.golden_detected != b.golden_detected) {
    verdict->ok = false;
    verdict->diagnostic = "golden detector events differ between backends";
    return false;
  }
  return check_eq("golden site-census sequences", a.site_sequence,
                  b.site_sequence, verdict);
}

OracleVerdict jit_oracle(const KernelSpec& spec, const OracleConfig& config) {
  OracleVerdict verdict;
  RunSpec jit_spec, interp_spec;
  if (!build_checked(spec, &jit_spec, &verdict)) return verdict;
  if (!build_checked(spec, &interp_spec, &verdict)) return verdict;

  EngineOptions options;
  options.static_prune = true;  // record the golden census
  InjectionEngine jit(std::move(jit_spec), spec.category, options);
  jit.set_backend(interp::ExecMode::Jit);
  InjectionEngine interp(std::move(interp_spec), spec.category, options);

  if (!goldens_equal(jit, "jit", interp, "interp", &verdict)) return verdict;
  if (jit.golden().dynamic_sites == 0) return verdict;  // nothing to draw

  // Shared seeded experiment stream: every faulty run — injection,
  // detectors, classification, retired-instruction count — must come back
  // identical from native code and from the interpreter.
  for (unsigned experiment = 0; experiment < config.prune_experiments;
       ++experiment) {
    const std::uint64_t stream = derive_stream_seed(
        config.experiment_seed ^ spec.seed, 2, experiment);
    Rng jit_rng(stream);
    Rng interp_rng(stream);
    const ExperimentResult a = jit.run_experiment(jit_rng);
    const ExperimentResult b = interp.run_experiment(interp_rng);
    const bool match =
        a.outcome == b.outcome && a.detected == b.detected &&
        a.trap == b.trap && a.dynamic_sites == b.dynamic_sites &&
        a.faulty_instructions == b.faulty_instructions &&
        a.injection.site_id == b.injection.site_id &&
        a.injection.bit == b.injection.bit &&
        a.injection.dynamic_index == b.injection.dynamic_index &&
        a.injection.bits_before == b.injection.bits_before &&
        a.injection.bits_after == b.injection.bits_after;
    if (!match) {
      std::ostringstream os;
      os << "experiment " << experiment << " diverges: jit {outcome="
         << outcome_name(a.outcome) << " detected=" << a.detected
         << " trap=" << static_cast<int>(a.trap) << " insts="
         << a.faulty_instructions << " site=" << a.injection.site_id
         << " dyn=" << a.injection.dynamic_index << " bit="
         << a.injection.bit << "} vs interp {outcome="
         << outcome_name(b.outcome) << " detected=" << b.detected
         << " trap=" << static_cast<int>(b.trap) << " insts="
         << b.faulty_instructions << " site=" << b.injection.site_id
         << " dyn=" << b.injection.dynamic_index << " bit="
         << b.injection.bit << "}";
      verdict.ok = false;
      verdict.diagnostic = os.str();
      return verdict;
    }
  }
  return verdict;
}

}  // namespace

const char* oracle_name(OracleKind kind) {
  switch (kind) {
    case OracleKind::Diff: return "diff";
    case OracleKind::Prune: return "prune";
    case OracleKind::Census: return "census";
    case OracleKind::Jit: return "jit";
  }
  return "diff";
}

bool oracle_from_name(const std::string& name, OracleKind* out) {
  if (name == "diff") {
    *out = OracleKind::Diff;
  } else if (name == "prune") {
    *out = OracleKind::Prune;
  } else if (name == "census") {
    *out = OracleKind::Census;
  } else if (name == "jit") {
    *out = OracleKind::Jit;
  } else {
    return false;
  }
  return true;
}

OracleVerdict run_oracle(const KernelSpec& spec, OracleKind kind,
                         const OracleConfig& config) {
  switch (kind) {
    case OracleKind::Diff: return diff_oracle(spec);
    case OracleKind::Prune: return prune_oracle(spec, config);
    case OracleKind::Census: return census_oracle(spec);
    case OracleKind::Jit: return jit_oracle(spec, config);
  }
  return {};
}

}  // namespace vulfi::fuzz
