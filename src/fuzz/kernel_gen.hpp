// Seeded random SPMD kernel generation (RVISmith-style, arXiv:2507.03773).
//
// A KernelSpec is a tiny, fully serializable program description — op
// list, loop structure, trip counts, ISA, input size — and build_runspec
// lowers it through spmd::KernelBuilder into exactly the Figure-7 IR
// shapes the rest of the pipeline consumes. Two invariants make the spec
// the unit of fuzzing rather than raw IR:
//
//  * Any spec builds a well-formed, trap-free, lint-clean kernel. Operand
//    references are resolved modulo the live value pool, gather/scatter
//    indices are wrapped with `urem n`, stencil offsets stay inside the
//    foreach margins, and integer divisors are forced odd — so the ddmin
//    reducer can delete arbitrary subsets of ops and always obtain another
//    valid kernel.
//  * Lowering is a pure function of the spec (inputs are derived from the
//    spec's n, never from wall-clock or host state), so the same spec
//    reproduces byte-identical modules, arenas, and campaign statistics on
//    every run and at any --jobs count.
//
// The text serialization (`vulfi.fuzz.kernel v<N>` header) is the .vulfi
// repro/corpus format; kGrammarVersion pins compatibility and parsing
// refuses mismatched versions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "ir/intrinsics.hpp"
#include "vulfi/run_spec.hpp"

namespace vulfi::fuzz {

/// Bumped whenever KernelSpec semantics, the op vocabulary, or the
/// lowering contract changes in a way that alters built kernels. Corpus
/// replay refuses files with a different version (CLI exit 3), matching
/// the checkpoint-journal fingerprint convention.
inline constexpr unsigned kGrammarVersion = 1;

/// The generator's op vocabulary. Every op consumes values from the body's
/// float/int pools (operand indices taken modulo pool size) and pushes its
/// result back, so ops can never reference something that does not exist.
enum class OpKind : std::uint8_t {
  // float arithmetic
  FAdd, FSub, FMul, FDiv, FMin, FMax, FAbs, Sqrt, FNeg, Fma, FSel,
  // int arithmetic (shifts clamped, divisors forced odd — trap-free)
  IAdd, ISub, IMul, IAnd, IOr, IXor, IShl, IAShr, IDiv, IRem, ISel,
  // casts between the pools
  IToF, FToI,
  // memory (in-bounds by construction)
  LoadF, LoadI, LoadOff, Gather, Scatter, Uniform,
};

inline constexpr unsigned kNumOpKinds = static_cast<unsigned>(OpKind::Uniform) + 1;

const char* op_kind_name(OpKind kind);
/// False when `name` is not an op name (out is untouched).
bool op_kind_from_name(const std::string& name, OpKind* out);

struct OpNode {
  OpKind kind = OpKind::FAdd;
  /// Operand picks, resolved modulo the live pool size at lowering time.
  std::uint32_t a = 0, b = 0, c = 0;
  /// Kind-specific immediate: array selector, stencil offset, cmp
  /// predicate, uniform-parameter slot. Always reduced modulo the legal
  /// range, so any value is valid.
  std::int32_t imm = 0;
};

struct LoopSpec {
  /// >= 0: wrap the foreach in a scalar loop running `trip` times (the
  /// trip count is loaded from the params region at runtime, so lint's
  /// constant-condition rule never fires). -1: no wrapper.
  std::int32_t trip = -1;
  /// Lower as foreach_reduce with one carried f32 accumulator whose
  /// horizontal sum is read-modify-written into acc[loop]; otherwise a
  /// plain foreach storing its last float to out[i].
  bool reduce = false;
  std::vector<OpNode> ops;
};

struct KernelSpec {
  unsigned grammar = kGrammarVersion;
  /// Provenance only (reproduces the generator draw); lowering never
  /// reads it.
  std::uint64_t seed = 0;
  ir::Isa isa = ir::Isa::AVX;
  analysis::FaultSiteCategory category = analysis::FaultSiteCategory::PureData;
  /// Input/output array length; >= kMinN so the foreach margins leave a
  /// nonempty interior.
  std::uint32_t n = 64;
  std::vector<LoopSpec> loops;
};

/// Smallest legal n: margins of 4 on both sides plus a full AVX vector.
inline constexpr std::uint32_t kMinN = 16;

std::size_t total_ops(const KernelSpec& spec);

struct GenConfig {
  std::uint32_t min_loops = 1, max_loops = 3;
  std::uint32_t min_ops = 4, max_ops = 24;
  std::uint32_t min_n = kMinN, max_n = 160;
  /// Probability a loop gets a scalar trip-count wrapper / is a reduction.
  double p_scalar_wrapper = 0.35;
  double p_reduce = 0.35;
};

/// Pure function of (seed, config): the same seed yields the same spec on
/// every run, platform, and thread.
KernelSpec generate_kernel(std::uint64_t seed, const GenConfig& config = {});

struct BuildResult {
  RunSpec spec;
  bool ok = false;
  /// KernelBuilder usage diagnostics when !ok (hostile hand-written specs;
  /// generated specs always build).
  std::vector<std::string> errors;
};

/// Lowers `spec` into a ready-to-inject RunSpec: module + entry kernel +
/// arena with deterministic inputs + output regions {"out", "acc"}.
BuildResult build_runspec(const KernelSpec& spec);

/// Text form. When `oracle` is non-empty an `oracle <name>` line is
/// emitted after the header (the .vulfi repro format); fingerprints and
/// corpus comparisons use the oracle-free form.
std::string serialize_spec(const KernelSpec& spec,
                           const std::string& oracle = "");

struct ParseResult {
  bool ok = false;
  /// Header present but its version differs from kGrammarVersion.
  bool grammar_mismatch = false;
  std::string error;
  KernelSpec spec;
  /// Contents of the optional `oracle` line ("" when absent).
  std::string oracle;
};

ParseResult parse_spec(const std::string& text);

/// FNV-1a 64 over serialize_spec(spec): the cross-run / cross---jobs
/// determinism witness asserted by ctest -L fuzz.
std::uint64_t spec_fingerprint(const KernelSpec& spec);

}  // namespace vulfi::fuzz
