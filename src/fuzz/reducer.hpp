// Greedy ddmin-style kernel reduction.
//
// Because any KernelSpec builds a valid kernel (operand references are
// modular, memory discipline is structural), reduction is plain data
// surgery: drop whole loops, ddmin each loop's op list with halving chunk
// sizes, then shrink scalar knobs (trip-count wrappers, reductions, n).
// A candidate replaces the current spec when it still builds cleanly AND
// the failure predicate still holds — the predicate is typically
// "the differential oracle fails", which already folds the lint driver in
// as a gate, so the reducer can never wander into a kernel that fails for
// an unrelated malformed-IR reason.
#pragma once

#include <cstdint>
#include <functional>

#include "fuzz/kernel_gen.hpp"

namespace vulfi::fuzz {

/// Returns true when `spec` still exhibits the failure being reduced.
using FailurePredicate = std::function<bool(const KernelSpec&)>;

struct ReduceStats {
  /// Candidate specs evaluated (predicate invocations).
  std::size_t candidates = 0;
  /// Greedy passes over the strategy list until a fixpoint.
  std::size_t rounds = 0;
};

class KernelReducer {
 public:
  explicit KernelReducer(FailurePredicate still_fails)
      : still_fails_(std::move(still_fails)) {}

  /// Shrinks `spec` to a local minimum: no single loop, op chunk, or knob
  /// can be removed without losing the failure. Returns the input
  /// unchanged when it does not fail the predicate.
  KernelSpec reduce(KernelSpec spec, ReduceStats* stats = nullptr) const;

 private:
  bool candidate_fails(const KernelSpec& candidate, ReduceStats* stats) const;

  FailurePredicate still_fails_;
};

}  // namespace vulfi::fuzz
