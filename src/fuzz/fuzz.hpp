// Differential fuzzing driver (`vulfi fuzz`).
//
// A sweep walks a contiguous seed range; each seed is generated, run
// through one oracle, and — on failure — ddmin-reduced and dumped as a
// standalone .vulfi repro file. Per-seed work is a pure function of the
// seed, so workers claim seeds from an atomic counter and the summary
// (fingerprints, failures) is bit-identical at any --jobs count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/kernel_gen.hpp"
#include "fuzz/oracles.hpp"

namespace vulfi::fuzz {

struct FuzzConfig {
  std::uint64_t seed_start = 1;
  unsigned seeds = 100;
  OracleKind oracle = OracleKind::Diff;
  unsigned jobs = 1;
  /// Directory for .vulfi repro files; empty disables writing.
  std::string repro_dir;
  /// Reduce failures before reporting (off for triage speed).
  bool reduce = true;
  GenConfig gen;
  OracleConfig oracle_config;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  /// Diagnostic from the original (unreduced) failing kernel.
  std::string diagnostic;
  KernelSpec reduced;
  std::size_t original_ops = 0;
  std::size_t reduced_ops = 0;
  /// Where the repro was written; empty when writing was disabled/failed.
  std::string repro_path;
};

struct FuzzSummary {
  unsigned seeds_run = 0;
  /// spec_fingerprint per seed, in seed order — the determinism witness.
  std::vector<std::uint64_t> fingerprints;
  /// Ascending seed order regardless of worker scheduling.
  std::vector<FuzzFailure> failures;

  bool clean() const { return failures.empty(); }
};

FuzzSummary run_fuzz(const FuzzConfig& config);

/// Writes `spec` (+ oracle line) to `path` in the .vulfi format.
bool write_repro_file(const std::string& path, const KernelSpec& spec,
                      OracleKind oracle, std::string* error = nullptr);

struct ReplayResult {
  /// 0 oracle passed, 1 oracle failed, 3 unreadable / grammar mismatch —
  /// the journal-fingerprint refusal convention.
  int exit_code = 0;
  std::string message;
};

/// Parses a .vulfi file and re-runs its oracle (the file's `oracle` line;
/// diff when absent).
ReplayResult replay_repro_file(const std::string& path,
                               const OracleConfig& config = {});

}  // namespace vulfi::fuzz
