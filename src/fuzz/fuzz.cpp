#include "fuzz/fuzz.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "fuzz/reducer.hpp"

namespace vulfi::fuzz {

namespace {

/// One seed end-to-end: generate, judge, reduce, dump.
std::optional<FuzzFailure> run_seed(std::uint64_t seed,
                                    const FuzzConfig& config,
                                    std::uint64_t* fingerprint) {
  const KernelSpec spec = generate_kernel(seed, config.gen);
  *fingerprint = spec_fingerprint(spec);
  const OracleVerdict verdict =
      run_oracle(spec, config.oracle, config.oracle_config);
  if (verdict.ok) return std::nullopt;

  FuzzFailure failure;
  failure.seed = seed;
  failure.diagnostic = verdict.diagnostic;
  failure.original_ops = total_ops(spec);
  failure.reduced = spec;
  if (config.reduce) {
    const KernelReducer reducer([&](const KernelSpec& candidate) {
      return !run_oracle(candidate, config.oracle, config.oracle_config).ok;
    });
    failure.reduced = reducer.reduce(spec);
  }
  failure.reduced_ops = total_ops(failure.reduced);

  if (!config.repro_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.repro_dir, ec);
    const std::string path = config.repro_dir + "/seed-" +
                             std::to_string(seed) + ".vulfi";
    std::string error;
    if (write_repro_file(path, failure.reduced, config.oracle, &error)) {
      failure.repro_path = path;
    } else {
      failure.diagnostic += " (repro write failed: " + error + ")";
    }
  }
  return failure;
}

}  // namespace

FuzzSummary run_fuzz(const FuzzConfig& config) {
  FuzzSummary summary;
  summary.seeds_run = config.seeds;
  summary.fingerprints.assign(config.seeds, 0);
  if (config.seeds == 0) return summary;

  std::vector<std::optional<FuzzFailure>> failures(config.seeds);
  const unsigned jobs =
      std::max(1u, std::min(config.jobs, config.seeds));

  if (jobs == 1) {
    for (unsigned i = 0; i < config.seeds; ++i) {
      failures[i] = run_seed(config.seed_start + i, config,
                             &summary.fingerprints[i]);
    }
  } else {
    // Workers claim seed indices from a shared counter; every result is
    // stored at its seed's slot, so the summary is scheduling-independent.
    std::atomic<unsigned> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
      workers.emplace_back([&]() {
        for (unsigned i = next.fetch_add(1); i < config.seeds;
             i = next.fetch_add(1)) {
          failures[i] = run_seed(config.seed_start + i, config,
                                 &summary.fingerprints[i]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  for (std::optional<FuzzFailure>& failure : failures) {
    if (failure.has_value()) summary.failures.push_back(std::move(*failure));
  }
  return summary;
}

bool write_repro_file(const std::string& path, const KernelSpec& spec,
                      OracleKind oracle, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << serialize_spec(spec, oracle_name(oracle));
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

ReplayResult replay_repro_file(const std::string& path,
                               const OracleConfig& config) {
  ReplayResult result;
  std::ifstream in(path);
  if (!in) {
    result.exit_code = 3;
    result.message = "cannot read '" + path + "'";
    return result;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const ParseResult parsed = parse_spec(text.str());
  if (!parsed.ok) {
    result.exit_code = 3;
    result.message = (parsed.grammar_mismatch ? "refusing replay: " : "") +
                     parsed.error;
    return result;
  }
  OracleKind oracle = OracleKind::Diff;
  if (!parsed.oracle.empty() &&
      !oracle_from_name(parsed.oracle, &oracle)) {
    result.exit_code = 3;
    result.message = "unknown oracle '" + parsed.oracle + "' in " + path;
    return result;
  }
  const OracleVerdict verdict = run_oracle(parsed.spec, oracle, config);
  if (verdict.ok) {
    result.exit_code = 0;
    result.message = "replay clean: seed " + std::to_string(parsed.spec.seed) +
                     ", oracle " + oracle_name(oracle);
  } else {
    result.exit_code = 1;
    result.message = "replay FAILED (" + std::string(oracle_name(oracle)) +
                     "): " + verdict.diagnostic;
  }
  return result;
}

}  // namespace vulfi::fuzz
