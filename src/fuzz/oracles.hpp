// Differential oracles over generated kernels.
//
// Each oracle builds the spec's RunSpec and checks one engine invariant
// the repo already claims but only exercises on hand-written kernels:
//
//   diff    — the pre-decoded fast path and the Reference hash-lookup
//             interpreter produce byte-identical golden observables
//             (output bytes, return bits, dynamic-site count and census,
//             retired instructions, detector events).
//   prune   — per-experiment statistics with static pruning on and off
//             are bit-identical: same drawn (site, bit), same outcome,
//             detection, and trap for every experiment of a shared seed.
//   census  — static fault-site enumeration is stable across RunSpec
//             cloning, engine instrumentation, engine cloning, and
//             ExecMode (golden dynamic census predecode vs Reference).
//   jit     — the template JIT backend and the pre-decoded interpreter
//             produce byte-identical golden observables (output bytes,
//             return bits, dynamic-site count and census, retired
//             instructions, detector events) and classify a shared
//             seeded experiment stream identically.
//
// Every oracle first gates on the build diagnostics and the lint driver:
// a generated kernel that fails to build or lint is itself a finding.
#pragma once

#include <string>

#include "fuzz/kernel_gen.hpp"

namespace vulfi::fuzz {

enum class OracleKind : std::uint8_t { Diff, Prune, Census, Jit };

const char* oracle_name(OracleKind kind);
bool oracle_from_name(const std::string& name, OracleKind* out);

struct OracleConfig {
  /// Experiments per engine pair in the prune oracle.
  unsigned prune_experiments = 32;
  /// Master seed for the prune oracle's experiment streams (combined with
  /// the spec seed via derive_stream_seed).
  std::uint64_t experiment_seed = 0x0D1FF'5EEDULL;
};

struct OracleVerdict {
  bool ok = true;
  /// Human-readable description of the first discrepancy; empty when ok.
  std::string diagnostic;
};

/// Builds `spec` and runs one oracle. Build failures and lint findings
/// are reported as failing verdicts (prefixed "[build]" / "[lint]").
OracleVerdict run_oracle(const KernelSpec& spec, OracleKind kind,
                         const OracleConfig& config = {});

}  // namespace vulfi::fuzz
