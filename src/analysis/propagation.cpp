#include "analysis/propagation.hpp"

#include <deque>

#include "analysis/known_bits.hpp"
#include "analysis/slicing.hpp"
#include "ir/basic_block.hpp"
#include "ir/instruction.hpp"
#include "support/hash.hpp"

namespace vulfi::analysis {

const char* propagation_class_name(PropagationClass cls) {
  switch (cls) {
    case PropagationClass::ProvablyMasked: return "provably-masked";
    case PropagationClass::OutputReaching: return "output-reaching";
    case PropagationClass::ControlReaching: return "control-reaching";
    case PropagationClass::TrapReaching: return "trap-reaching";
  }
  return "?";
}

namespace {

ReachFlags operator|(ReachFlags a, ReachFlags b) {
  ReachFlags out;
  out.output = a.output || b.output;
  out.control = a.control || b.control;
  out.trap = a.trap || b.trap;
  return out;
}

bool contains(const ReachFlags& super, const ReachFlags& sub) {
  return (!sub.output || super.output) && (!sub.control || super.control) &&
         (!sub.trap || super.trap);
}

/// Does `inst` produce a value a corruption can flow onward through?
bool produces_value(const ir::Instruction& inst) {
  return !inst.type().is_void();
}

}  // namespace

ReachFlags direct_edge_flags(const ir::Instruction& user,
                             unsigned operand_index) {
  ReachFlags flags;
  if (is_pointer_operand_position(user, operand_index)) {
    // A corrupted address is the canonical crash path (out-of-bounds
    // access, paper §III-B) and also redirects the memory effect.
    flags.trap = true;
    return flags;
  }
  switch (user.opcode()) {
    case ir::Opcode::Store:
      // The data slot: corrupted bits land in memory.
      flags.output = true;
      return flags;
    case ir::Opcode::CondBr:
      flags.control = true;
      return flags;
    case ir::Opcode::Ret:
      flags.output = true;
      return flags;
    case ir::Opcode::SDiv:
    case ir::Opcode::UDiv:
    case ir::Opcode::SRem:
    case ir::Opcode::URem:
      // A corrupted divisor can become zero (or INT_MIN / -1): trap.
      if (operand_index == 1) flags.trap = true;
      return flags;
    case ir::Opcode::ExtractElement:
      // Dynamic lane index out of range.
      if (operand_index == 1) flags.trap = true;
      return flags;
    case ir::Opcode::InsertElement:
      if (operand_index == 2) flags.trap = true;
      return flags;
    case ir::Opcode::Call: {
      const ir::Function* callee = user.callee();
      if (callee == nullptr) {
        flags.output = true;
        return flags;
      }
      const ir::IntrinsicInfo& info = callee->intrinsic_info();
      if (info.id == ir::IntrinsicId::MaskStore) {
        // Both the data and the mask operand decide what memory holds.
        flags.output = true;
        return flags;
      }
      if (info.id == ir::IntrinsicId::MaskLoad &&
          static_cast<int>(operand_index) == info.mask_operand) {
        // The mask only gates which lanes load; the effect flows through
        // the result value, which the transitive pass follows.
        return flags;
      }
      if (ir::is_math_intrinsic(info.id) ||
          info.id == ir::IntrinsicId::MoveMask) {
        // Pure: the corruption flows through the call result only.
        return flags;
      }
      // Runtime functions (detectors, injection callouts) and anything
      // unrecognised: the argument escapes to an observable.
      flags.output = true;
      return flags;
    }
    default:
      return flags;
  }
}

const PropagationResult::ValueInfo* PropagationResult::info_of(
    const ir::Value* value) const {
  const auto it = info_.find(value);
  return it == info_.end() ? nullptr : &it->second;
}

ReachFlags PropagationResult::reach(const ir::Value* root) const {
  const ValueInfo* info = info_of(root);
  return info != nullptr ? info->flags : ReachFlags{};
}

ReachFlags PropagationResult::reach_edge(const ir::Instruction* user,
                                         unsigned operand_index) const {
  // The corrupted edge reaches whatever the user exposes directly plus,
  // when the user produces a value, everything that value reaches.
  ReachFlags flags = direct_edge_flags(*user, operand_index);
  if (produces_value(*user)) flags = flags | reach(user);
  return flags;
}

std::uint64_t PropagationResult::live_mask(const ir::Value* root,
                                           unsigned lane) const {
  const ValueInfo* info = info_of(root);
  if (info == nullptr || lane >= info->demanded.size()) {
    // Untracked: conservatively everything is live.
    return ~0ULL;
  }
  return info->demanded[lane];
}

PropagationClass PropagationResult::dominant_class(const ReachFlags& flags) {
  if (flags.trap) return PropagationClass::TrapReaching;
  if (flags.control) return PropagationClass::ControlReaching;
  if (flags.output) return PropagationClass::OutputReaching;
  return PropagationClass::ProvablyMasked;
}

PropagationClass PropagationResult::classify_bit(const ir::Value* root,
                                                 unsigned lane,
                                                 unsigned bit) const {
  const ValueInfo* info = info_of(root);
  if (info == nullptr) return PropagationClass::OutputReaching;  // unknown
  const std::uint64_t demanded =
      lane < info->demanded.size() ? info->demanded[lane] : ~0ULL;
  if ((demanded & (1ULL << bit)) == 0) return PropagationClass::ProvablyMasked;
  return dominant_class(info->flags);
}

PropagationClass PropagationResult::classify_edge_bit(
    const ir::Instruction* user, unsigned operand_index, unsigned lane,
    unsigned bit) const {
  (void)lane;
  const ir::Value* value = user->operand(operand_index);
  const unsigned width = value->type().element_bits();
  if (width < 64 && bit >= width) return PropagationClass::ProvablyMasked;
  return dominant_class(reach_edge(user, operand_index));
}

PropagationResult PropagationAnalysis::run(const ir::Function& fn,
                                           AnalysisManager& am) {
  PropagationResult result;
  const KnownBitsResult& bits = am.get<KnownBitsAnalysis>(fn);

  // Nodes: arguments and value-producing instructions.
  std::vector<const ir::Value*> nodes;
  for (const auto& arg : fn.args()) nodes.push_back(arg.get());
  for (const auto& block : fn) {
    for (const auto& inst : *block) {
      if (produces_value(*inst)) nodes.push_back(inst.get());
    }
  }
  for (const ir::Value* node : nodes) {
    PropagationResult::ValueInfo info;
    const unsigned lanes = node->type().lanes();
    info.element_bits = node->type().element_bits();
    info.demanded.reserve(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      info.demanded.push_back(bits.demanded(node, lane));
    }
    result.info_.emplace(node, std::move(info));
  }

  // Seed: direct edge flags of every use.
  for (const auto& block : fn) {
    for (const auto& inst : *block) {
      for (unsigned i = 0; i < inst->num_operands(); ++i) {
        auto it = result.info_.find(inst->operand(i));
        if (it == result.info_.end()) continue;
        it->second.flags = it->second.flags | direct_edge_flags(*inst, i);
      }
    }
  }

  // Transitive closure over def-use edges: a corrupted operand corrupts
  // the user's result, so the def inherits the result's reach. Fixpoint
  // worklist — flags are monotone 3-bit lattice points, so this
  // terminates after at most 3 rounds per cycle.
  std::deque<const ir::Instruction*> worklist;
  for (const auto& block : fn) {
    for (const auto& inst : *block) {
      if (produces_value(*inst)) worklist.push_back(inst.get());
    }
  }
  while (!worklist.empty()) {
    const ir::Instruction* inst = worklist.front();
    worklist.pop_front();
    const ReachFlags inst_flags = result.info_[inst].flags;
    for (unsigned i = 0; i < inst->num_operands(); ++i) {
      auto it = result.info_.find(inst->operand(i));
      if (it == result.info_.end()) continue;
      if (contains(it->second.flags, inst_flags)) continue;
      it->second.flags = it->second.flags | inst_flags;
      if (it->first->value_kind() == ir::ValueKind::Instruction) {
        worklist.push_back(static_cast<const ir::Instruction*>(it->first));
      }
    }
  }

  return result;
}

// --- canonical content hashing --------------------------------------------

namespace {

void hash_type(Fnv1a& h, ir::Type type) {
  h.u8(static_cast<std::uint8_t>(type.kind()));
  h.u32(type.lanes());
}

void hash_constant(Fnv1a& h, const ir::Constant& constant) {
  h.u8(3);  // operand tag: constant
  hash_type(h, constant.type());
  h.u8(constant.is_undef() ? 1 : 0);
  if (!constant.is_undef()) {
    for (unsigned lane = 0; lane < constant.type().lanes(); ++lane) {
      h.u64(constant.raw(lane));
    }
  }
}

}  // namespace

std::uint64_t function_content_hash(const ir::Function& fn) {
  Fnv1a h;
  h.u8(static_cast<std::uint8_t>(fn.kind()));
  hash_type(h, fn.return_type());
  h.u32(fn.num_args());
  for (const auto& arg : fn.args()) hash_type(h, arg->type());
  if (!fn.is_definition()) {
    // Declarations have no body; their identity is name + signature
    // (intrinsic semantics are spelled into the name).
    h.str(fn.name());
    return h.value();
  }

  // Dense, name-free numbering in layout order.
  std::unordered_map<const ir::Value*, std::uint32_t> value_ids;
  std::unordered_map<const ir::BasicBlock*, std::uint32_t> block_ids;
  std::uint32_t next_value = 0;
  for (const auto& arg : fn.args()) value_ids[arg.get()] = next_value++;
  for (const auto& block : fn) {
    block_ids[block.get()] = static_cast<std::uint32_t>(block_ids.size());
    for (const auto& inst : *block) value_ids[inst.get()] = next_value++;
  }

  h.u32(static_cast<std::uint32_t>(fn.num_blocks()));
  for (const auto& block : fn) {
    h.u32(block_ids[block.get()]);
    for (const auto& inst : *block) {
      h.u8(static_cast<std::uint8_t>(inst->opcode()));
      hash_type(h, inst->type());

      // Operand wiring.
      h.u32(inst->num_operands());
      for (unsigned i = 0; i < inst->num_operands(); ++i) {
        const ir::Value* operand = inst->operand(i);
        switch (operand->value_kind()) {
          case ir::ValueKind::Argument:
          case ir::ValueKind::Instruction: {
            h.u8(operand->value_kind() == ir::ValueKind::Argument ? 1 : 2);
            const auto it = value_ids.find(operand);
            // Operands from outside the function (never the case for
            // verified IR) fold as a sentinel rather than a name.
            h.u32(it != value_ids.end() ? it->second : 0xffffffffU);
            break;
          }
          case ir::ValueKind::Constant:
            hash_constant(h, *static_cast<const ir::Constant*>(operand));
            break;
        }
      }

      // Opcode payloads.
      switch (inst->opcode()) {
        case ir::Opcode::ICmp:
          h.u8(static_cast<std::uint8_t>(inst->icmp_pred()));
          break;
        case ir::Opcode::FCmp:
          h.u8(static_cast<std::uint8_t>(inst->fcmp_pred()));
          break;
        case ir::Opcode::ShuffleVector:
          h.u32(static_cast<std::uint32_t>(inst->shuffle_mask().size()));
          for (const int lane : inst->shuffle_mask()) {
            h.u32(static_cast<std::uint32_t>(lane));
          }
          break;
        case ir::Opcode::Call:
          // Callee identity is its name: intrinsic semantics (and ISA)
          // are spelled into it, and cross-function linkage is by name.
          h.str(inst->callee() != nullptr ? inst->callee()->name() : "");
          break;
        case ir::Opcode::GetElementPtr:
          h.u32(static_cast<std::uint32_t>(inst->gep_strides().size()));
          for (const std::uint64_t stride : inst->gep_strides()) {
            h.u64(stride);
          }
          break;
        case ir::Opcode::Alloca:
          h.u64(inst->alloca_bytes());
          break;
        case ir::Opcode::Load:
        case ir::Opcode::Store:
          hash_type(h, inst->access_type());
          break;
        case ir::Opcode::Phi: {
          const auto& incoming = inst->phi_incoming_blocks();
          h.u32(static_cast<std::uint32_t>(incoming.size()));
          for (const ir::BasicBlock* pred : incoming) {
            const auto it = block_ids.find(pred);
            h.u32(it != block_ids.end() ? it->second : 0xffffffffU);
          }
          break;
        }
        case ir::Opcode::Br:
        case ir::Opcode::CondBr: {
          h.u32(inst->num_successors());
          for (unsigned i = 0; i < inst->num_successors(); ++i) {
            const auto it = block_ids.find(inst->successor(i));
            h.u32(it != block_ids.end() ? it->second : 0xffffffffU);
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return h.value();
}

std::uint64_t module_content_hash(const ir::Module& module) {
  Fnv1a h;
  h.u32(static_cast<std::uint32_t>(module.functions().size()));
  for (const auto& fn : module.functions()) {
    // Function names participate at module level: linkage and the
    // RunSpec entry point are by name. Bodies fold in name-free.
    h.str(fn->name());
    h.u64(function_content_hash(*fn));
  }
  return h.value();
}

}  // namespace vulfi::analysis
