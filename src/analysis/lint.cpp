#include "analysis/lint.hpp"

#include <unordered_set>

#include "analysis/dominators.hpp"
#include "analysis/known_bits.hpp"
#include "analysis/liveness.hpp"
#include "analysis/propagation.hpp"
#include "ir/basic_block.hpp"
#include "ir/instruction.hpp"
#include "ir/verifier.hpp"

namespace vulfi::analysis {

namespace {

std::string value_label(const ir::Instruction& inst) {
  if (!inst.name().empty()) return "%" + inst.name();
  return std::string("<unnamed ") + ir::opcode_name(inst.opcode()) + ">";
}

void lint_definition(const ir::Function& fn, AnalysisManager& am,
                     std::vector<LintDiagnostic>& out) {
  const std::string prefix = "function @" + fn.name() + ": ";

  // [unreachable-block] — dominator-tree by-product.
  const ir::DominatorTree& domtree = am.get<DominatorTreeAnalysis>(fn);
  for (const ir::BasicBlock* block : domtree.unreachable_blocks()) {
    out.push_back({"unreachable-block",
                   prefix + "block '" + block->name() +
                       "' is not reachable from the entry block"});
  }

  // [dead-value] — transitively unobservable results.
  const LivenessResult& liveness = am.get<LivenessAnalysis>(fn);
  for (const ir::Instruction* inst : liveness.dead_values()) {
    // Only report dead values in reachable code; unreachable blocks are
    // already flagged wholesale above.
    if (inst->parent() != nullptr && !domtree.reachable(inst->parent())) {
      continue;
    }
    out.push_back({"dead-value",
                   prefix + value_label(*inst) +
                       " is computed but cannot reach any side effect"});
  }

  // [constant-condition] — known-bits proves a branch one-sided.
  const KnownBitsResult& bits = am.get<KnownBitsAnalysis>(fn);
  for (const auto& block : fn) {
    if (!domtree.reachable(block.get())) continue;
    for (const auto& inst : *block) {
      if (inst->opcode() != ir::Opcode::CondBr) continue;
      const LaneBits cond = bits.known(inst->operand(0), 0);
      if ((cond.known() & 1) == 0) continue;
      const char* taken = (cond.ones & 1) ? "true" : "false";
      out.push_back({"constant-condition",
                     prefix + "conditional branch in block '" +
                         block->name() + "' always takes the " + taken +
                         " successor"});
    }
  }

  // [site-provably-masked] — the propagation summary proves that every
  // demanded bit of a live value is masked: fault sites on it can only
  // ever produce Benign outcomes, so injecting there is wasted budget.
  // Liveness-dead values are skipped (dead-value already covers them).
  const PropagationResult& prop = am.get<PropagationAnalysis>(fn);
  const std::unordered_set<const ir::Instruction*> dead(
      liveness.dead_values().begin(), liveness.dead_values().end());
  for (const auto& block : fn) {
    if (!domtree.reachable(block.get())) continue;
    for (const auto& inst : *block) {
      if (inst->type().is_void()) continue;
      if (dead.count(inst.get()) != 0) continue;
      const unsigned width = inst->type().element_bits();
      if (width == 0) continue;
      const std::uint64_t width_mask =
          width >= 64 ? ~0ULL : ((1ULL << width) - 1);
      bool all_masked = !prop.reach(inst.get()).any();
      if (!all_masked) {
        all_masked = true;
        for (unsigned lane = 0; lane < inst->type().lanes(); ++lane) {
          if ((prop.live_mask(inst.get(), lane) & width_mask) != 0) {
            all_masked = false;
            break;
          }
        }
      }
      if (!all_masked) continue;
      out.push_back({"site-provably-masked",
                     prefix + "every bit of " + value_label(*inst) +
                         " is provably masked; fault sites here can only be "
                         "Benign"});
    }
  }

  // [store-never-reaches-output] — a stack buffer is written but never
  // read back (and its address never escapes): the stored data cannot
  // reach program output, so store-operand fault sites there are inert.
  for (const auto& block : fn) {
    if (!domtree.reachable(block.get())) continue;
    for (const auto& inst : *block) {
      if (inst->opcode() != ir::Opcode::Alloca) continue;
      // Walk the derived-pointer set: the alloca plus geps based on it.
      std::vector<const ir::Instruction*> pointers{inst.get()};
      std::unordered_set<const ir::Value*> pointer_set{inst.get()};
      bool has_store = false;
      bool has_load = false;
      bool escapes = false;
      for (std::size_t p = 0; p < pointers.size() && !escapes; ++p) {
        const ir::Instruction* ptr = pointers[p];
        for (const ir::Instruction* user : ptr->users()) {
          switch (user->opcode()) {
            case ir::Opcode::Load:
              has_load = true;
              break;
            case ir::Opcode::Store:
              if (user->operand(1) == ptr) has_store = true;
              // The address itself stored as data: it escapes to memory.
              if (user->operand(0) == ptr) escapes = true;
              break;
            case ir::Opcode::GetElementPtr:
              if (user->operand(0) == ptr) {
                if (pointer_set.insert(user).second) pointers.push_back(user);
              } else {
                escapes = true;  // pointer used as an index
              }
              break;
            case ir::Opcode::Call: {
              const ir::Function* callee = user->callee();
              if (callee == nullptr) {
                escapes = true;
                break;
              }
              const ir::IntrinsicInfo& info = callee->intrinsic_info();
              if (info.id == ir::IntrinsicId::MaskLoad &&
                  user->operand(0) == ptr) {
                has_load = true;
              } else if (info.id == ir::IntrinsicId::MaskStore &&
                         user->operand(0) == ptr) {
                has_store = true;
              } else {
                escapes = true;
              }
              break;
            }
            default:
              escapes = true;  // ret, phi, select, casts, compares, ...
              break;
          }
          if (escapes) break;
        }
      }
      if (escapes || has_load || !has_store) continue;
      out.push_back({"store-never-reaches-output",
                     prefix + "stores through " + value_label(*inst) +
                         " are never loaded back; the stored data cannot "
                         "reach program output"});
    }
  }
}

}  // namespace

std::vector<LintDiagnostic> lint_function(const ir::Function& fn,
                                          AnalysisManager& am) {
  std::vector<LintDiagnostic> out;
  for (const std::string& error : ir::verify(fn)) {
    out.push_back({"verify", error});
  }
  if (fn.is_definition() && fn.num_blocks() > 0) {
    lint_definition(fn, am, out);
  }
  return out;
}

std::vector<LintDiagnostic> lint_module(const ir::Module& module) {
  std::vector<LintDiagnostic> out;
  // Module-level verify also covers cross-function rules (call signatures,
  // operand leaks) that per-function verify cannot see.
  for (const std::string& error : ir::verify(module)) {
    out.push_back({"verify", error});
  }
  AnalysisManager am;
  for (const auto& fn : module.functions()) {
    if (!fn->is_definition() || fn->num_blocks() == 0) continue;
    std::vector<LintDiagnostic> per_fn;
    lint_definition(*fn, am, per_fn);
    for (auto& diag : per_fn) out.push_back(std::move(diag));
  }
  return out;
}

}  // namespace vulfi::analysis
