#include "analysis/lint.hpp"

#include "analysis/dominators.hpp"
#include "analysis/known_bits.hpp"
#include "analysis/liveness.hpp"
#include "ir/basic_block.hpp"
#include "ir/instruction.hpp"
#include "ir/verifier.hpp"

namespace vulfi::analysis {

namespace {

std::string value_label(const ir::Instruction& inst) {
  if (!inst.name().empty()) return "%" + inst.name();
  return std::string("<unnamed ") + ir::opcode_name(inst.opcode()) + ">";
}

void lint_definition(const ir::Function& fn, AnalysisManager& am,
                     std::vector<LintDiagnostic>& out) {
  const std::string prefix = "function @" + fn.name() + ": ";

  // [unreachable-block] — dominator-tree by-product.
  const ir::DominatorTree& domtree = am.get<DominatorTreeAnalysis>(fn);
  for (const ir::BasicBlock* block : domtree.unreachable_blocks()) {
    out.push_back({"unreachable-block",
                   prefix + "block '" + block->name() +
                       "' is not reachable from the entry block"});
  }

  // [dead-value] — transitively unobservable results.
  const LivenessResult& liveness = am.get<LivenessAnalysis>(fn);
  for (const ir::Instruction* inst : liveness.dead_values()) {
    // Only report dead values in reachable code; unreachable blocks are
    // already flagged wholesale above.
    if (inst->parent() != nullptr && !domtree.reachable(inst->parent())) {
      continue;
    }
    out.push_back({"dead-value",
                   prefix + value_label(*inst) +
                       " is computed but cannot reach any side effect"});
  }

  // [constant-condition] — known-bits proves a branch one-sided.
  const KnownBitsResult& bits = am.get<KnownBitsAnalysis>(fn);
  for (const auto& block : fn) {
    if (!domtree.reachable(block.get())) continue;
    for (const auto& inst : *block) {
      if (inst->opcode() != ir::Opcode::CondBr) continue;
      const LaneBits cond = bits.known(inst->operand(0), 0);
      if ((cond.known() & 1) == 0) continue;
      const char* taken = (cond.ones & 1) ? "true" : "false";
      out.push_back({"constant-condition",
                     prefix + "conditional branch in block '" +
                         block->name() + "' always takes the " + taken +
                         " successor"});
    }
  }
}

}  // namespace

std::vector<LintDiagnostic> lint_function(const ir::Function& fn,
                                          AnalysisManager& am) {
  std::vector<LintDiagnostic> out;
  for (const std::string& error : ir::verify(fn)) {
    out.push_back({"verify", error});
  }
  if (fn.is_definition() && fn.num_blocks() > 0) {
    lint_definition(fn, am, out);
  }
  return out;
}

std::vector<LintDiagnostic> lint_module(const ir::Module& module) {
  std::vector<LintDiagnostic> out;
  // Module-level verify also covers cross-function rules (call signatures,
  // operand leaks) that per-function verify cannot see.
  for (const std::string& error : ir::verify(module)) {
    out.push_back({"verify", error});
  }
  AnalysisManager am;
  for (const auto& fn : module.functions()) {
    if (!fn->is_definition() || fn->num_blocks() == 0) continue;
    std::vector<LintDiagnostic> per_fn;
    lint_definition(*fn, am, per_fn);
    for (auto& diag : per_fn) out.push_back(std::move(diag));
  }
  return out;
}

}  // namespace vulfi::analysis
