#include "analysis/slicing.hpp"

#include <algorithm>

#include "ir/basic_block.hpp"
#include "ir/function.hpp"
#include "ir/intrinsics.hpp"

namespace vulfi::analysis {

std::unordered_set<const ir::Instruction*> forward_slice(
    const ir::Value& root) {
  std::unordered_set<const ir::Instruction*> slice;
  std::vector<const ir::Value*> worklist = {&root};
  while (!worklist.empty()) {
    const ir::Value* value = worklist.back();
    worklist.pop_back();
    for (const ir::Instruction* user : value->users()) {
      if (!slice.insert(user).second) continue;
      if (!user->type().is_void()) {
        worklist.push_back(user);
      }
    }
  }
  return slice;
}

bool is_pointer_operand_position(const ir::Instruction& inst,
                                 unsigned operand_index) {
  switch (inst.opcode()) {
    case ir::Opcode::Load:
      return operand_index == 0;
    case ir::Opcode::Store:
      return operand_index == 1;
    case ir::Opcode::Call: {
      const ir::Function* callee = inst.callee();
      if (callee == nullptr) return false;
      const ir::IntrinsicInfo& info = callee->intrinsic_info();
      return (info.id == ir::IntrinsicId::MaskLoad ||
              info.id == ir::IntrinsicId::MaskStore) &&
             operand_index == 0;
    }
    default:
      return false;
  }
}

bool SliceResult::intersects(const Bitset& a, const Bitset& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

const SliceResult::Bitset& SliceResult::reach_of(
    const ir::Value* root) const {
  auto memo = reach_memo_.find(root);
  if (memo != reach_memo_.end()) return memo->second;
  const std::size_t words = (scc_members_.size() + 63) / 64;
  Bitset reach(words, 0);
  for (const ir::Instruction* user : root->users()) {
    auto it = node_ids_.find(user);
    if (it == node_ids_.end()) continue;  // user outside this function
    const Bitset& from_user = scc_reach_[scc_of_[it->second]];
    for (std::size_t w = 0; w < words; ++w) reach[w] |= from_user[w];
  }
  return reach_memo_.emplace(root, std::move(reach)).first->second;
}

std::unordered_set<const ir::Instruction*> SliceResult::slice(
    const ir::Value* root) const {
  std::unordered_set<const ir::Instruction*> out;
  const Bitset& reach = reach_of(root);
  for (std::size_t s = 0; s < scc_members_.size(); ++s) {
    if (!((reach[s / 64] >> (s % 64)) & 1)) continue;
    for (unsigned node : scc_members_[s]) {
      // Arguments have no incoming def-use edges and can never be reached.
      if (const auto* inst =
              dynamic_cast<const ir::Instruction*>(nodes_[node])) {
        out.insert(inst);
      }
    }
  }
  return out;
}

SiteClass SliceResult::classify(const ir::Value* root,
                                AddressRule rule) const {
  const Bitset& reach = reach_of(root);
  SiteClass cls;
  cls.control = intersects(reach, condbr_sccs_);
  cls.address = intersects(reach, gep_sccs_);
  if (rule == AddressRule::GepOrMemOperand && !cls.address) {
    // The root itself, or any corrupted slice value, feeding a memory
    // operation's pointer operand. Exact per-edge facts — no producing-edge
    // approximation.
    auto it = node_ids_.find(root);
    if (it != node_ids_.end() && node_is_memptr_[it->second]) {
      cls.address = true;
    } else {
      cls.address = intersects(reach, memptr_sccs_);
    }
  }
  return cls;
}

SiteClass SliceResult::classify_edge(const ir::Instruction* user,
                                     unsigned operand_index,
                                     AddressRule rule) const {
  SiteClass cls;
  // The user joins the affected set unconditionally.
  if (user->opcode() == ir::Opcode::CondBr) cls.control = true;
  if (user->opcode() == ir::Opcode::GetElementPtr) cls.address = true;
  if (rule == AddressRule::GepOrMemOperand &&
      is_pointer_operand_position(*user, operand_index)) {
    cls.address = true;
  }
  if (user->type().is_void()) return cls;  // stores, branches: sinks
  // A value-producing user propagates the corruption to its full slice
  // (scc_reach_ includes the user's own SCC, covering the user itself).
  auto it = node_ids_.find(user);
  if (it == node_ids_.end()) return cls;
  const Bitset& reach = scc_reach_[scc_of_[it->second]];
  cls.control = cls.control || intersects(reach, condbr_sccs_);
  cls.address = cls.address || intersects(reach, gep_sccs_);
  if (rule == AddressRule::GepOrMemOperand && !cls.address) {
    cls.address = intersects(reach, memptr_sccs_);
  }
  return cls;
}

SliceResult SliceAnalysis::run(const ir::Function& fn, AnalysisManager&) {
  SliceResult r;
  if (!fn.is_definition()) return r;

  // Nodes: arguments first, then every instruction (void instructions are
  // sinks — they join slices but have no outgoing edges).
  for (const auto& arg : fn.args()) {
    r.node_ids_[arg.get()] = static_cast<unsigned>(r.nodes_.size());
    r.nodes_.push_back(arg.get());
  }
  for (const auto& block : fn) {
    for (const auto& inst : *block) {
      r.node_ids_[inst.get()] = static_cast<unsigned>(r.nodes_.size());
      r.nodes_.push_back(inst.get());
    }
  }
  const std::size_t n = r.nodes_.size();

  // Successors: value -> user, restricted to this function's nodes.
  std::vector<std::vector<unsigned>> succ(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (r.nodes_[v]->type().is_void()) continue;
    for (const ir::Instruction* user : r.nodes_[v]->users()) {
      auto it = r.node_ids_.find(user);
      if (it != r.node_ids_.end()) succ[v].push_back(it->second);
    }
  }

  // Iterative Tarjan. SCCs come out in reverse topological order of the
  // condensation: every edge out of SCC s leads to an SCC with a smaller
  // id, which makes the reachability pass below a single forward sweep.
  r.scc_of_.assign(n, UINT32_MAX);
  std::vector<unsigned> index(n, UINT32_MAX), lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<unsigned> stack;
  unsigned next_index = 0;
  struct Frame {
    unsigned node;
    std::size_t child;
  };
  std::vector<Frame> dfs;
  for (unsigned start = 0; start < n; ++start) {
    if (index[start] != UINT32_MAX) continue;
    dfs.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = 1;
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const unsigned v = frame.node;
      if (frame.child < succ[v].size()) {
        const unsigned w = succ[v][frame.child++];
        if (index[w] == UINT32_MAX) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          const unsigned scc = static_cast<unsigned>(r.scc_members_.size());
          r.scc_members_.emplace_back();
          unsigned w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            r.scc_of_[w] = scc;
            r.scc_members_[scc].push_back(w);
          } while (w != v);
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          const unsigned parent = dfs.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }

  // Per-node fact: used as the pointer operand of a memory operation.
  r.node_is_memptr_.assign(n, 0);
  for (const auto& block : fn) {
    for (const auto& inst : *block) {
      for (unsigned i = 0; i < inst->num_operands(); ++i) {
        if (!is_pointer_operand_position(*inst, i)) continue;
        auto it = r.node_ids_.find(inst->operand(i));
        if (it != r.node_ids_.end()) r.node_is_memptr_[it->second] = 1;
      }
    }
  }

  // Reachability + fact masks, one sweep in SCC id order (successor SCCs
  // always have smaller ids).
  const std::size_t sccs = r.scc_members_.size();
  const std::size_t words = (sccs + 63) / 64;
  r.scc_reach_.assign(sccs, SliceResult::Bitset(words, 0));
  r.condbr_sccs_.assign(words, 0);
  r.gep_sccs_.assign(words, 0);
  r.memptr_sccs_.assign(words, 0);
  auto set_bit = [&](SliceResult::Bitset& set, std::size_t bit) {
    set[bit / 64] |= std::uint64_t{1} << (bit % 64);
  };
  for (std::size_t s = 0; s < sccs; ++s) {
    SliceResult::Bitset& reach = r.scc_reach_[s];
    set_bit(reach, s);
    for (unsigned node : r.scc_members_[s]) {
      for (unsigned w : succ[node]) {
        const unsigned t = r.scc_of_[w];
        if (t == s) continue;
        const SliceResult::Bitset& sub = r.scc_reach_[t];
        for (std::size_t word = 0; word < words; ++word) {
          reach[word] |= sub[word];
        }
      }
      const ir::Value* value = r.nodes_[node];
      if (const auto* inst = dynamic_cast<const ir::Instruction*>(value)) {
        if (inst->opcode() == ir::Opcode::CondBr) {
          set_bit(r.condbr_sccs_, s);
        }
        if (inst->opcode() == ir::Opcode::GetElementPtr) {
          set_bit(r.gep_sccs_, s);
        }
      }
      if (r.node_is_memptr_[node]) set_bit(r.memptr_sccs_, s);
    }
  }
  return r;
}

}  // namespace vulfi::analysis
