#include "analysis/slicing.hpp"

#include <vector>

namespace vulfi::analysis {

std::unordered_set<const ir::Instruction*> forward_slice(
    const ir::Value& root) {
  std::unordered_set<const ir::Instruction*> slice;
  std::vector<const ir::Value*> worklist = {&root};
  while (!worklist.empty()) {
    const ir::Value* value = worklist.back();
    worklist.pop_back();
    for (const ir::Instruction* user : value->users()) {
      if (!slice.insert(user).second) continue;
      if (!user->type().is_void()) {
        worklist.push_back(user);
      }
    }
  }
  return slice;
}

}  // namespace vulfi::analysis
