// Block-level value liveness + transitive dead-value detection.
//
// Classic backward dataflow over dense value ids: a value is live-in to a
// block when some path from the block top reaches a use before any
// redefinition (SSA: values are defined once, so "before redefinition"
// degenerates to plain reachability of a use). Phi operands are uses on
// the incoming edge — live-out of the predecessor, not live-in of the phi
// block.
//
// On top of the block bitsets, the result classifies every instruction
// value as transitively dead or observable: dead means no chain of
// register def-use edges connects it to any side effect (memory write,
// call, terminator, return). Lint's [dead-value] rule and the fault-site
// pruner both consume this.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "ir/basic_block.hpp"
#include "ir/function.hpp"

namespace vulfi::analysis {

class LivenessResult {
 public:
  /// Is `value` (an instruction result or argument) live on entry to /
  /// exit from `block`?
  bool live_in(const ir::BasicBlock* block, const ir::Value* value) const;
  bool live_out(const ir::BasicBlock* block, const ir::Value* value) const;

  /// True when the instruction's result can never influence any side
  /// effect: not void, no use chain reaching a store / call / terminator.
  /// Calls themselves are never dead (unknown side effects).
  bool is_dead(const ir::Instruction* inst) const;

  /// All transitively dead instructions, in program order.
  const std::vector<const ir::Instruction*>& dead_values() const {
    return dead_;
  }

  /// Number of tracked values (instruction results + arguments).
  std::size_t num_values() const { return values_.size(); }

 private:
  friend struct LivenessAnalysis;

  bool bit(const std::vector<std::uint64_t>& set, unsigned id) const {
    return (set[id / 64] >> (id % 64)) & 1;
  }

  std::unordered_map<const ir::Value*, unsigned> ids_;
  std::vector<const ir::Value*> values_;
  std::unordered_map<const ir::BasicBlock*, unsigned> block_ids_;
  std::vector<std::vector<std::uint64_t>> live_in_;
  std::vector<std::vector<std::uint64_t>> live_out_;
  std::vector<const ir::Instruction*> dead_;
  std::unordered_map<const ir::Instruction*, bool> dead_set_;
};

struct LivenessAnalysis {
  using Result = LivenessResult;
  static Result run(const ir::Function& fn, AnalysisManager& am);
};

}  // namespace vulfi::analysis
