#include "analysis/liveness.hpp"

#include <algorithm>

#include "ir/instruction.hpp"

namespace vulfi::analysis {

namespace {

/// Does this instruction anchor observability by itself? Anything that
/// writes memory, transfers control, returns, or calls out is a root; a
/// value is dead only if no use chain reaches a root.
bool is_effect_root(const ir::Instruction& inst) {
  switch (inst.opcode()) {
    case ir::Opcode::Store:
    case ir::Opcode::Call:
    case ir::Opcode::Br:
    case ir::Opcode::CondBr:
    case ir::Opcode::Ret:
    case ir::Opcode::Unreachable:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool LivenessResult::live_in(const ir::BasicBlock* block,
                             const ir::Value* value) const {
  auto bid = block_ids_.find(block);
  auto vid = ids_.find(value);
  if (bid == block_ids_.end() || vid == ids_.end()) return false;
  return bit(live_in_[bid->second], vid->second);
}

bool LivenessResult::live_out(const ir::BasicBlock* block,
                              const ir::Value* value) const {
  auto bid = block_ids_.find(block);
  auto vid = ids_.find(value);
  if (bid == block_ids_.end() || vid == ids_.end()) return false;
  return bit(live_out_[bid->second], vid->second);
}

bool LivenessResult::is_dead(const ir::Instruction* inst) const {
  auto it = dead_set_.find(inst);
  return it != dead_set_.end() && it->second;
}

LivenessResult LivenessAnalysis::run(const ir::Function& fn,
                                     AnalysisManager&) {
  LivenessResult r;

  // Dense value ids: arguments first, then instruction results.
  for (const auto& arg : fn.args()) {
    r.ids_[arg.get()] = static_cast<unsigned>(r.values_.size());
    r.values_.push_back(arg.get());
  }
  std::vector<const ir::BasicBlock*> blocks;
  for (const auto& block : fn) {
    r.block_ids_[block.get()] = static_cast<unsigned>(blocks.size());
    blocks.push_back(block.get());
    for (const auto& inst : *block) {
      if (inst->type().is_void()) continue;
      r.ids_[inst.get()] = static_cast<unsigned>(r.values_.size());
      r.values_.push_back(inst.get());
    }
  }

  const std::size_t nb = blocks.size();
  const std::size_t words = (r.values_.size() + 63) / 64;
  auto set_bit = [&](std::vector<std::uint64_t>& set, unsigned id) {
    set[id / 64] |= std::uint64_t{1} << (id % 64);
  };
  auto clear_bit = [&](std::vector<std::uint64_t>& set, unsigned id) {
    set[id / 64] &= ~(std::uint64_t{1} << (id % 64));
  };

  // use[B]: values read in B before (SSA: without) local definition;
  // def[B]: values defined in B. Phi operands are edge uses (handled when
  // propagating across edges below), phi results are plain defs.
  std::vector<std::vector<std::uint64_t>> use(nb), def(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    use[b].assign(words, 0);
    def[b].assign(words, 0);
    for (const auto& inst : *blocks[b]) {
      if (inst->opcode() != ir::Opcode::Phi) {
        for (const ir::Value* operand : inst->operands()) {
          auto it = r.ids_.find(operand);
          if (it == r.ids_.end()) continue;  // constants are not tracked
          if (!(def[b][it->second / 64] >> (it->second % 64) & 1)) {
            set_bit(use[b], it->second);
          }
        }
      }
      auto self = r.ids_.find(inst.get());
      if (self != r.ids_.end()) set_bit(def[b], self->second);
    }
  }

  r.live_in_.assign(nb, std::vector<std::uint64_t>(words, 0));
  r.live_out_.assign(nb, std::vector<std::uint64_t>(words, 0));

  // Backward fixpoint:
  //   out[B] = U_{S in succ(B)} (in[S] \ phidefs(S)) U phi_uses(B -> S)
  //   in[B]  = use[B] U (out[B] \ def[B])
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = nb; bi-- > 0;) {
      const ir::BasicBlock* block = blocks[bi];
      std::vector<std::uint64_t> out(words, 0);
      for (const ir::BasicBlock* succ : block->successors()) {
        auto sid = r.block_ids_.find(succ);
        if (sid == r.block_ids_.end()) continue;
        std::vector<std::uint64_t> from_succ = r.live_in_[sid->second];
        for (const auto& inst : *succ) {
          if (inst->opcode() != ir::Opcode::Phi) break;
          auto self = r.ids_.find(inst.get());
          if (self != r.ids_.end()) clear_bit(from_succ, self->second);
        }
        for (std::size_t w = 0; w < words; ++w) out[w] |= from_succ[w];
        // Phi edge uses: the value flowing in from this block. (Manual
        // scan rather than phi_value_for, which aborts on malformed phis
        // — lint wants analyses to survive those.)
        for (const auto& inst : *succ) {
          if (inst->opcode() != ir::Opcode::Phi) break;
          const auto& incoming_blocks = inst->phi_incoming_blocks();
          for (std::size_t i = 0;
               i < incoming_blocks.size() && i < inst->num_operands(); ++i) {
            if (incoming_blocks[i] != block) continue;
            auto vid = r.ids_.find(inst->operand(static_cast<unsigned>(i)));
            if (vid != r.ids_.end()) set_bit(out, vid->second);
          }
        }
      }
      std::vector<std::uint64_t> in(words);
      for (std::size_t w = 0; w < words; ++w) {
        in[w] = use[bi][w] | (out[w] & ~def[bi][w]);
      }
      if (out != r.live_out_[bi] || in != r.live_in_[bi]) {
        r.live_out_[bi] = std::move(out);
        r.live_in_[bi] = std::move(in);
        changed = true;
      }
    }
  }

  // Transitive deadness: alive = least fixpoint reached backwards from
  // effect roots along operand edges.
  std::unordered_map<const ir::Value*, bool> alive;
  std::vector<const ir::Value*> worklist;
  auto mark = [&](const ir::Value* v) {
    if (!alive[v]) {
      alive[v] = true;
      worklist.push_back(v);
    }
  };
  for (const ir::BasicBlock* block : blocks) {
    for (const auto& inst : *block) {
      if (is_effect_root(*inst)) {
        for (const ir::Value* operand : inst->operands()) mark(operand);
        if (!inst->type().is_void()) mark(inst.get());  // calls: own value
      }
    }
  }
  while (!worklist.empty()) {
    const ir::Value* v = worklist.back();
    worklist.pop_back();
    if (const auto* inst = dynamic_cast<const ir::Instruction*>(v)) {
      for (const ir::Value* operand : inst->operands()) mark(operand);
    }
  }
  for (const ir::BasicBlock* block : blocks) {
    for (const auto& inst : *block) {
      if (inst->type().is_void() || is_effect_root(*inst)) continue;
      const bool dead = !alive.count(inst.get()) || !alive.at(inst.get());
      r.dead_set_[inst.get()] = dead;
      if (dead) r.dead_.push_back(inst.get());
    }
  }
  return r;
}

}  // namespace vulfi::analysis
