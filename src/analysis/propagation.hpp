// Error-propagation summaries + canonical IR content hashing.
//
// The compositional layer (FastFlip-style, arXiv:2403.13989) needs two
// static facts per function:
//
//  * For every fault site (value or store-operand edge) and every element
//    bit: what can a single-bit corruption reach? Classified over the
//    edge-exact slice graph (analysis/slicing.hpp) + demanded bits
//    (analysis/known_bits.hpp) as one of
//      - provably-masked:  the bit is dead (or the value unobservable) —
//        a flip is guaranteed Benign;
//      - trap-reaching:    the corruption can reach a memory address,
//        divisor, or dynamic lane index — a Crash is possible;
//      - control-reaching: the corruption can reach a conditional branch;
//      - store/output-reaching: the corruption can reach stored data, a
//        return value, or a call.
//    Classification is conservative: reach flags are value-level (any
//    demanded bit inherits every flag of its value), masking is
//    bit-level, and the class priority is trap > control > output.
//
//  * A canonical FNV-1a content hash of the function body that is stable
//    under value/block renaming, parse -> print -> parse round-trips,
//    and engine clone(), but changes on any semantic edit (opcode, type,
//    operand wiring, constant bits, CFG shape, callee). It is the key
//    under which per-function campaign summaries are stored and reused
//    (vulfi/summary.hpp).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "ir/function.hpp"
#include "ir/module.hpp"

namespace vulfi::analysis {

enum class PropagationClass : std::uint8_t {
  ProvablyMasked,
  OutputReaching,
  ControlReaching,
  TrapReaching,
};

const char* propagation_class_name(PropagationClass cls);

/// What a corruption of a whole value (or one def-use edge) can reach.
struct ReachFlags {
  bool output = false;   // stored data, return value, or call argument
  bool control = false;  // conditional branch decision
  bool trap = false;     // memory address, divisor, or dynamic lane index

  bool any() const { return output || control || trap; }
};

class PropagationResult {
 public:
  /// Reach of a corruption of `root` itself (Lvalue fault-site
  /// semantics: every use observes it). Unknown values report nothing.
  ReachFlags reach(const ir::Value* root) const;

  /// Reach of a corruption of exactly one def-use edge — operand slot
  /// `operand_index` of `user` (store-operand fault-site semantics).
  ReachFlags reach_edge(const ir::Instruction* user,
                        unsigned operand_index) const;

  /// Demanded element bits of `root` in `lane`; the complement (within
  /// the element width) is provably masked.
  std::uint64_t live_mask(const ir::Value* root, unsigned lane) const;

  /// Class of a single-bit flip in (root, lane, bit). Lvalue semantics.
  PropagationClass classify_bit(const ir::Value* root, unsigned lane,
                                unsigned bit) const;

  /// Class of a single-bit flip injected into one def-use edge. Store
  /// operands demand every element bit, so bits below the element width
  /// are never provably masked here.
  PropagationClass classify_edge_bit(const ir::Instruction* user,
                                     unsigned operand_index, unsigned lane,
                                     unsigned bit) const;

 private:
  friend struct PropagationAnalysis;

  static PropagationClass dominant_class(const ReachFlags& flags);

  struct ValueInfo {
    ReachFlags flags;
    std::vector<std::uint64_t> demanded;  // one mask per lane
    unsigned element_bits = 0;
  };

  const ValueInfo* info_of(const ir::Value* value) const;

  std::unordered_map<const ir::Value*, ValueInfo> info_;
};

struct PropagationAnalysis {
  using Result = PropagationResult;
  static Result run(const ir::Function& fn, AnalysisManager& am);
};

/// Direct (non-transitive) reach contributed by one operand edge: which
/// observable does `user` itself expose when the value flowing into
/// `operand_index` is corrupted? Exposed for the propagation tests.
ReachFlags direct_edge_flags(const ir::Instruction& user,
                             unsigned operand_index);

// --- canonical content hashing --------------------------------------------

/// FNV-1a 64 over a rename-free serialization of the function: signature,
/// CFG shape, opcodes, types, operand wiring (dense value indices),
/// constants' raw lane bits, and opcode payloads (predicates, shuffle
/// masks, GEP strides, callee names, successor/phi block indices).
/// Deliberately excludes value, block, and function names.
std::uint64_t function_content_hash(const ir::Function& fn);

/// Folds every function of the module (declarations by name + signature,
/// definitions by body hash) in module order.
std::uint64_t module_content_hash(const ir::Module& module);

}  // namespace vulfi::analysis
