// Fault-site classification (paper §II-C and Figure 2).
//
// VULFI analyzes the forward slice of a fault site and classifies it:
//   * pure-data site — the slice has no getelementptr and no control-flow
//     instruction;
//   * control site   — the slice has at least one control-flow instruction;
//   * address site   — the slice has at least one getelementptr.
// Control and address overlap (the loop iterator `i` in the paper's
// Figure 3 is both); pure-data is exactly the complement of their union.
#pragma once

#include <string>

#include "analysis/analysis_manager.hpp"
#include "ir/instruction.hpp"
#include "ir/value.hpp"

namespace vulfi::analysis {

/// The three selection heuristics of §II-C. A site with an overlapping
/// class (control + address) is eligible under both heuristics.
enum class FaultSiteCategory { PureData, Control, Address };

const char* category_name(FaultSiteCategory category);

/// What counts as an "address use" in the slice.
enum class AddressRule {
  /// The paper's rule: only getelementptr instructions.
  GepOnly,
  /// Ablation extension: additionally, appearing as the pointer operand of
  /// a load, store, or masked memory intrinsic counts as an address use.
  GepOrMemOperand,
};

struct SiteClass {
  bool control = false;
  bool address = false;

  bool pure_data() const { return !control && !address; }
  bool matches(FaultSiteCategory category) const {
    switch (category) {
      case FaultSiteCategory::PureData: return pure_data();
      case FaultSiteCategory::Control: return control;
      case FaultSiteCategory::Address: return address;
    }
    return false;
  }
};

/// Classifies the forward slice of `value`. Stand-alone variant: walks the
/// use graph afresh on every call; exact, but no caching.
SiteClass classify_value(const ir::Value& value,
                         AddressRule rule = AddressRule::GepOnly);

/// Memoized variant: routed through the cached SliceAnalysis of the
/// value's owning function (falls back to the stand-alone walk for
/// detached values). Use this when classifying many sites of one function.
SiteClass classify_value(const ir::Value& value, AddressRule rule,
                         AnalysisManager& am);

/// True when `inst` carries at least one fault site under the paper's
/// fault model (§II-B): its Lvalue holds an integer or floating-point
/// value, or it is a (masked) store whose stored value does. Pointer
/// Lvalues (getelementptr, alloca) and phi pseudo-moves are excluded.
bool is_fault_site_instruction(const ir::Instruction& inst);

}  // namespace vulfi::analysis
