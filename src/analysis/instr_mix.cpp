#include "analysis/instr_mix.hpp"

namespace vulfi::analysis {

namespace {

const ir::Value* site_value(const ir::Instruction& inst) {
  if (inst.opcode() == ir::Opcode::Store) return inst.operand(0);
  if (inst.opcode() == ir::Opcode::Call) {
    const ir::IntrinsicInfo& info = inst.callee()->intrinsic_info();
    if (info.id == ir::IntrinsicId::MaskStore) {
      return inst.operand(static_cast<unsigned>(info.data_operand));
    }
  }
  return &inst;
}

}  // namespace

InstructionMix instruction_mix(const ir::Function& fn, AddressRule rule) {
  InstructionMix mix;
  for (const auto& block : fn) {
    for (const auto& inst : *block) {
      if (!is_fault_site_instruction(*inst)) continue;
      const SiteClass cls = classify_value(*site_value(*inst), rule);
      auto tally = [&](FaultSiteCategory category) {
        MixCount& count = mix.category(category);
        if (inst->is_vector_instruction()) {
          count.vector_instructions += 1;
        } else {
          count.scalar_instructions += 1;
        }
      };
      if (cls.pure_data()) tally(FaultSiteCategory::PureData);
      if (cls.control) tally(FaultSiteCategory::Control);
      if (cls.address) tally(FaultSiteCategory::Address);
    }
  }
  return mix;
}

InstructionMix merge(const InstructionMix& a, const InstructionMix& b) {
  InstructionMix out = a;
  for (std::size_t i = 0; i < out.by_category.size(); ++i) {
    out.by_category[i].vector_instructions +=
        b.by_category[i].vector_instructions;
    out.by_category[i].scalar_instructions +=
        b.by_category[i].scalar_instructions;
  }
  return out;
}

}  // namespace vulfi::analysis
