// Forward slicing over SSA def-use edges.
//
// VULFI classifies each fault site by analyzing the forward slice of the
// site's value (paper §II-C): the set of instructions transitively reached
// by following def-use edges from the value. The slice is purely
// register-level — data that escapes through memory (store then load) is
// not tracked, matching an LLVM-level slicer.
//
// Two interfaces:
//
//  * SliceAnalysis — the memoized engine. One pass condenses the whole
//    function's def-use graph into SCCs and computes per-SCC reachability
//    bitsets, so every subsequent slice / classification query is a few
//    bitset ORs instead of a fresh worklist walk. Classification is
//    edge-aware: classify_edge(user, operand_index) answers "what is
//    affected if the value flowing into exactly this operand is
//    corrupted", which is the true semantics of a store-operand fault
//    site (the instrumentor redirects only that edge).
//
//  * forward_slice — the original stand-alone worklist helper, kept for
//    detached values and as a differential oracle for the bitset engine.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "analysis/classify.hpp"
#include "ir/instruction.hpp"
#include "ir/value.hpp"

namespace vulfi::analysis {

/// All instructions reachable from `root` by repeatedly following
/// value -> user edges (the user instruction joins the slice; if it
/// produces a value, its own users are followed, and so on).
std::unordered_set<const ir::Instruction*> forward_slice(
    const ir::Value& root);

class SliceResult {
 public:
  /// The forward slice of `root` — equal to forward_slice(*root).
  std::unordered_set<const ir::Instruction*> slice(
      const ir::Value* root) const;

  /// Classification of a fault in the VALUE `root` (every use observes the
  /// corruption). Exact for Lvalue sites.
  SiteClass classify(const ir::Value* root, AddressRule rule) const;

  /// Classification of a fault injected into exactly one def-use EDGE: the
  /// operand slot `operand_index` of `user`. Only `user` (and, if it
  /// produces a value, its forward slice) observes the corruption. This is
  /// the exact semantics of store-operand sites.
  SiteClass classify_edge(const ir::Instruction* user, unsigned operand_index,
                          AddressRule rule) const;

  /// Graph size (arguments + instructions) — test hook.
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_sccs() const { return scc_members_.size(); }

 private:
  friend struct SliceAnalysis;

  using Bitset = std::vector<std::uint64_t>;

  static bool intersects(const Bitset& a, const Bitset& b);

  /// Union of scc_reach_ over the SCCs of root's users, memoized.
  const Bitset& reach_of(const ir::Value* root) const;

  std::unordered_map<const ir::Value*, unsigned> node_ids_;
  std::vector<const ir::Value*> nodes_;
  std::vector<unsigned> scc_of_;                 // node id -> SCC id
  std::vector<std::vector<unsigned>> scc_members_;  // SCC id -> node ids
  std::vector<Bitset> scc_reach_;  // SCC id -> reachable SCCs (incl. self)
  // Fact masks over SCC ids: contains a conditional branch / a gep / a
  // value used as the pointer operand of a memory operation.
  Bitset condbr_sccs_;
  Bitset gep_sccs_;
  Bitset memptr_sccs_;
  std::vector<std::uint8_t> node_is_memptr_;  // node id -> flag

  mutable std::unordered_map<const ir::Value*, Bitset> reach_memo_;
};

struct SliceAnalysis {
  using Result = SliceResult;
  static Result run(const ir::Function& fn, AnalysisManager& am);
};

/// True when operand `operand_index` of `inst` is the pointer operand of a
/// memory operation (load, store, masked load/store intrinsic).
bool is_pointer_operand_position(const ir::Instruction& inst,
                                 unsigned operand_index);

}  // namespace vulfi::analysis
