// Forward slicing over SSA def-use edges.
//
// VULFI classifies each fault site by analyzing the forward slice of the
// site's value (paper §II-C): the set of instructions transitively reached
// by following def-use edges from the value. The slice is purely
// register-level — data that escapes through memory (store then load) is
// not tracked, matching an LLVM-level slicer.
#pragma once

#include <unordered_set>

#include "ir/instruction.hpp"
#include "ir/value.hpp"

namespace vulfi::analysis {

/// All instructions reachable from `root` by repeatedly following
/// value -> user edges (the user instruction joins the slice; if it
/// produces a value, its own users are followed, and so on).
std::unordered_set<const ir::Instruction*> forward_slice(
    const ir::Value& root);

}  // namespace vulfi::analysis
