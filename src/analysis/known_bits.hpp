// Known-bits / demanded-bits / lane-uniformity dataflow.
//
// Three intertwined facts per SSA value, per vector lane (element widths
// are <= 64, so one word per lane):
//
//  * known bits   — forward: which bits provably hold 0 / 1 on every
//    execution (grounded in constants, propagated through bitwise ops,
//    shifts by known amounts, casts, selects and phis by meet).
//  * demanded bits — backward: which bits can influence ANY observable
//    behaviour (memory writes, addresses, branch decisions, traps,
//    returns, calls). The complement is the set of provably dead bits:
//    a single-bit flip in a non-demanded position is guaranteed Benign.
//    The transfer functions are deliberately conservative about traps:
//    pointers, divisors and dynamic lane indices are always fully
//    demanded, and the execution masks of masked intrinsics demand only
//    the per-lane MSB (x86 vmaskmov reads nothing else) — the single
//    biggest source of dead bits in SPMD-lowered code.
//  * lane uniformity — forward: is the value provably a splat (all lanes
//    equal on every execution)? Scalars are trivially uniform; vectors
//    become uniform through broadcasts and elementwise ops over uniform
//    inputs. The fault-site pruner uses this to collapse lane-symmetric
//    sites into one equivalence class.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "ir/function.hpp"
#include "ir/value.hpp"

namespace vulfi::analysis {

/// Bits proven 0 (`zeros`) and proven 1 (`ones`) — disjoint masks within
/// the element width.
struct LaneBits {
  std::uint64_t zeros = 0;
  std::uint64_t ones = 0;

  std::uint64_t known() const { return zeros | ones; }
};

class KnownBitsResult {
 public:
  /// Known bits of `value` in `lane`. Constants are resolved exactly;
  /// untracked values report nothing known.
  LaneBits known(const ir::Value* value, unsigned lane) const;

  /// Demanded mask of `value` in `lane`. Untracked values (constants,
  /// unreachable code) conservatively report every element bit demanded.
  std::uint64_t demanded(const ir::Value* value, unsigned lane) const;

  /// Element bits proven dead: ~demanded within the element width.
  std::uint64_t dead_bits(const ir::Value* value, unsigned lane) const;

  /// Provable splat. Scalars: always true. Untracked vectors: constants
  /// by inspection, everything else false.
  bool lane_uniform(const ir::Value* value) const;

 private:
  friend struct KnownBitsAnalysis;
  friend struct KnownBitsSolver;

  struct ValueInfo {
    std::vector<LaneBits> known;         // one per lane
    std::vector<std::uint64_t> demanded;  // one per lane
    bool uniform = false;
  };

  std::unordered_map<const ir::Value*, ValueInfo> info_;
};

struct KnownBitsAnalysis {
  using Result = KnownBitsResult;
  static Result run(const ir::Function& fn, AnalysisManager& am);
};

/// All-ones mask for an element width (1..64).
std::uint64_t element_width_mask(unsigned bits);

}  // namespace vulfi::analysis
