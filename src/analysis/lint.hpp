// IR lint driver.
//
// Lint = the verifier plus analysis-backed hygiene rules. The verifier
// catches IR that is *wrong* (broken SSA, type violations, malformed
// masks); lint additionally flags IR that is well-formed but *suspect* —
// code the frontend or a transformation pass should never have produced:
//
//   [verify]             every verifier diagnostic, as a lint finding
//   [unreachable-block]  block not reachable from the function entry
//   [dead-value]         instruction whose result can never influence any
//                        side effect (computed but unobservable)
//   [constant-condition] conditional branch whose condition is proven
//                        constant by known-bits (one successor is dead)
//
// All shipped example and kernel modules must lint clean; the CI
// `lint-examples` step enforces that. Lint never mutates and never aborts
// on malformed IR — every analysis it runs tolerates broken input.
#pragma once

#include <string>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "ir/function.hpp"
#include "ir/module.hpp"

namespace vulfi::analysis {

struct LintDiagnostic {
  std::string rule;     // e.g. "dead-value"
  std::string message;  // human-readable, prefixed with the function name

  std::string render() const { return "[" + rule + "] " + message; }
};

/// Lints one function definition (declarations only get [verify]).
std::vector<LintDiagnostic> lint_function(const ir::Function& fn,
                                          AnalysisManager& am);

/// Lints every function of the module plus module-level verifier rules.
std::vector<LintDiagnostic> lint_module(const ir::Module& module);

}  // namespace vulfi::analysis
