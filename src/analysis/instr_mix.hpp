// Static instruction-mix census (paper Figure 10).
//
// For each fault-site category, counts how many of the function's
// fault-site-carrying instructions are vector instructions vs scalar
// instructions. The paper reports that, averaged over its nine
// benchmarks, vector instructions make up 67% of pure-data and 43% of
// control sites — the observation motivating a vector-aware injector.
#pragma once

#include <array>
#include <cstdint>

#include "analysis/classify.hpp"
#include "ir/function.hpp"

namespace vulfi::analysis {

struct MixCount {
  std::uint64_t vector_instructions = 0;
  std::uint64_t scalar_instructions = 0;

  std::uint64_t total() const {
    return vector_instructions + scalar_instructions;
  }
  double vector_fraction() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(vector_instructions) /
                              static_cast<double>(total());
  }
};

struct InstructionMix {
  /// Indexed by FaultSiteCategory (PureData, Control, Address).
  std::array<MixCount, 3> by_category;

  MixCount& category(FaultSiteCategory c) {
    return by_category[static_cast<std::size_t>(c)];
  }
  const MixCount& category(FaultSiteCategory c) const {
    return by_category[static_cast<std::size_t>(c)];
  }
};

/// Census over every fault-site instruction in `fn`. An instruction whose
/// site class is both control and address is counted in both categories
/// (they overlap, Figure 2).
InstructionMix instruction_mix(const ir::Function& fn,
                               AddressRule rule = AddressRule::GepOnly);

/// Merges two censuses (e.g. entry function plus callees).
InstructionMix merge(const InstructionMix& a, const InstructionMix& b);

}  // namespace vulfi::analysis
