// AnalysisManager adapter for the shared ir::DominatorTree.
//
// The tree itself lives in ir/ (the verifier runs below the analysis
// layer); this wrapper gives passes and lint cached access through the
// AnalysisManager: am.get<DominatorTreeAnalysis>(fn).
#pragma once

#include "analysis/analysis_manager.hpp"
#include "ir/dominators.hpp"

namespace vulfi::analysis {

struct DominatorTreeAnalysis {
  using Result = ir::DominatorTree;
  static Result run(const ir::Function& fn, AnalysisManager&) {
    return ir::DominatorTree(fn);
  }
};

}  // namespace vulfi::analysis
