#include "analysis/known_bits.hpp"

#include <algorithm>

#include "analysis/dominators.hpp"
#include "ir/basic_block.hpp"
#include "ir/instruction.hpp"
#include "ir/intrinsics.hpp"

namespace vulfi::analysis {

namespace {

using ir::Instruction;
using ir::Opcode;
using ir::Value;

unsigned msb_index(std::uint64_t x) {
  unsigned i = 0;
  while (x >>= 1) ++i;
  return i;
}

/// All bits at or below the highest set bit of `d` — the operand bits an
/// add / sub / mul can route into a demanded result bit (carries only
/// propagate upward).
std::uint64_t mask_to_msb(std::uint64_t d) {
  if (d == 0) return 0;
  const unsigned m = msb_index(d);
  return m >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (m + 1)) - 1;
}

/// All bits at or above the lowest set bit of `d` — dual of mask_to_msb
/// for right shifts by unknown amounts.
std::uint64_t mask_from_lsb(std::uint64_t d, std::uint64_t width_mask) {
  if (d == 0) return 0;
  const std::uint64_t lsb = d & (~d + 1);
  return width_mask & ~(lsb - 1);
}

}  // namespace

std::uint64_t element_width_mask(unsigned bits) {
  return bits >= 64 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << bits) - 1;
}

LaneBits KnownBitsResult::known(const Value* value, unsigned lane) const {
  if (const auto* c = dynamic_cast<const ir::Constant*>(value)) {
    if (c->is_undef()) return LaneBits{};
    const std::uint64_t mask = element_width_mask(c->type().element_bits());
    const std::uint64_t raw =
        c->raw(std::min(lane, c->type().lanes() - 1)) & mask;
    return LaneBits{~raw & mask, raw};
  }
  auto it = info_.find(value);
  if (it == info_.end() || lane >= it->second.known.size()) return LaneBits{};
  return it->second.known[lane];
}

std::uint64_t KnownBitsResult::demanded(const Value* value,
                                        unsigned lane) const {
  const std::uint64_t mask = element_width_mask(value->type().element_bits());
  auto it = info_.find(value);
  if (it == info_.end() || lane >= it->second.demanded.size()) return mask;
  return it->second.demanded[lane];
}

std::uint64_t KnownBitsResult::dead_bits(const Value* value,
                                         unsigned lane) const {
  const std::uint64_t mask = element_width_mask(value->type().element_bits());
  return mask & ~demanded(value, lane);
}

bool KnownBitsResult::lane_uniform(const Value* value) const {
  if (value->type().is_scalar()) return true;
  if (const auto* c = dynamic_cast<const ir::Constant*>(value)) {
    return !c->is_undef() && c->is_splat();
  }
  auto it = info_.find(value);
  return it != info_.end() && it->second.uniform;
}

/// Shared worker state for one function.
struct KnownBitsSolver {
  const ir::Function& fn;
  KnownBitsResult& result;
  std::vector<const ir::BasicBlock*> blocks;  // reachable, RPO

  explicit KnownBitsSolver(const ir::Function& f, KnownBitsResult& r,
                           const ir::DominatorTree& domtree)
      : fn(f), result(r) {
    for (const ir::BasicBlock* b : domtree.rpo()) blocks.push_back(b);
  }

  KnownBitsResult::ValueInfo& info(const Value* v) {
    return result.info_.at(const_cast<const Value*>(v));
  }
  bool tracked(const Value* v) const { return result.info_.count(v) != 0; }

  LaneBits known_of(const Value* v, unsigned lane) const {
    return result.known(v, lane);
  }
  bool uniform_of(const Value* v) const { return result.lane_uniform(v); }

  // ---- forward: known bits + uniformity -----------------------------

  void seed() {
    for (const auto& arg : fn.args()) {
      KnownBitsResult::ValueInfo vi;
      vi.known.assign(arg->type().lanes(), LaneBits{});
      vi.demanded.assign(arg->type().lanes(), 0);
      vi.uniform = arg->type().is_scalar();
      result.info_.emplace(arg.get(), std::move(vi));
    }
    for (const ir::BasicBlock* block : blocks) {
      for (const auto& inst : *block) {
        if (inst->type().is_void()) continue;
        KnownBitsResult::ValueInfo vi;
        vi.known.assign(inst->type().lanes(), LaneBits{});
        vi.demanded.assign(inst->type().lanes(), 0);
        // Uniformity starts optimistic (cleared to a greatest fixpoint)
        // so splats survive loop-carried phis.
        vi.uniform = true;
        result.info_.emplace(inst.get(), std::move(vi));
      }
    }
  }

  /// Meet: keep only agreed-upon facts.
  static LaneBits meet(LaneBits a, LaneBits b) {
    return LaneBits{a.zeros & b.zeros, a.ones & b.ones};
  }

  /// Is the full element value of (v, lane) a compile-time constant here?
  bool fully_known(const Value* v, unsigned lane, std::uint64_t mask,
                   std::uint64_t* out) const {
    const LaneBits k = known_of(v, lane);
    if ((k.known() & mask) != mask) return false;
    *out = k.ones & mask;
    return true;
  }

  LaneBits transfer_known(const Instruction& inst, unsigned lane) {
    const std::uint64_t mask =
        element_width_mask(inst.type().element_bits());
    auto op = [&](unsigned i, unsigned l) {
      return known_of(inst.operand(i), l);
    };
    switch (inst.opcode()) {
      case Opcode::And: {
        const LaneBits a = op(0, lane), b = op(1, lane);
        return LaneBits{(a.zeros | b.zeros) & mask, a.ones & b.ones & mask};
      }
      case Opcode::Or: {
        const LaneBits a = op(0, lane), b = op(1, lane);
        return LaneBits{a.zeros & b.zeros & mask, (a.ones | b.ones) & mask};
      }
      case Opcode::Xor: {
        const LaneBits a = op(0, lane), b = op(1, lane);
        const std::uint64_t known = a.known() & b.known() & mask;
        const std::uint64_t val = (a.ones ^ b.ones) & known;
        return LaneBits{known & ~val, val};
      }
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr: {
        const unsigned width = inst.type().element_bits();
        std::uint64_t amount = 0;
        if (!fully_known(inst.operand(1), lane, mask, &amount)) {
          return LaneBits{};
        }
        const LaneBits a = op(0, lane);
        if (amount >= width) {
          // Interpreter overshift is deterministic: AShr fills with the
          // sign bit, the logical shifts produce zero.
          if (inst.opcode() != Opcode::AShr) return LaneBits{mask, 0};
          const std::uint64_t sign = std::uint64_t{1} << (width - 1);
          if (a.zeros & sign) return LaneBits{mask, 0};
          if (a.ones & sign) return LaneBits{0, mask};
          return LaneBits{};
        }
        const auto k = static_cast<unsigned>(amount);
        if (inst.opcode() == Opcode::Shl) {
          const std::uint64_t low = k == 0 ? 0 : (std::uint64_t{1} << k) - 1;
          return LaneBits{((a.zeros << k) | low) & mask, (a.ones << k) & mask};
        }
        const std::uint64_t shifted_zeros = (a.zeros & mask) >> k;
        const std::uint64_t shifted_ones = (a.ones & mask) >> k;
        const std::uint64_t top =
            k == 0 ? 0 : mask & ~(mask >> k);  // vacated high bits
        if (inst.opcode() == Opcode::LShr) {
          return LaneBits{(shifted_zeros | top) & mask, shifted_ones};
        }
        const std::uint64_t sign = std::uint64_t{1} << (width - 1);
        const LaneBits shifted{shifted_zeros, shifted_ones};
        if (a.zeros & sign) {
          return LaneBits{(shifted.zeros | top) & mask, shifted.ones};
        }
        if (a.ones & sign) {
          return LaneBits{shifted.zeros & ~top, (shifted.ones | top) & mask};
        }
        return LaneBits{shifted.zeros & ~top, shifted.ones & ~top};
      }
      case Opcode::Trunc: {
        const LaneBits a = op(0, lane);
        return LaneBits{a.zeros & mask, a.ones & mask};
      }
      case Opcode::ZExt: {
        const std::uint64_t src_mask =
            element_width_mask(inst.operand(0)->type().element_bits());
        const LaneBits a = op(0, lane);
        return LaneBits{(a.zeros & src_mask) | (mask & ~src_mask),
                        a.ones & src_mask};
      }
      case Opcode::SExt: {
        const unsigned src_bits = inst.operand(0)->type().element_bits();
        const std::uint64_t src_mask = element_width_mask(src_bits);
        const std::uint64_t high = mask & ~src_mask;
        const std::uint64_t sign = std::uint64_t{1} << (src_bits - 1);
        const LaneBits a = op(0, lane);
        if (a.zeros & sign) {
          return LaneBits{(a.zeros & src_mask) | high, a.ones & src_mask};
        }
        if (a.ones & sign) {
          return LaneBits{a.zeros & src_mask, (a.ones & src_mask) | high};
        }
        return LaneBits{a.zeros & src_mask, a.ones & src_mask};
      }
      case Opcode::Bitcast: {
        if (inst.operand(0)->type().element_bits() ==
                inst.type().element_bits() &&
            inst.operand(0)->type().lanes() == inst.type().lanes()) {
          return op(0, lane);
        }
        return LaneBits{};
      }
      case Opcode::Select: {
        // operand 0 = condition (i1, scalar or per-lane).
        const unsigned cond_lane =
            inst.operand(0)->type().is_scalar() ? 0 : lane;
        const LaneBits c = known_of(inst.operand(0), cond_lane);
        if (c.ones & 1) return op(1, lane);
        if (c.zeros & 1) return op(2, lane);
        return meet(op(1, lane), op(2, lane));
      }
      case Opcode::Phi: {
        if (inst.num_operands() == 0) return LaneBits{};
        LaneBits acc{~std::uint64_t{0}, ~std::uint64_t{0}};
        bool first = true;
        for (const Value* incoming : inst.operands()) {
          const LaneBits k = known_of(incoming, lane);
          acc = first ? k : meet(acc, k);
          first = false;
        }
        return LaneBits{acc.zeros & mask, acc.ones & mask};
      }
      case Opcode::ExtractElement: {
        std::uint64_t idx = 0;
        const std::uint64_t idx_mask =
            element_width_mask(inst.operand(1)->type().element_bits());
        if (fully_known(inst.operand(1), 0, idx_mask, &idx) &&
            idx < inst.operand(0)->type().lanes()) {
          return known_of(inst.operand(0), static_cast<unsigned>(idx));
        }
        return LaneBits{};
      }
      case Opcode::InsertElement: {
        std::uint64_t idx = 0;
        const std::uint64_t idx_mask =
            element_width_mask(inst.operand(2)->type().element_bits());
        if (fully_known(inst.operand(2), 0, idx_mask, &idx)) {
          return idx == lane ? known_of(inst.operand(1), 0) : op(0, lane);
        }
        return LaneBits{};
      }
      case Opcode::ShuffleVector: {
        const auto& shuffle = inst.shuffle_mask();
        if (lane >= shuffle.size()) return LaneBits{};
        const int m = shuffle[lane];
        if (m < 0) return LaneBits{};
        const unsigned src_lanes = inst.operand(0)->type().lanes();
        if (static_cast<unsigned>(m) < src_lanes) {
          return known_of(inst.operand(0), static_cast<unsigned>(m));
        }
        return known_of(inst.operand(1),
                        static_cast<unsigned>(m) - src_lanes);
      }
      default:
        return LaneBits{};
    }
  }

  bool transfer_uniform(const Instruction& inst) {
    if (inst.type().is_scalar()) return true;
    switch (inst.opcode()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::SDiv: case Opcode::UDiv: case Opcode::SRem:
      case Opcode::URem: case Opcode::Shl: case Opcode::LShr:
      case Opcode::AShr: case Opcode::And: case Opcode::Or:
      case Opcode::Xor: case Opcode::FAdd: case Opcode::FSub:
      case Opcode::FMul: case Opcode::FDiv: case Opcode::FRem:
      case Opcode::FNeg: case Opcode::ICmp: case Opcode::FCmp:
      case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt:
      case Opcode::FPTrunc: case Opcode::FPExt: case Opcode::FPToSI:
      case Opcode::FPToUI: case Opcode::SIToFP: case Opcode::UIToFP:
      case Opcode::Phi: {
        for (const Value* operand : inst.operands()) {
          if (!uniform_of(operand)) return false;
        }
        return true;
      }
      case Opcode::Select:
        // Vector select with a uniform condition picks the same arm in
        // every lane; a non-uniform condition can mix arms.
        return uniform_of(inst.operand(0)) && uniform_of(inst.operand(1)) &&
               uniform_of(inst.operand(2));
      case Opcode::Bitcast:
        return inst.operand(0)->type().lanes() == inst.type().lanes() &&
               uniform_of(inst.operand(0));
      case Opcode::ShuffleVector: {
        const auto& shuffle = inst.shuffle_mask();
        if (shuffle.empty()) return false;
        bool all_equal = shuffle[0] >= 0;
        bool all_v1 = true, all_v2 = true;
        const int src_lanes =
            static_cast<int>(inst.operand(0)->type().lanes());
        for (int m : shuffle) {
          if (m != shuffle[0]) all_equal = false;
          if (m < 0) { all_v1 = all_v2 = false; continue; }
          if (m >= src_lanes) all_v1 = false;
          else all_v2 = false;
        }
        if (all_equal) return true;  // broadcast of one source lane
        if (all_v1 && uniform_of(inst.operand(0))) return true;
        if (all_v2 && uniform_of(inst.operand(1))) return true;
        return false;
      }
      case Opcode::Call: {
        const ir::Function* callee = inst.callee();
        if (callee && is_math_intrinsic(callee->intrinsic_info().id)) {
          for (const Value* operand : inst.operands()) {
            if (!uniform_of(operand)) return false;
          }
          return true;
        }
        return false;  // maskload, movmsk producers, unknown calls
      }
      default:
        return false;  // loads, insertelement, gep-adjacent, ...
    }
  }

  void solve_forward() {
    bool changed = true;
    unsigned pass = 0;
    while (changed && ++pass <= 16) {
      changed = false;
      for (const ir::BasicBlock* block : blocks) {
        for (const auto& inst : *block) {
          if (inst->type().is_void()) continue;
          auto& vi = info(inst.get());
          for (unsigned lane = 0; lane < inst->type().lanes(); ++lane) {
            const LaneBits next = transfer_known(*inst, lane);
            if (next.zeros != vi.known[lane].zeros ||
                next.ones != vi.known[lane].ones) {
              vi.known[lane] = next;
              changed = true;
            }
          }
          const bool u = transfer_uniform(*inst);
          if (u != vi.uniform) {
            vi.uniform = u;
            changed = true;
          }
        }
      }
    }
    if (changed) {
      // Did not converge (pathological IR): drop to no-knowledge, which is
      // always sound.
      for (auto& [value, vi] : result.info_) {
        std::fill(vi.known.begin(), vi.known.end(), LaneBits{});
        vi.uniform = value->type().is_scalar();
      }
    }
  }

  // ---- backward: demanded bits --------------------------------------

  using DemandMap = std::unordered_map<const Value*, std::vector<std::uint64_t>>;

  void add_demand(DemandMap& next, const Value* v, unsigned lane,
                  std::uint64_t bits) {
    if (!tracked(v)) return;  // constants / foreign values
    auto it = next.find(v);
    if (it == next.end()) {
      it = next.emplace(v, std::vector<std::uint64_t>(v->type().lanes(), 0))
               .first;
    }
    if (lane >= it->second.size()) return;
    it->second[lane] |=
        bits & element_width_mask(v->type().element_bits());
  }

  void demand_all(DemandMap& next, const Value* v) {
    const std::uint64_t mask = element_width_mask(v->type().element_bits());
    for (unsigned lane = 0; lane < v->type().lanes(); ++lane) {
      add_demand(next, v, lane, mask);
    }
  }

  std::uint64_t current_demand(const Instruction& inst, unsigned lane) {
    if (inst.type().is_void()) return 0;
    return info(&inst).demanded[lane];
  }

  void contribute(const Instruction& inst, DemandMap& next) {
    const unsigned lanes = inst.type().is_void() ? 1 : inst.type().lanes();
    const std::uint64_t mask =
        inst.type().is_void()
            ? 0
            : element_width_mask(inst.type().element_bits());
    auto demand_any = [&]() {
      for (unsigned l = 0; l < lanes; ++l) {
        if (current_demand(inst, l) != 0) return true;
      }
      return false;
    };

    switch (inst.opcode()) {
      // ---- unconditional roots (trap / memory / control / escape) ----
      case Opcode::Store:
        demand_all(next, inst.operand(0));  // stored data
        demand_all(next, inst.operand(1));  // address
        return;
      case Opcode::Load:
        demand_all(next, inst.operand(0));  // address (OutOfBounds)
        return;
      case Opcode::CondBr:
        add_demand(next, inst.operand(0), 0, 1);
        return;
      case Opcode::Ret:
        if (inst.num_operands() > 0) demand_all(next, inst.operand(0));
        return;
      case Opcode::Br:
      case Opcode::Unreachable:
      case Opcode::Alloca:
        return;
      case Opcode::SDiv:
      case Opcode::SRem:
        // Signed division can trap (zero divisor) and overflow behaviour
        // depends on every dividend bit; keep both fully demanded.
        demand_all(next, inst.operand(0));
        demand_all(next, inst.operand(1));
        return;
      case Opcode::UDiv:
      case Opcode::URem: {
        demand_all(next, inst.operand(1));  // DivByZero trap
        if (demand_any()) demand_all(next, inst.operand(0));
        return;
      }
      case Opcode::Call: {
        const ir::Function* callee = inst.callee();
        const ir::IntrinsicInfo* ii =
            callee ? &callee->intrinsic_info() : nullptr;
        if (ii && (ii->id == ir::IntrinsicId::MaskLoad ||
                   ii->id == ir::IntrinsicId::MaskStore)) {
          demand_all(next, inst.operand(0));  // pointer: OutOfBounds trap
          if (ii->data_operand >= 0 &&
              static_cast<unsigned>(ii->data_operand) < inst.num_operands()) {
            demand_all(next,
                       inst.operand(static_cast<unsigned>(ii->data_operand)));
          }
          if (ii->mask_operand >= 0 &&
              static_cast<unsigned>(ii->mask_operand) < inst.num_operands()) {
            // A mask lane is active iff its MSB is set; the other bits of
            // the lane are architecturally ignored — prime dead-bit source.
            const Value* mask_op =
                inst.operand(static_cast<unsigned>(ii->mask_operand));
            const unsigned bits = mask_op->type().element_bits();
            const std::uint64_t msb = std::uint64_t{1} << (bits - 1);
            for (unsigned l = 0; l < mask_op->type().lanes(); ++l) {
              add_demand(next, mask_op, l, msb);
            }
          }
          return;
        }
        if (ii && ii->id == ir::IntrinsicId::MoveMask) {
          // Result bit i is lane i's sign bit; only demanded lanes' MSBs
          // matter.
          const Value* src = inst.operand(0);
          const unsigned bits = src->type().element_bits();
          const std::uint64_t msb = std::uint64_t{1} << (bits - 1);
          const std::uint64_t d = current_demand(inst, 0);
          for (unsigned l = 0; l < src->type().lanes(); ++l) {
            if ((d >> l) & 1) add_demand(next, src, l, msb);
          }
          return;
        }
        if (ii && is_math_intrinsic(ii->id)) {
          // Elementwise fp: a demanded result lane demands the full
          // operand lanes (no bitwise structure through transcendentals).
          for (unsigned l = 0; l < lanes; ++l) {
            if (current_demand(inst, l) == 0) continue;
            for (const Value* operand : inst.operands()) {
              const unsigned ol = operand->type().is_scalar() ? 0 : l;
              add_demand(next, operand, ol,
                         element_width_mask(operand->type().element_bits()));
            }
          }
          return;
        }
        // Unknown / runtime / defined callee: everything escapes.
        for (const Value* operand : inst.operands()) {
          demand_all(next, operand);
        }
        return;
      }
      case Opcode::GetElementPtr:
        if (demand_any()) {
          for (const Value* operand : inst.operands()) {
            demand_all(next, operand);
          }
        }
        return;

      // ---- pure value-producing ops: driven by own demand ------------
      case Opcode::And:
      case Opcode::Or: {
        for (unsigned l = 0; l < lanes; ++l) {
          const std::uint64_t d = current_demand(inst, l);
          if (d == 0) continue;
          const LaneBits ka = known_of(inst.operand(0), l);
          const LaneBits kb = known_of(inst.operand(1), l);
          if (inst.opcode() == Opcode::And) {
            // Where the other side is known zero the result bit is fixed.
            add_demand(next, inst.operand(0), l, d & ~kb.zeros);
            add_demand(next, inst.operand(1), l, d & ~ka.zeros);
          } else {
            add_demand(next, inst.operand(0), l, d & ~kb.ones);
            add_demand(next, inst.operand(1), l, d & ~ka.ones);
          }
        }
        return;
      }
      case Opcode::Xor:
      case Opcode::Phi: {
        for (unsigned l = 0; l < lanes; ++l) {
          const std::uint64_t d = current_demand(inst, l);
          if (d == 0) continue;
          for (const Value* operand : inst.operands()) {
            add_demand(next, operand, l, d);
          }
        }
        return;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul: {
        for (unsigned l = 0; l < lanes; ++l) {
          const std::uint64_t d = mask_to_msb(current_demand(inst, l));
          if (d == 0) continue;
          add_demand(next, inst.operand(0), l, d);
          add_demand(next, inst.operand(1), l, d);
        }
        return;
      }
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr: {
        const unsigned width = inst.type().element_bits();
        const std::uint64_t sign = std::uint64_t{1} << (width - 1);
        for (unsigned l = 0; l < lanes; ++l) {
          const std::uint64_t d = current_demand(inst, l);
          if (d == 0) continue;
          // Shifts never trap (deterministic overshift), so the amount is
          // demanded only when the result is.
          demand_all_lane(next, inst.operand(1), l);
          std::uint64_t amount = 0;
          const bool known_amount =
              fully_known(inst.operand(1), l, mask, &amount);
          std::uint64_t vd;
          if (known_amount && amount < width) {
            const auto k = static_cast<unsigned>(amount);
            if (inst.opcode() == Opcode::Shl) {
              vd = (d >> k);
            } else {
              vd = (d << k) & mask;
              if (inst.opcode() == Opcode::AShr &&
                  (d & ~(mask >> k)) != 0) {
                vd |= sign;  // top bits replicate the sign
              }
            }
          } else if (known_amount) {
            // Overshift: logical shifts yield 0 (nothing demanded); AShr
            // replicates the sign bit only.
            vd = inst.opcode() == Opcode::AShr && d != 0 ? sign : 0;
          } else {
            vd = inst.opcode() == Opcode::Shl ? mask_to_msb(d)
                                              : mask_from_lsb(d, mask);
            if (inst.opcode() == Opcode::AShr && d != 0) vd |= sign;
          }
          add_demand(next, inst.operand(0), l, vd);
        }
        return;
      }
      case Opcode::Trunc: {
        for (unsigned l = 0; l < lanes; ++l) {
          add_demand(next, inst.operand(0), l, current_demand(inst, l));
        }
        return;
      }
      case Opcode::ZExt: {
        const std::uint64_t src_mask =
            element_width_mask(inst.operand(0)->type().element_bits());
        for (unsigned l = 0; l < lanes; ++l) {
          add_demand(next, inst.operand(0), l,
                     current_demand(inst, l) & src_mask);
        }
        return;
      }
      case Opcode::SExt: {
        const unsigned src_bits = inst.operand(0)->type().element_bits();
        const std::uint64_t src_mask = element_width_mask(src_bits);
        const std::uint64_t sign = std::uint64_t{1} << (src_bits - 1);
        for (unsigned l = 0; l < lanes; ++l) {
          const std::uint64_t d = current_demand(inst, l);
          std::uint64_t od = d & src_mask;
          if (d & ~src_mask) od |= sign;
          add_demand(next, inst.operand(0), l, od);
        }
        return;
      }
      case Opcode::ICmp:
      case Opcode::FCmp: {
        for (unsigned l = 0; l < lanes; ++l) {
          if (current_demand(inst, l) == 0) continue;
          demand_all_lane(next, inst.operand(0), l);
          demand_all_lane(next, inst.operand(1), l);
        }
        return;
      }
      case Opcode::Select: {
        const bool cond_scalar = inst.operand(0)->type().is_scalar();
        for (unsigned l = 0; l < lanes; ++l) {
          const std::uint64_t d = current_demand(inst, l);
          if (d == 0) continue;
          add_demand(next, inst.operand(0), cond_scalar ? 0 : l, 1);
          add_demand(next, inst.operand(1), l, d);
          add_demand(next, inst.operand(2), l, d);
        }
        return;
      }
      case Opcode::ExtractElement: {
        const std::uint64_t d = current_demand(inst, 0);
        const Value* idx = inst.operand(1);
        if (const auto* c = dynamic_cast<const ir::Constant*>(idx)) {
          const std::uint64_t i = c->raw(0);
          if (d != 0 && i < inst.operand(0)->type().lanes()) {
            add_demand(next, inst.operand(0), static_cast<unsigned>(i), d);
          }
        } else {
          // Dynamic index: BadLaneIndex trap makes the index live, and any
          // source lane may be selected.
          demand_all(next, idx);
          if (d != 0) {
            for (unsigned l = 0; l < inst.operand(0)->type().lanes(); ++l) {
              add_demand(next, inst.operand(0), l, d);
            }
          }
        }
        return;
      }
      case Opcode::InsertElement: {
        const Value* idx = inst.operand(2);
        const auto* c = dynamic_cast<const ir::Constant*>(idx);
        if (c) {
          const std::uint64_t i = c->raw(0);
          for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t d = current_demand(inst, l);
            if (d == 0) continue;
            if (l == i) {
              add_demand(next, inst.operand(1), 0, d);
            } else {
              // The inserted lane overwrites the vector lane: the original
              // lane `i` of operand 0 is NOT demanded through this use.
              add_demand(next, inst.operand(0), l, d);
            }
          }
        } else {
          demand_all(next, idx);  // BadLaneIndex trap
          for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t d = current_demand(inst, l);
            if (d == 0) continue;
            add_demand(next, inst.operand(0), l, d);
            add_demand(next, inst.operand(1), 0, d);
          }
        }
        return;
      }
      case Opcode::ShuffleVector: {
        const auto& shuffle = inst.shuffle_mask();
        const unsigned src_lanes = inst.operand(0)->type().lanes();
        for (unsigned l = 0; l < lanes && l < shuffle.size(); ++l) {
          const std::uint64_t d = current_demand(inst, l);
          if (d == 0) continue;
          const int m = shuffle[l];
          if (m < 0) continue;
          if (static_cast<unsigned>(m) < src_lanes) {
            add_demand(next, inst.operand(0), static_cast<unsigned>(m), d);
          } else {
            add_demand(next, inst.operand(1),
                       static_cast<unsigned>(m) - src_lanes, d);
          }
        }
        return;
      }
      case Opcode::Bitcast: {
        if (inst.operand(0)->type().element_bits() ==
                inst.type().element_bits() &&
            inst.operand(0)->type().lanes() == inst.type().lanes()) {
          for (unsigned l = 0; l < lanes; ++l) {
            add_demand(next, inst.operand(0), l, current_demand(inst, l));
          }
        } else if (demand_any()) {
          demand_all(next, inst.operand(0));
        }
        return;
      }
      default: {
        // Fp arithmetic, fp<->int casts, ptr casts: no bitwise structure
        // tracked — a demanded result lane demands the whole operand lane.
        for (unsigned l = 0; l < lanes; ++l) {
          if (current_demand(inst, l) == 0) continue;
          for (const Value* operand : inst.operands()) {
            const unsigned ol =
                operand->type().is_scalar() ? 0 : std::min(
                    l, operand->type().lanes() - 1);
            add_demand(next, operand, ol,
                       element_width_mask(operand->type().element_bits()));
          }
        }
        return;
      }
    }
  }

  void demand_all_lane(DemandMap& next, const Value* v, unsigned lane) {
    const unsigned l = v->type().is_scalar()
                           ? 0
                           : std::min(lane, v->type().lanes() - 1);
    add_demand(next, v, l, element_width_mask(v->type().element_bits()));
  }

  void solve_backward() {
    bool changed = true;
    unsigned pass = 0;
    while (changed && ++pass <= 64) {
      changed = false;
      DemandMap next;
      for (const ir::BasicBlock* block : blocks) {
        for (const auto& inst : *block) contribute(*inst, next);
      }
      for (auto& [value, vi] : result.info_) {
        auto it = next.find(value);
        for (unsigned l = 0; l < vi.demanded.size(); ++l) {
          const std::uint64_t d =
              it == next.end() || l >= it->second.size() ? 0 : it->second[l];
          if (d != vi.demanded[l]) {
            vi.demanded[l] = d;
            changed = true;
          }
        }
      }
    }
    if (changed) {
      // Non-convergence safety net: full demand everywhere (no dead bits).
      for (auto& [value, vi] : result.info_) {
        const std::uint64_t mask =
            element_width_mask(value->type().element_bits());
        std::fill(vi.demanded.begin(), vi.demanded.end(), mask);
      }
    }
  }
};

KnownBitsResult KnownBitsAnalysis::run(const ir::Function& fn,
                                       AnalysisManager& am) {
  KnownBitsResult result;
  if (!fn.is_definition() || fn.num_blocks() == 0) return result;
  const ir::DominatorTree& domtree = am.get<DominatorTreeAnalysis>(fn);
  KnownBitsSolver solver(fn, result, domtree);
  solver.seed();
  solver.solve_forward();
  solver.solve_backward();
  return result;
}

}  // namespace vulfi::analysis
