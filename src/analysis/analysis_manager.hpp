// Per-function analysis caching.
//
// The pass framework's spine: analyses are plain structs exposing
//   struct MyAnalysis {
//     struct Result { ... };
//     static Result run(const ir::Function& fn, AnalysisManager& am);
//   };
// and consumers call am.get<MyAnalysis>(fn). Results are computed once per
// (analysis, function) pair and cached until the function is invalidated —
// the contract every pass that mutates IR must honour by calling
// invalidate(fn) afterwards. run() may itself request other analyses
// through the manager (dependencies), which is safe because
// std::unordered_map never invalidates references on insertion.
#pragma once

#include <memory>
#include <typeindex>
#include <unordered_map>

#include "ir/function.hpp"

namespace vulfi::analysis {

class AnalysisManager {
 public:
  /// The cached result of analysis `A` on `fn`, computing it on first use.
  /// The reference stays valid until `fn` is invalidated.
  template <typename A>
  const typename A::Result& get(const ir::Function& fn) {
    auto& slot = cache_[&fn][std::type_index(typeid(A))];
    if (!slot.held) {
      // Two-step: run() may recursively fill other slots of this map.
      auto result = std::make_shared<typename A::Result>(A::run(fn, *this));
      cache_[&fn][std::type_index(typeid(A))].held = std::move(result);
      return *static_cast<const typename A::Result*>(
          cache_[&fn][std::type_index(typeid(A))].held.get());
    }
    return *static_cast<const typename A::Result*>(slot.held.get());
  }

  /// Drops every cached result for `fn`. Call after mutating the function.
  void invalidate(const ir::Function& fn) { cache_.erase(&fn); }

  /// Drops everything (e.g. after a module-wide transformation).
  void invalidate_all() { cache_.clear(); }

  /// Number of live (function, analysis) cache entries — test hook.
  std::size_t cached_entries() const {
    std::size_t n = 0;
    for (const auto& [fn, slots] : cache_) n += slots.size();
    return n;
  }

 private:
  struct Slot {
    std::shared_ptr<void> held;
  };
  std::unordered_map<const ir::Function*,
                     std::unordered_map<std::type_index, Slot>>
      cache_;
};

}  // namespace vulfi::analysis
