#include "analysis/classify.hpp"

#include "analysis/slicing.hpp"
#include "ir/function.hpp"

namespace vulfi::analysis {

const char* category_name(FaultSiteCategory category) {
  switch (category) {
    case FaultSiteCategory::PureData: return "pure-data";
    case FaultSiteCategory::Control: return "control";
    case FaultSiteCategory::Address: return "address";
  }
  return "?";
}

namespace {

const ir::Function* owning_function(const ir::Value& value) {
  if (const auto* inst = dynamic_cast<const ir::Instruction*>(&value)) {
    return inst->function();
  }
  if (const auto* arg = dynamic_cast<const ir::Argument*>(&value)) {
    return arg->parent();
  }
  return nullptr;
}

/// Is `value` used as the pointer operand of any memory operation? Exact
/// per-edge check over the value's own use list.
bool feeds_pointer_operand(const ir::Value& value) {
  for (const ir::Instruction* user : value.users()) {
    for (unsigned i = 0; i < user->num_operands(); ++i) {
      if (user->operand(i) == &value &&
          is_pointer_operand_position(*user, i)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

SiteClass classify_value(const ir::Value& value, AddressRule rule,
                         AnalysisManager& am) {
  const ir::Function* fn = owning_function(value);
  if (fn != nullptr && fn->is_definition()) {
    return am.get<SliceAnalysis>(*fn).classify(&value, rule);
  }
  return classify_value(value, rule);
}

SiteClass classify_value(const ir::Value& value, AddressRule rule) {
  SiteClass cls;
  const auto slice = forward_slice(value);
  for (const ir::Instruction* inst : slice) {
    if (inst->opcode() == ir::Opcode::CondBr) cls.control = true;
    if (inst->opcode() == ir::Opcode::GetElementPtr) cls.address = true;
    if (cls.control && cls.address) return cls;
  }
  if (rule == AddressRule::GepOrMemOperand && !cls.address) {
    // Corrupted data reaches a pointer operand iff the root or a corrupted
    // slice value is used in a pointer position — an exact statement about
    // individual def-use edges.
    if (feeds_pointer_operand(value)) {
      cls.address = true;
    } else {
      for (const ir::Instruction* inst : slice) {
        if (!inst->type().is_void() && feeds_pointer_operand(*inst)) {
          cls.address = true;
          break;
        }
      }
    }
  }
  return cls;
}

bool is_fault_site_instruction(const ir::Instruction& inst) {
  switch (inst.opcode()) {
    case ir::Opcode::Phi:
      // Phi pseudo-moves are not instrumented (the producing instructions
      // on every incoming path already are); see DESIGN.md.
      return false;
    case ir::Opcode::Store:
      return inst.operand(0)->type().is_integer() ||
             inst.operand(0)->type().is_float();
    case ir::Opcode::Call: {
      const ir::Function* callee = inst.callee();
      if (callee->kind() == ir::FunctionKind::Runtime) return false;
      if (callee->intrinsic_info().id == ir::IntrinsicId::MaskStore) {
        const int data = callee->intrinsic_info().data_operand;
        const ir::Type data_type = inst.operand(static_cast<unsigned>(data))->type();
        return data_type.is_integer() || data_type.is_float();
      }
      return inst.type().is_integer() || inst.type().is_float();
    }
    default:
      return inst.type().is_integer() || inst.type().is_float();
  }
}

}  // namespace vulfi::analysis
