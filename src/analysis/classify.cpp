#include "analysis/classify.hpp"

#include "analysis/slicing.hpp"
#include "ir/function.hpp"

namespace vulfi::analysis {

const char* category_name(FaultSiteCategory category) {
  switch (category) {
    case FaultSiteCategory::PureData: return "pure-data";
    case FaultSiteCategory::Control: return "control";
    case FaultSiteCategory::Address: return "address";
  }
  return "?";
}

namespace {

bool is_control_flow(const ir::Instruction& inst) {
  // Only conditional branches consume a value that steers control; an
  // unconditional br has no operands and can never appear in a slice.
  return inst.opcode() == ir::Opcode::CondBr;
}

bool is_address_use(const ir::Instruction& inst, const ir::Value& from,
                    AddressRule rule) {
  if (inst.opcode() == ir::Opcode::GetElementPtr) return true;
  if (rule == AddressRule::GepOnly) return false;
  // Extension: value used directly as the pointer operand of a memory op.
  switch (inst.opcode()) {
    case ir::Opcode::Load:
      return inst.operand(0) == &from;
    case ir::Opcode::Store:
      return inst.operand(1) == &from;
    case ir::Opcode::Call: {
      const ir::IntrinsicInfo& info = inst.callee()->intrinsic_info();
      if (info.id == ir::IntrinsicId::MaskLoad ||
          info.id == ir::IntrinsicId::MaskStore) {
        return inst.num_operands() > 0 && inst.operand(0) == &from;
      }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace

SiteClass classify_value(const ir::Value& value, AddressRule rule) {
  SiteClass cls;
  const auto slice = forward_slice(value);
  for (const ir::Instruction* inst : slice) {
    if (is_control_flow(*inst)) cls.control = true;
    if (!cls.address) {
      if (inst->opcode() == ir::Opcode::GetElementPtr) {
        cls.address = true;
      } else if (rule == AddressRule::GepOrMemOperand) {
        // The direct-operand form needs the producing edge; approximate by
        // checking whether any slice member (or the root) feeds this
        // instruction's pointer operand.
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          const ir::Value* operand = inst->operand(i);
          if ((operand == &value || slice.count(dynamic_cast<const ir::Instruction*>(operand))) &&
              is_address_use(*inst, *operand, rule)) {
            cls.address = true;
            break;
          }
        }
      }
    }
    if (cls.control && cls.address) break;
  }
  return cls;
}

bool is_fault_site_instruction(const ir::Instruction& inst) {
  switch (inst.opcode()) {
    case ir::Opcode::Phi:
      // Phi pseudo-moves are not instrumented (the producing instructions
      // on every incoming path already are); see DESIGN.md.
      return false;
    case ir::Opcode::Store:
      return inst.operand(0)->type().is_integer() ||
             inst.operand(0)->type().is_float();
    case ir::Opcode::Call: {
      const ir::Function* callee = inst.callee();
      if (callee->kind() == ir::FunctionKind::Runtime) return false;
      if (callee->intrinsic_info().id == ir::IntrinsicId::MaskStore) {
        const int data = callee->intrinsic_info().data_operand;
        const ir::Type data_type = inst.operand(static_cast<unsigned>(data))->type();
        return data_type.is_integer() || data_type.is_float();
      }
      return inst.type().is_integer() || inst.type().is_float();
    }
    default:
      return inst.type().is_integer() || inst.type().is_float();
  }
}

}  // namespace vulfi::analysis
