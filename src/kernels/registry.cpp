#include "kernels/benchmark.hpp"
#include "kernels/blackscholes.hpp"
#include "kernels/cg.hpp"
#include "kernels/chebyshev.hpp"
#include "kernels/fluidanimate.hpp"
#include "kernels/jacobi.hpp"
#include "kernels/micro.hpp"
#include "kernels/raytracing.hpp"
#include "kernels/sorting.hpp"
#include "kernels/stencil.hpp"
#include "kernels/swaptions.hpp"

namespace vulfi::kernels {

const std::vector<const Benchmark*>& all_benchmarks() {
  // Table I order.
  static const std::vector<const Benchmark*> instances = {
      &fluidanimate_benchmark(), &swaptions_benchmark(),
      &blackscholes_benchmark(), &sorting_benchmark(),
      &stencil_benchmark(),      &chebyshev_benchmark(),
      &jacobi_benchmark(),       &cg_benchmark(),
      &raytracing_benchmark(),
  };
  return instances;
}

const std::vector<const Benchmark*>& micro_benchmarks() {
  static const std::vector<const Benchmark*> instances = {
      &vector_copy_benchmark(), &dot_product_benchmark(),
      &vector_sum_benchmark()};
  return instances;
}

const Benchmark* find_benchmark(const std::string& name) {
  for (const Benchmark* bench : all_benchmarks()) {
    if (bench->name() == name) return bench;
  }
  for (const Benchmark* bench : micro_benchmarks()) {
    if (bench->name() == name) return bench;
  }
  return nullptr;
}

}  // namespace vulfi::kernels
