// Jacobi iteration for the 2-D Poisson problem (Burkardt SCL port).
// x_new[y][x] = 0.25 * (x[y-1][x] + x[y+1][x] + x[y][x-1] + x[y][x+1]
//                       + h^2 * f[y][x]), swept a fixed number of times
// with ping-pong buffers.
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& jacobi_benchmark();

}  // namespace vulfi::kernels
