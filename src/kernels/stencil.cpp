#include "kernels/stencil.hpp"

#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

constexpr float kCenter = 0.5f;
constexpr float kNeighbour = 0.125f;

struct Shape {
  unsigned width, height, steps;
};

// Table I: 2D array dimension min 16x16, max 64x64. Odd interior widths
// keep the masked partial path live.
constexpr Shape kShapes[] = {{16, 12, 2}, {27, 14, 3}, {33, 18, 4}};

std::vector<float> initial_grid(const Shape& shape, unsigned input) {
  return random_f32(static_cast<std::size_t>(shape.width) * shape.height,
                    0x57E9C11 + input, 0.0f, 4.0f);
}

/// One sweep of the reference stencil: dst interior from src.
void reference_sweep(const Shape& shape, const std::vector<float>& src,
                     std::vector<float>& dst) {
  const unsigned w = shape.width;
  for (unsigned y = 1; y + 1 < shape.height; ++y) {
    for (unsigned x = 1; x + 1 < w; ++x) {
      const std::size_t c = static_cast<std::size_t>(y) * w + x;
      const float sum_lr = src[c - 1] + src[c + 1];
      const float sum_ud = src[c - w] + src[c + w];
      dst[c] = kCenter * src[c] + kNeighbour * (sum_lr + sum_ud);
    }
  }
}

class Stencil final : public Benchmark {
 public:
  std::string name() const override { return "stencil"; }
  std::string suite() const override { return "ISPC"; }
  std::string input_desc() const override {
    return "2D array dimension: 16x12 - 33x18";
  }
  unsigned num_inputs() const override { return 3; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const Shape shape = kShapes[input];
    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("stencil");
    KernelBuilder kb(*spec.module, target, "stencil_ispc",
                     {Type::ptr(), Type::ptr(), Type::i32(), Type::i32(),
                      Type::i32()});
    Value* buf_a = kb.arg(0);
    Value* buf_b = kb.arg(1);
    Value* width = kb.arg(2);
    Value* height = kb.arg(3);
    Value* steps = kb.arg(4);

    ir::IRBuilder& b = kb.b();
    Value* one = b.i32_const(1);
    Value* interior_end = b.sub(width, one, "interior_end");
    Value* c_center = kb.vconst_f32(kCenter);
    Value* c_neigh = kb.vconst_f32(kNeighbour);

    kb.scalar_loop(
        b.i32_const(0), steps, {buf_a, buf_b},
        [&](Value*, const std::vector<Value*>& bufs) -> std::vector<Value*> {
          Value* src = bufs[0];
          Value* dst = bufs[1];
          kb.scalar_loop(
              one, b.sub(height, one, "rows_end"), {},
              [&](Value* y, const std::vector<Value*>&)
                  -> std::vector<Value*> {
                Value* row = b.mul(y, width, "row");
                Value* src_row = b.gep(src, row, 4, "src_row");
                Value* src_up =
                    b.gep(src, b.sub(row, width, "row_up"), 4, "src_up");
                Value* src_down =
                    b.gep(src, b.add(row, width, "row_dn"), 4, "src_dn");
                Value* dst_row = b.gep(dst, row, 4, "dst_row");
                Value* minus_one = b.i32_const(-1);
                kb.foreach_loop(one, interior_end, [&](ForeachCtx& ctx) {
                  Value* center = ctx.load(Type::f32(), src_row);
                  Value* left =
                      ctx.load_offset(Type::f32(), src_row, minus_one);
                  Value* right = ctx.load_offset(Type::f32(), src_row, one);
                  Value* up = ctx.load(Type::f32(), src_up);
                  Value* down = ctx.load(Type::f32(), src_down);
                  Value* sum_lr = ctx.b().fadd(left, right, "sum_lr");
                  Value* sum_ud = ctx.b().fadd(up, down, "sum_ud");
                  Value* out = ctx.b().fadd(
                      ctx.b().fmul(c_center, center, "wc"),
                      ctx.b().fmul(c_neigh,
                                   ctx.b().fadd(sum_lr, sum_ud, "sum4"),
                                   "wn"),
                      "smoothed");
                  ctx.store(out, dst_row);
                });
                return {};
              },
              "rows");
          // Ping-pong for the next timestep.
          return {dst, src};
        },
        "steps");
    kb.finish();
    spec.entry = spec.module->find_function("stencil_ispc");

    const std::vector<float> grid = initial_grid(shape, input);
    const std::uint64_t a_base = alloc_f32(spec.arena, "grid_a", grid);
    const std::uint64_t b_base =
        alloc_f32(spec.arena, "grid_b", grid);  // boundaries preserved
    spec.args = {interp::RtVal::ptr(a_base), interp::RtVal::ptr(b_base),
                 interp::RtVal::i32(static_cast<std::int32_t>(shape.width)),
                 interp::RtVal::i32(static_cast<std::int32_t>(shape.height)),
                 interp::RtVal::i32(static_cast<std::int32_t>(shape.steps))};
    // After `steps` sweeps the freshest data sits in grid_b for odd step
    // counts and grid_a for even; compare both (the stale one is still
    // deterministic).
    spec.output_regions = {"grid_a", "grid_b"};
    return spec;
  }

  std::vector<RegionRef> reference(const Target&,
                                   unsigned input) const override {
    const Shape shape = kShapes[input];
    std::vector<float> a = initial_grid(shape, input);
    std::vector<float> b = a;
    std::vector<float>* src = &a;
    std::vector<float>* dst = &b;
    for (unsigned step = 0; step < shape.steps; ++step) {
      reference_sweep(shape, *src, *dst);
      std::swap(src, dst);
    }
    RegionRef ref_a{.region = "grid_a", .f32 = a, .i32 = {}};
    RegionRef ref_b{.region = "grid_b", .f32 = b, .i32 = {}};
    return {ref_a, ref_b};
  }
};

}  // namespace

const Benchmark& stencil_benchmark() {
  static const Stencil instance;
  return instance;
}

}  // namespace vulfi::kernels
