// Black–Scholes European option pricing (ISPC example suite).
//
// Closed-form call pricing over arrays of options: heavy straight-line
// floating-point math (log/exp/sqrt, cumulative-normal polynomial) with
// almost no address or control traffic from data — the paper reports it
// among the highest SDC rates (Figure 11).
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& blackscholes_benchmark();

/// Scalar reference for one option (float precision, same operation order
/// as the kernel). Exposed for unit tests.
float blackscholes_call_ref(float s, float k, float t, float r, float v);

}  // namespace vulfi::kernels
