#include "kernels/chebyshev.hpp"

#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

struct Config {
  unsigned points, degree;
};

// Table I: degree in [1, 256]; scaled for the interpreter.
constexpr Config kConfigs[] = {{21, 8}, {34, 24}, {45, 64}};

std::vector<float> sample_points(const Config& config, unsigned input) {
  return random_f32(config.points, 0xC4EB + input, -1.0f, 1.0f);
}

std::vector<float> coefficients(const Config& config, unsigned input) {
  return random_f32(config.degree + 1, 0xC0EF + input, -0.5f, 0.5f);
}

class Chebyshev final : public Benchmark {
 public:
  std::string name() const override { return "chebyshev"; }
  std::string suite() const override { return "SCL"; }
  std::string input_desc() const override { return "Degree: [8, 64]"; }
  unsigned num_inputs() const override { return 3; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const Config config = kConfigs[input];
    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("chebyshev");
    KernelBuilder kb(*spec.module, target, "chebyshev_ispc",
                     {Type::ptr(), Type::ptr(), Type::ptr(), Type::i32(),
                      Type::i32()});
    Value* x_ptr = kb.arg(0);
    Value* coef_ptr = kb.arg(1);
    Value* out_ptr = kb.arg(2);
    Value* points = kb.arg(3);
    Value* degree = kb.arg(4);

    ir::IRBuilder& b = kb.b();
    kb.foreach_loop(b.i32_const(0), points, [&](ForeachCtx& ctx) {
      ir::IRBuilder& bb = ctx.b();
      Value* x = ctx.load(Type::f32(), x_ptr);
      Value* two_x = bb.fmul(kb.vconst_f32(2.0f), x, "two_x");
      // T0 = 1, T1 = x; acc = c0*T0 + c1*T1.
      Value* c0 = bb.load(Type::f32(), coef_ptr, "c0");
      Value* c0_b = kb.uniform(c0, "c0_broadcast");
      Value* c1 = bb.load(Type::f32(), bb.gep(coef_ptr, bb.i32_const(1), 4,
                                              "c1_addr"),
                          "c1");
      Value* c1_b = kb.uniform(c1, "c1_broadcast");
      Value* acc0 = bb.fadd(c0_b, bb.fmul(c1_b, x, "c1x"), "acc0");

      // Recurrence over k = 2..degree (inclusive).
      auto finals = kb.scalar_loop(
          bb.i32_const(2), bb.add(degree, bb.i32_const(1), "deg_end"),
          {kb.vconst_f32(1.0f), x, acc0},
          [&](Value* k, const std::vector<Value*>& carried)
              -> std::vector<Value*> {
            Value* t_km1 = carried[0];
            Value* t_k = carried[1];
            Value* acc = carried[2];
            Value* t_k1 = bb.fsub(bb.fmul(two_x, t_k, "txk"), t_km1, "t_k1");
            // Load the k-th coefficient (uniform) and broadcast it.
            Value* ck_addr = bb.gep(coef_ptr, k, 4, "ck_addr");
            Value* ck = bb.load(Type::f32(), ck_addr, "ck");
            Value* ck_b = kb.uniform(ck, "ck_broadcast");
            Value* new_acc =
                bb.fadd(acc, bb.fmul(ck_b, t_k1, "ckt"), "acc_next");
            return {t_k, t_k1, new_acc};
          },
          "degree");
      ctx.store(finals[2], out_ptr);
    });
    kb.finish();
    spec.entry = spec.module->find_function("chebyshev_ispc");

    const std::uint64_t x_base =
        alloc_f32(spec.arena, "x", sample_points(config, input));
    const std::uint64_t c_base =
        alloc_f32(spec.arena, "coef", coefficients(config, input));
    const std::uint64_t out_base =
        alloc_f32_zero(spec.arena, "series", config.points);
    spec.args = {interp::RtVal::ptr(x_base), interp::RtVal::ptr(c_base),
                 interp::RtVal::ptr(out_base),
                 interp::RtVal::i32(static_cast<std::int32_t>(config.points)),
                 interp::RtVal::i32(static_cast<std::int32_t>(config.degree))};
    spec.output_regions = {"series"};
    return spec;
  }

  std::vector<RegionRef> reference(const Target&,
                                   unsigned input) const override {
    const Config config = kConfigs[input];
    const std::vector<float> xs = sample_points(config, input);
    const std::vector<float> cs = coefficients(config, input);
    RegionRef ref;
    ref.region = "series";
    ref.f32.reserve(xs.size());
    for (float x : xs) {
      const float two_x = 2.0f * x;
      float t_km1 = 1.0f;
      float t_k = x;
      float acc = cs[0] + cs[1] * x;
      for (unsigned k = 2; k <= config.degree; ++k) {
        const float t_k1 = two_x * t_k - t_km1;
        acc = acc + cs[k] * t_k1;
        t_km1 = t_k;
        t_k = t_k1;
      }
      ref.f32.push_back(acc);
    }
    return {ref};
  }
};

}  // namespace

const Benchmark& chebyshev_benchmark() {
  static const Chebyshev instance;
  return instance;
}

}  // namespace vulfi::kernels
