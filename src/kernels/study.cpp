#include "kernels/study.hpp"

#include <memory>

#include "detect/detector_runtime.hpp"
#include "detect/foreach_detector.hpp"
#include "spmd/target.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

std::vector<StudyCell> run_resiliency_study(
    const StudyConfig& config,
    const std::function<void(unsigned, unsigned)>& progress) {
  std::vector<const Benchmark*> benches;
  if (config.benchmarks.empty()) {
    benches = all_benchmarks();
  } else {
    for (const std::string& name : config.benchmarks) {
      const Benchmark* bench = find_benchmark(name);
      VULFI_ASSERT(bench != nullptr, "study: unknown benchmark name");
      benches.push_back(bench);
    }
  }

  const unsigned total = static_cast<unsigned>(
      benches.size() * config.isas.size() * config.categories.size());
  unsigned done = 0;

  std::vector<StudyCell> cells;
  for (const Benchmark* bench : benches) {
    for (ir::Isa isa : config.isas) {
      const spmd::Target target =
          isa == ir::Isa::AVX ? spmd::Target::avx() : spmd::Target::sse4();
      for (analysis::FaultSiteCategory category : config.categories) {
        // One engine per predefined input; experiments draw uniformly
        // (paper §IV-B).
        std::vector<std::unique_ptr<InjectionEngine>> engines;
        std::vector<InjectionEngine*> pointers;
        for (unsigned input = 0; input < bench->num_inputs(); ++input) {
          RunSpec spec = bench->build(target, input);
          if (config.with_detectors) {
            detect::insert_foreach_detectors(*spec.module);
          }
          engines.push_back(std::make_unique<InjectionEngine>(
              std::move(spec), category, config.engine));
          if (config.with_detectors) {
            engines.back()->setup_runtime(
                [](interp::RuntimeEnv& env, interp::DetectionLog& log) {
                  detect::attach_detector_runtime(env, log);
                });
          }
          pointers.push_back(engines.back().get());
        }

        CampaignConfig campaign = config.campaign;
        // Decorrelate cells deterministically.
        campaign.seed = config.campaign.seed ^
                        (std::hash<std::string>{}(bench->name()) +
                         static_cast<std::uint64_t>(category) * 131 +
                         (isa == ir::Isa::AVX ? 0 : 7));
        StudyCell cell;
        cell.benchmark = bench->name();
        cell.category = category;
        cell.isa = isa;
        cell.result = run_campaigns(pointers, campaign);
        cells.push_back(std::move(cell));
        done += 1;
        if (progress) progress(done, total);
      }
    }
  }
  return cells;
}

}  // namespace vulfi::kernels
