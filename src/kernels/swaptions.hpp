// Monte-Carlo swaption pricing (PARVEC's vectorized swaptions, HJM-style
// simulation reduced to a single-factor short-rate walk). Paths are
// vectorized across lanes; each lane drives its own counter-based LCG
// random stream in vector integer registers. The paper reports swaptions
// as one of the two most resilient benchmarks (lowest SDC, Figure 11) —
// averaging over many Monte-Carlo paths absorbs most single-bit upsets.
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& swaptions_benchmark();

}  // namespace vulfi::kernels
