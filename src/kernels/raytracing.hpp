// Sphere ray tracer (ISPC example suite's rt workload, reduced to a
// procedural sphere scene). One primary ray per pixel, vectorized across
// the x dimension; nearest-hit search over the sphere list with masked
// updates; simple depth-based shading written to an image buffer. The
// three predefined inputs stand in for the paper's Sponza/Teapot/Cornell
// camera inputs.
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& raytracing_benchmark();

}  // namespace vulfi::kernels
