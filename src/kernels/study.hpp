// High-level resiliency-study orchestration: the paper's §IV methodology
// (benchmark × fault-site category × ISA matrix of statistically
// controlled campaigns, optionally with synthesized detectors) as one
// library call. The Figure-11/12 bench binaries and the CLI `study`
// subcommand are thin renderers over this.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "ir/intrinsics.hpp"
#include "kernels/benchmark.hpp"
#include "vulfi/campaign.hpp"

namespace vulfi::kernels {

struct StudyConfig {
  /// Benchmark names; empty = all nine Table-I benchmarks.
  std::vector<std::string> benchmarks;
  /// ISAs to evaluate (paper: both).
  std::vector<ir::Isa> isas = {ir::Isa::AVX, ir::Isa::SSE4};
  /// Categories to evaluate (paper: all three).
  std::vector<analysis::FaultSiteCategory> categories = {
      analysis::FaultSiteCategory::PureData,
      analysis::FaultSiteCategory::Control,
      analysis::FaultSiteCategory::Address,
  };
  /// Campaign statistics (experiments per campaign, stop rule, ...).
  CampaignConfig campaign;
  /// Insert the §III foreach-invariant detectors before instrumenting
  /// and report detection rates.
  bool with_detectors = false;
  /// Engine knobs (mask awareness, budget multiplier, address rule).
  EngineOptions engine;
};

struct StudyCell {
  std::string benchmark;
  analysis::FaultSiteCategory category;
  ir::Isa isa;
  CampaignResult result;
};

/// Runs the full matrix. `progress` (optional) is invoked after each
/// completed cell with (done, total).
std::vector<StudyCell> run_resiliency_study(
    const StudyConfig& config,
    const std::function<void(unsigned, unsigned)>& progress = {});

}  // namespace vulfi::kernels
