#include "kernels/cg.hpp"

#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

struct Shape {
  unsigned width, height, iterations;
};

// Table I: 2D array dimension 32x32 - 256x256; scaled for the interpreter.
constexpr Shape kShapes[] = {{10, 8, 3}, {14, 10, 4}, {18, 12, 5}};

std::vector<float> rhs_vector(const Shape& shape, unsigned input) {
  const unsigned w = shape.width, h = shape.height;
  std::vector<float> b(static_cast<std::size_t>(w) * h, 0.0f);
  const std::vector<float> interior = random_f32(
      static_cast<std::size_t>(w - 2) * (h - 2), 0xC6 + input, -1.0f, 1.0f);
  std::size_t k = 0;
  for (unsigned y = 1; y + 1 < h; ++y) {
    for (unsigned x = 1; x + 1 < w; ++x) {
      b[static_cast<std::size_t>(y) * w + x] = interior[k++];
    }
  }
  return b;
}

/// Lane-partial dot product mirroring the kernel's reduction order.
float dot_ref(const std::vector<float>& a, const std::vector<float>& b,
              unsigned vl) {
  std::vector<float> partial(vl, 0.0f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    partial[i % vl] += a[i] * b[i];
  }
  float sum = partial[0];
  for (unsigned lane = 1; lane < vl; ++lane) sum += partial[lane];
  return sum;
}

class ConjugateGradient final : public Benchmark {
 public:
  std::string name() const override { return "cg"; }
  std::string suite() const override { return "SCL"; }
  std::string input_desc() const override {
    return "2D array dimension: 10x8 - 18x12";
  }
  unsigned num_inputs() const override { return 3; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const Shape shape = kShapes[input];
    const unsigned n = shape.width * shape.height;

    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("cg");
    KernelBuilder kb(*spec.module, target, "cg_ispc",
                     {Type::ptr(), Type::ptr(), Type::ptr(), Type::ptr(),
                      Type::i32(), Type::i32(), Type::i32()});
    Value* x_ptr = kb.arg(0);
    Value* r_ptr = kb.arg(1);
    Value* p_ptr = kb.arg(2);
    Value* q_ptr = kb.arg(3);
    Value* width = kb.arg(4);
    Value* height = kb.arg(5);
    Value* iterations = kb.arg(6);

    ir::IRBuilder& b = kb.b();
    Value* one = b.i32_const(1);
    Value* total = b.mul(width, height, "n_cells");
    Value* interior_end = b.sub(width, one, "interior_end");
    Value* four = kb.vconst_f32(4.0f);

    auto dot = [&](Value* a_ptr, Value* b_ptr) {
      auto finals = kb.foreach_reduce(
          b.i32_const(0), total, {kb.vconst_f32(0.0f)},
          [&](ForeachCtx& ctx, const std::vector<Value*>& carried)
              -> std::vector<Value*> {
            Value* av = ctx.load(Type::f32(), a_ptr);
            Value* bv = ctx.load(Type::f32(), b_ptr);
            return {ctx.b().fadd(carried[0],
                                 ctx.b().fmul(av, bv, "dot_term"),
                                 "dot_acc")};
          });
      return kb.reduce_add(finals[0]);
    };

    Value* rs0 = dot(r_ptr, r_ptr);
    kb.scalar_loop(
        b.i32_const(0), iterations, {rs0},
        [&](Value*, const std::vector<Value*>& carried)
            -> std::vector<Value*> {
          Value* rsold = carried[0];

          // q = A p over the interior (5-point Poisson stencil).
          kb.scalar_loop(
              one, b.sub(height, one, "rows_end"), {},
              [&](Value* y, const std::vector<Value*>&)
                  -> std::vector<Value*> {
                Value* row = b.mul(y, width, "row");
                Value* p_row = b.gep(p_ptr, row, 4, "p_row");
                Value* p_up =
                    b.gep(p_ptr, b.sub(row, width, "row_up"), 4, "p_up");
                Value* p_down =
                    b.gep(p_ptr, b.add(row, width, "row_dn"), 4, "p_dn");
                Value* q_row = b.gep(q_ptr, row, 4, "q_row");
                Value* minus_one = b.i32_const(-1);
                kb.foreach_loop(one, interior_end, [&](ForeachCtx& ctx) {
                  ir::IRBuilder& bb = ctx.b();
                  Value* pc = ctx.load(Type::f32(), p_row);
                  Value* pl =
                      ctx.load_offset(Type::f32(), p_row, minus_one);
                  Value* pr = ctx.load_offset(Type::f32(), p_row, one);
                  Value* pu = ctx.load(Type::f32(), p_up);
                  Value* pd = ctx.load(Type::f32(), p_down);
                  Value* neigh = bb.fadd(bb.fadd(pl, pr, "plr"),
                                         bb.fadd(pu, pd, "pud"), "pn");
                  Value* q = bb.fsub(bb.fmul(four, pc, "p4"), neigh, "qv");
                  ctx.store(q, q_row);
                });
                return {};
              },
              "apply_rows");

          Value* pq = dot(p_ptr, q_ptr);
          Value* alpha = b.fdiv(rsold, pq, "alpha");
          Value* alpha_b = kb.uniform(alpha, "alpha_broadcast");

          // x += alpha p; r -= alpha q.
          kb.foreach_loop(b.i32_const(0), total, [&](ForeachCtx& ctx) {
            ir::IRBuilder& bb = ctx.b();
            Value* xv = ctx.load(Type::f32(), x_ptr);
            Value* pv = ctx.load(Type::f32(), p_ptr);
            Value* rv = ctx.load(Type::f32(), r_ptr);
            Value* qv = ctx.load(Type::f32(), q_ptr);
            ctx.store(bb.fadd(xv, bb.fmul(alpha_b, pv, "ap"), "x_next"),
                      x_ptr);
            ctx.store(bb.fsub(rv, bb.fmul(alpha_b, qv, "aq"), "r_next"),
                      r_ptr);
          });

          Value* rsnew = dot(r_ptr, r_ptr);
          Value* beta = b.fdiv(rsnew, rsold, "beta");
          Value* beta_b = kb.uniform(beta, "beta_broadcast");

          // p = r + beta p.
          kb.foreach_loop(b.i32_const(0), total, [&](ForeachCtx& ctx) {
            ir::IRBuilder& bb = ctx.b();
            Value* rv = ctx.load(Type::f32(), r_ptr);
            Value* pv = ctx.load(Type::f32(), p_ptr);
            ctx.store(bb.fadd(rv, bb.fmul(beta_b, pv, "bp"), "p_next"),
                      p_ptr);
          });
          return {rsnew};
        },
        "cg_iters");
    kb.finish();
    spec.entry = spec.module->find_function("cg_ispc");

    const std::vector<float> rhs = rhs_vector(shape, input);
    const std::uint64_t x_base =
        alloc_f32(spec.arena, "x", std::vector<float>(n, 0.0f));
    const std::uint64_t r_base = alloc_f32(spec.arena, "r", rhs);
    const std::uint64_t p_base = alloc_f32(spec.arena, "p", rhs);
    const std::uint64_t q_base =
        alloc_f32(spec.arena, "q", std::vector<float>(n, 0.0f));
    spec.args = {interp::RtVal::ptr(x_base), interp::RtVal::ptr(r_base),
                 interp::RtVal::ptr(p_base), interp::RtVal::ptr(q_base),
                 interp::RtVal::i32(static_cast<std::int32_t>(shape.width)),
                 interp::RtVal::i32(static_cast<std::int32_t>(shape.height)),
                 interp::RtVal::i32(
                     static_cast<std::int32_t>(shape.iterations))};
    spec.output_regions = {"x", "r"};
    // The SCL CG program reports its solution and residual in fixed
    // decimal text; compare like diffing that printed output. This is
    // what makes CG one of the paper's two most resilient benchmarks —
    // low-mantissa perturbations vanish in the printed digits.
    spec.f32_compare_decimals = 3;
    return spec;
  }

  std::vector<RegionRef> reference(const Target& target,
                                   unsigned input) const override {
    const Shape shape = kShapes[input];
    const unsigned w = shape.width, h = shape.height;
    const unsigned n = w * h;
    const unsigned vl = target.vector_width;
    const std::vector<float> rhs = rhs_vector(shape, input);

    std::vector<float> x(n, 0.0f);
    std::vector<float> r = rhs;
    std::vector<float> p = rhs;
    std::vector<float> q(n, 0.0f);

    float rsold = dot_ref(r, r, vl);
    for (unsigned iter = 0; iter < shape.iterations; ++iter) {
      for (unsigned y = 1; y + 1 < h; ++y) {
        for (unsigned cx = 1; cx + 1 < w; ++cx) {
          const std::size_t c = static_cast<std::size_t>(y) * w + cx;
          const float neigh = (p[c - 1] + p[c + 1]) + (p[c - w] + p[c + w]);
          q[c] = 4.0f * p[c] - neigh;
        }
      }
      const float pq = dot_ref(p, q, vl);
      const float alpha = rsold / pq;
      for (unsigned i = 0; i < n; ++i) {
        x[i] = x[i] + alpha * p[i];
        r[i] = r[i] - alpha * q[i];
      }
      const float rsnew = dot_ref(r, r, vl);
      const float beta = rsnew / rsold;
      for (unsigned i = 0; i < n; ++i) {
        p[i] = r[i] + beta * p[i];
      }
      rsold = rsnew;
    }
    RegionRef ref_x{.region = "x", .f32 = x, .i32 = {}};
    RegionRef ref_r{.region = "r", .f32 = r, .i32 = {}};
    return {ref_x, ref_r};
  }
};

}  // namespace

const Benchmark& cg_benchmark() {
  static const ConjugateGradient instance;
  return instance;
}

}  // namespace vulfi::kernels
