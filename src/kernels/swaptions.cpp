#include "kernels/swaptions.hpp"

#include <cmath>
#include <cstdint>

#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::IntrinsicId;
using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

constexpr float kRate0 = 0.02f;
constexpr float kDt = 0.05f;
constexpr float kInv23 = 1.0f / 8388608.0f;  // 2^-23

struct Config {
  unsigned swaptions, paths, steps;
};

// Table I: swaptions [16, 64], simulations [100, 200]; scaled for the
// interpreter.
constexpr Config kConfigs[] = {{4, 18, 8}, {6, 26, 12}, {8, 34, 16}};

std::vector<float> strikes(const Config& config, unsigned input) {
  return random_f32(config.swaptions, 0x5A47 + input, 0.01f, 0.05f);
}

std::vector<float> vols(const Config& config, unsigned input) {
  return random_f32(config.swaptions, 0x5A48 + input, 0.1f, 0.4f);
}

class Swaptions final : public Benchmark {
 public:
  std::string name() const override { return "swaptions"; }
  std::string suite() const override { return "Parvec"; }
  std::string language() const override { return "C++"; }
  std::string input_desc() const override {
    return "Swaptions: [4, 8]; Simulations: [18, 34]";
  }
  unsigned num_inputs() const override { return 3; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const Config config = kConfigs[input];
    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("swaptions");
    KernelBuilder kb(*spec.module, target, "swaptions_ispc",
                     {Type::ptr(), Type::ptr(), Type::ptr(), Type::i32(),
                      Type::i32(), Type::i32()});
    Value* strike_ptr = kb.arg(0);
    Value* vol_ptr = kb.arg(1);
    Value* price_ptr = kb.arg(2);
    Value* num_swaptions = kb.arg(3);
    Value* num_paths = kb.arg(4);
    Value* num_steps = kb.arg(5);

    ir::IRBuilder& b = kb.b();
    const Type vi32 = Type::vector(ir::TypeKind::I32, kb.vl());
    Value* inv_paths =
        b.fdiv(b.f32_const(1.0f),
               b.sitofp(num_paths, Type::f32(), "paths_f"), "inv_paths");

    kb.scalar_loop(
        b.i32_const(0), num_swaptions, {},
        [&](Value* s, const std::vector<Value*>&) -> std::vector<Value*> {
          Value* strike = b.load(
              Type::f32(), b.gep(strike_ptr, s, 4, "strike_a"), "strike");
          Value* strike_b = kb.uniform(strike, "strike_broadcast");
          Value* vol =
              b.load(Type::f32(), b.gep(vol_ptr, s, 4, "vol_a"), "vol");
          Value* vol_b = kb.uniform(vol, "vol_broadcast");
          // Per-swaption stream salt.
          Value* salt = b.add(b.mul(s, b.i32_const(10007), "s1e4"),
                              b.i32_const(1), "salt");
          Value* salt_b = kb.uniform(salt, "salt_broadcast");

          auto finals = kb.foreach_reduce(
              b.i32_const(0), num_paths, {kb.vconst_f32(0.0f)},
              [&](ForeachCtx& ctx, const std::vector<Value*>& carried)
                  -> std::vector<Value*> {
                ir::IRBuilder& bb = ctx.b();
                // Counter-based LCG seed: each lane owns its path stream.
                Value* seed0 = bb.add(
                    bb.mul(ctx.index(),
                           kb.module().const_int(vi32, 2654435761LL),
                           "seed_mul"),
                    salt_b, "seed0");

                auto walk = kb.scalar_loop(
                    bb.i32_const(0), num_steps,
                    {seed0, kb.vconst_f32(kRate0), kb.vconst_f32(1.0f)},
                    [&](Value*, const std::vector<Value*>& state)
                        -> std::vector<Value*> {
                      Value* seed = bb.add(
                          bb.mul(state[0],
                                 kb.module().const_int(vi32, 1664525),
                                 "lcg_mul"),
                          kb.module().const_int(vi32, 1013904223),
                          "lcg_add");
                      Value* bits = bb.lshr(
                          seed, kb.module().const_int(vi32, 9), "u_bits");
                      Value* u = bb.fmul(
                          bb.uitofp(bits,
                                    Type::vector(ir::TypeKind::F32, kb.vl()),
                                    "u_f"),
                          kb.vconst_f32(kInv23), "u");
                      Value* shock = bb.fmul(
                          bb.fmul(vol_b,
                                  bb.fsub(u, kb.vconst_f32(0.5f), "u_c"),
                                  "vshock"),
                          kb.vconst_f32(kDt), "shock");
                      Value* rate = bb.fadd(state[1], shock, "rate");
                      Value* disc = bb.fmul(
                          state[2],
                          bb.fsub(kb.vconst_f32(1.0f),
                                  bb.fmul(rate, kb.vconst_f32(kDt),
                                          "rate_dt"),
                                  "disc_step"),
                          "disc");
                      return {seed, rate, disc};
                    },
                    "steps");
                Value* payoff = bb.fmul(
                    kb.intrinsic_call(
                        IntrinsicId::Fmax,
                        bb.fsub(walk[1], strike_b, "moneyness"),
                        kb.vconst_f32(0.0f)),
                    walk[2], "payoff");
                return {bb.fadd(carried[0], payoff, "acc")};
              });
          Value* total = kb.reduce_add(finals[0]);
          Value* price = b.fmul(total, inv_paths, "price");
          b.store(price, b.gep(price_ptr, s, 4, "price_a"));
          return {};
        },
        "swaptions");
    kb.finish();
    spec.entry = spec.module->find_function("swaptions_ispc");

    const std::uint64_t strike_base =
        alloc_f32(spec.arena, "strike", strikes(config, input));
    const std::uint64_t vol_base =
        alloc_f32(spec.arena, "vol", vols(config, input));
    const std::uint64_t price_base =
        alloc_f32_zero(spec.arena, "price", config.swaptions);
    spec.args = {
        interp::RtVal::ptr(strike_base), interp::RtVal::ptr(vol_base),
        interp::RtVal::ptr(price_base),
        interp::RtVal::i32(static_cast<std::int32_t>(config.swaptions)),
        interp::RtVal::i32(static_cast<std::int32_t>(config.paths)),
        interp::RtVal::i32(static_cast<std::int32_t>(config.steps))};
    spec.output_regions = {"price"};
    // PARSEC swaptions prints prices in fixed decimal text.
    spec.f32_compare_decimals = 4;
    return spec;
  }

  std::vector<RegionRef> reference(const Target& target,
                                   unsigned input) const override {
    const Config config = kConfigs[input];
    const std::vector<float> ks = strikes(config, input);
    const std::vector<float> vs = vols(config, input);
    const unsigned vl = target.vector_width;
    RegionRef ref;
    ref.region = "price";
    for (unsigned s = 0; s < config.swaptions; ++s) {
      const std::uint32_t salt =
          static_cast<std::uint32_t>(s) * 10007u + 1u;
      std::vector<float> partial(vl, 0.0f);
      for (unsigned p = 0; p < config.paths; ++p) {
        std::uint32_t seed = static_cast<std::uint32_t>(p) * 2654435761u + salt;
        float rate = kRate0;
        float disc = 1.0f;
        for (unsigned t = 0; t < config.steps; ++t) {
          seed = seed * 1664525u + 1013904223u;
          const float u = static_cast<float>(seed >> 9) * kInv23;
          const float shock = (vs[s] * (u - 0.5f)) * kDt;
          rate = rate + shock;
          disc = disc * (1.0f - rate * kDt);
        }
        const float payoff = std::fmax(rate - ks[s], 0.0f) * disc;
        partial[p % vl] += payoff;
      }
      float total = partial[0];
      for (unsigned lane = 1; lane < vl; ++lane) total += partial[lane];
      ref.f32.push_back(total * (1.0f / static_cast<float>(config.paths)));
    }
    return {ref};
  }
};

}  // namespace

const Benchmark& swaptions_benchmark() {
  static const Swaptions instance;
  return instance;
}

}  // namespace vulfi::kernels
