#include "kernels/jacobi.hpp"

#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

struct Shape {
  unsigned width, height, sweeps;
};

// Table I: 2D array dimension 32x32 - 192x192 (scaled for the
// interpreter; --full in the bench harness raises these).
constexpr Shape kShapes[] = {{18, 12, 3}, {26, 16, 4}, {34, 20, 5}};

std::vector<float> rhs_field(const Shape& shape, unsigned input) {
  return random_f32(static_cast<std::size_t>(shape.width) * shape.height,
                    0x1AC0B1 + input, -1.0f, 1.0f);
}

void reference_sweep(const Shape& shape, float h2,
                     const std::vector<float>& f,
                     const std::vector<float>& src,
                     std::vector<float>& dst) {
  const unsigned w = shape.width;
  for (unsigned y = 1; y + 1 < shape.height; ++y) {
    for (unsigned x = 1; x + 1 < w; ++x) {
      const std::size_t c = static_cast<std::size_t>(y) * w + x;
      const float sum_lr = src[c - 1] + src[c + 1];
      const float sum_ud = src[c - w] + src[c + w];
      dst[c] = 0.25f * ((sum_lr + sum_ud) + h2 * f[c]);
    }
  }
}

class Jacobi final : public Benchmark {
 public:
  std::string name() const override { return "jacobi"; }
  std::string suite() const override { return "SCL"; }
  std::string input_desc() const override {
    return "2D array dimension: 18x12 - 34x20";
  }
  unsigned num_inputs() const override { return 3; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const Shape shape = kShapes[input];
    const float h2 = 1.0f / static_cast<float>(shape.width * shape.width);

    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("jacobi");
    KernelBuilder kb(*spec.module, target, "jacobi_ispc",
                     {Type::ptr(), Type::ptr(), Type::ptr(), Type::i32(),
                      Type::i32(), Type::i32(), Type::f32()});
    Value* buf_a = kb.arg(0);
    Value* buf_b = kb.arg(1);
    Value* f_ptr = kb.arg(2);
    Value* width = kb.arg(3);
    Value* height = kb.arg(4);
    Value* sweeps = kb.arg(5);
    // h^2 is a uniform parameter (Figure-9 broadcast).
    Value* h2_b = kb.uniform(kb.arg(6), "h2_broadcast");

    ir::IRBuilder& b = kb.b();
    Value* one = b.i32_const(1);
    Value* interior_end = b.sub(width, one, "interior_end");
    Value* quarter = kb.vconst_f32(0.25f);

    kb.scalar_loop(
        b.i32_const(0), sweeps, {buf_a, buf_b},
        [&](Value*, const std::vector<Value*>& bufs) -> std::vector<Value*> {
          Value* src = bufs[0];
          Value* dst = bufs[1];
          kb.scalar_loop(
              one, b.sub(height, one, "rows_end"), {},
              [&](Value* y, const std::vector<Value*>&)
                  -> std::vector<Value*> {
                Value* row = b.mul(y, width, "row");
                Value* src_row = b.gep(src, row, 4, "src_row");
                Value* src_up =
                    b.gep(src, b.sub(row, width, "row_up"), 4, "src_up");
                Value* src_down =
                    b.gep(src, b.add(row, width, "row_dn"), 4, "src_dn");
                Value* f_row = b.gep(f_ptr, row, 4, "f_row");
                Value* dst_row = b.gep(dst, row, 4, "dst_row");
                Value* minus_one = b.i32_const(-1);
                kb.foreach_loop(one, interior_end, [&](ForeachCtx& ctx) {
                  Value* left =
                      ctx.load_offset(Type::f32(), src_row, minus_one);
                  Value* right = ctx.load_offset(Type::f32(), src_row, one);
                  Value* up = ctx.load(Type::f32(), src_up);
                  Value* down = ctx.load(Type::f32(), src_down);
                  Value* f_val = ctx.load(Type::f32(), f_row);
                  Value* sum_lr = ctx.b().fadd(left, right, "sum_lr");
                  Value* sum_ud = ctx.b().fadd(up, down, "sum_ud");
                  Value* forcing = ctx.b().fmul(h2_b, f_val, "forcing");
                  Value* out = ctx.b().fmul(
                      quarter,
                      ctx.b().fadd(ctx.b().fadd(sum_lr, sum_ud, "sum4"),
                                   forcing, "sum4f"),
                      "relaxed");
                  ctx.store(out, dst_row);
                });
                return {};
              },
              "rows");
          return {dst, src};
        },
        "sweeps");
    kb.finish();
    spec.entry = spec.module->find_function("jacobi_ispc");

    const std::vector<float> f = rhs_field(shape, input);
    const std::size_t cells =
        static_cast<std::size_t>(shape.width) * shape.height;
    const std::uint64_t a_base =
        alloc_f32(spec.arena, "x_a", std::vector<float>(cells, 0.0f));
    const std::uint64_t b_base =
        alloc_f32(spec.arena, "x_b", std::vector<float>(cells, 0.0f));
    const std::uint64_t f_base = alloc_f32(spec.arena, "f", f);
    spec.args = {interp::RtVal::ptr(a_base), interp::RtVal::ptr(b_base),
                 interp::RtVal::ptr(f_base),
                 interp::RtVal::i32(static_cast<std::int32_t>(shape.width)),
                 interp::RtVal::i32(static_cast<std::int32_t>(shape.height)),
                 interp::RtVal::i32(static_cast<std::int32_t>(shape.sweeps)),
                 interp::RtVal::f32(h2)};
    spec.output_regions = {"x_a", "x_b"};
    return spec;
  }

  std::vector<RegionRef> reference(const Target&,
                                   unsigned input) const override {
    const Shape shape = kShapes[input];
    const float h2 = 1.0f / static_cast<float>(shape.width * shape.width);
    const std::vector<float> f = rhs_field(shape, input);
    const std::size_t cells =
        static_cast<std::size_t>(shape.width) * shape.height;
    std::vector<float> a(cells, 0.0f);
    std::vector<float> b(cells, 0.0f);
    std::vector<float>* src = &a;
    std::vector<float>* dst = &b;
    for (unsigned sweep = 0; sweep < shape.sweeps; ++sweep) {
      reference_sweep(shape, h2, f, *src, *dst);
      std::swap(src, dst);
    }
    RegionRef ref_a{.region = "x_a", .f32 = a, .i32 = {}};
    RegionRef ref_b{.region = "x_b", .f32 = b, .i32 = {}};
    return {ref_a, ref_b};
  }
};

}  // namespace

const Benchmark& jacobi_benchmark() {
  static const Jacobi instance;
  return instance;
}

}  // namespace vulfi::kernels
