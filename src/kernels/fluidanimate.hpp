// SPH fluid kernels (PARVEC's vectorized fluidanimate, reduced to the two
// hot loops over a spatially sorted 1-D particle strip): a density pass
// summing a compact polynomial kernel over a fixed neighbour window, and a
// pressure-force pass over the same window using the densities. Offset
// vector loads per neighbour; halo particles pad both ends.
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& fluidanimate_benchmark();

}  // namespace vulfi::kernels
