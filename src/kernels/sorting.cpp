#include "kernels/sorting.hpp"

#include <algorithm>

#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

// Table I: 1D array length [1000, 100000]; scaled for the interpreter
// (odd-even transposition is O(n^2)).
constexpr unsigned kLengths[] = {25, 49, 97};

std::vector<std::int32_t> unsorted(unsigned input) {
  return random_i32(kLengths[input], 0x50F7 + input, -1000, 1000);
}

class Sorting final : public Benchmark {
 public:
  std::string name() const override { return "sorting"; }
  std::string suite() const override { return "ISPC"; }
  std::string input_desc() const override {
    return "1D array length: [25, 97]";
  }
  unsigned num_inputs() const override { return 3; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const unsigned n = kLengths[input];
    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("sorting");
    KernelBuilder kb(*spec.module, target, "sort_ispc",
                     {Type::ptr(), Type::i32()});
    Value* data = kb.arg(0);
    Value* count = kb.arg(1);

    ir::IRBuilder& b = kb.b();
    Value* one = b.i32_const(1);
    Value* two = b.i32_const(2);

    // n passes of odd-even transposition guarantee a sorted array.
    kb.scalar_loop(
        b.i32_const(0), count, {},
        [&](Value* pass, const std::vector<Value*>&) -> std::vector<Value*> {
          Value* offset = b.and_(pass, one, "offset");
          // Number of disjoint pairs this pass: (n - offset) / 2.
          Value* pairs =
              b.sdiv(b.sub(count, offset, "span"), two, "pairs");
          kb.foreach_loop(b.i32_const(0), pairs, [&](ForeachCtx& ctx) {
            ir::IRBuilder& bb = ctx.b();
            // First element of each pair: 2*j + offset.
            Value* off_b = kb.uniform(offset, "offset_broadcast");
            Value* idx_lo = bb.add(
                bb.mul(ctx.index(), kb.vconst_i32(2), "twoj"), off_b,
                "idx_lo");
            Value* idx_hi = bb.add(idx_lo, kb.vconst_i32(1), "idx_hi");
            Value* lo = ctx.gather(Type::i32(), data, idx_lo);
            Value* hi = ctx.gather(Type::i32(), data, idx_hi);
            Value* in_order =
                bb.icmp(ir::ICmpPred::SLE, lo, hi, "in_order");
            Value* new_lo = bb.select(in_order, lo, hi, "new_lo");
            Value* new_hi = bb.select(in_order, hi, lo, "new_hi");
            ctx.scatter(new_lo, data, idx_lo);
            ctx.scatter(new_hi, data, idx_hi);
          });
          return {};
        },
        "passes");
    kb.finish();
    spec.entry = spec.module->find_function("sort_ispc");

    const std::uint64_t data_base =
        alloc_i32(spec.arena, "data", unsorted(input));
    spec.args = {interp::RtVal::ptr(data_base),
                 interp::RtVal::i32(static_cast<std::int32_t>(n))};
    spec.output_regions = {"data"};
    return spec;
  }

  std::vector<RegionRef> reference(const Target&,
                                   unsigned input) const override {
    std::vector<std::int32_t> sorted = unsorted(input);
    std::sort(sorted.begin(), sorted.end());
    RegionRef ref;
    ref.region = "data";
    ref.i32 = std::move(sorted);
    return {ref};
  }
};

}  // namespace

const Benchmark& sorting_benchmark() {
  static const Sorting instance;
  return instance;
}

}  // namespace vulfi::kernels
