#include "kernels/kernel_common.hpp"

namespace vulfi::kernels {

std::vector<float> random_f32(std::size_t count, std::uint64_t seed,
                              float lo, float hi) {
  Rng rng(seed);
  std::vector<float> values(count);
  for (float& value : values) {
    value = static_cast<float>(rng.next_double_in(lo, hi));
  }
  return values;
}

std::vector<std::int32_t> random_i32(std::size_t count, std::uint64_t seed,
                                     std::int32_t lo, std::int32_t hi) {
  Rng rng(seed);
  std::vector<std::int32_t> values(count);
  for (std::int32_t& value : values) {
    value = static_cast<std::int32_t>(rng.next_in_range(lo, hi));
  }
  return values;
}

std::uint64_t alloc_f32(interp::Arena& arena, const std::string& name,
                        const std::vector<float>& values) {
  const std::uint64_t base =
      arena.alloc(values.size() * sizeof(float), name);
  arena.write_array(base, values);
  return base;
}

std::uint64_t alloc_i32(interp::Arena& arena, const std::string& name,
                        const std::vector<std::int32_t>& values) {
  const std::uint64_t base =
      arena.alloc(values.size() * sizeof(std::int32_t), name);
  arena.write_array(base, values);
  return base;
}

std::uint64_t alloc_f32_zero(interp::Arena& arena, const std::string& name,
                             std::size_t count) {
  return alloc_f32(arena, name, std::vector<float>(count, 0.0f));
}

std::uint64_t alloc_i32_zero(interp::Arena& arena, const std::string& name,
                             std::size_t count) {
  return alloc_i32(arena, name, std::vector<std::int32_t>(count, 0));
}

}  // namespace vulfi::kernels
