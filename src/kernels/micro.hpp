// The §IV-E micro-benchmarks used for the detector study (Figure 12):
// vector copy (the paper's Figure 6 vcopy_ispc), vector dot product, and
// vector sum. Small foreach bodies over f32 arrays.
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& vector_copy_benchmark();
const Benchmark& dot_product_benchmark();
const Benchmark& vector_sum_benchmark();

}  // namespace vulfi::kernels
