#include "kernels/raytracing.hpp"

#include <cmath>

#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::IntrinsicId;
using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

constexpr float kFarPlane = 1.0e30f;

struct Scene {
  unsigned width, height;
  std::vector<float> cx, cy, cz, radius, albedo;

  unsigned sphere_count() const {
    return static_cast<unsigned>(cx.size());
  }
};

/// Procedural stand-ins for the paper's Sponza / Teapot / Cornell camera
/// inputs: different sphere layouts and image sizes per input.
Scene make_scene(unsigned input) {
  Scene scene;
  const unsigned sizes[][2] = {{18, 10}, {22, 12}, {27, 15}};
  const unsigned counts[] = {5, 8, 12};
  scene.width = sizes[input][0];
  scene.height = sizes[input][1];
  const unsigned k = counts[input];
  Rng rng(0x7A9CE + input);
  for (unsigned i = 0; i < k; ++i) {
    scene.cx.push_back(static_cast<float>(rng.next_double_in(-1.5, 1.5)));
    scene.cy.push_back(static_cast<float>(rng.next_double_in(-1.0, 1.0)));
    scene.cz.push_back(static_cast<float>(rng.next_double_in(2.0, 6.0)));
    scene.radius.push_back(static_cast<float>(rng.next_double_in(0.3, 1.0)));
    scene.albedo.push_back(static_cast<float>(rng.next_double_in(0.2, 1.0)));
  }
  return scene;
}

/// Scalar reference for one pixel; mirrors the kernel's operation order.
float trace_pixel_ref(const Scene& scene, unsigned px, unsigned py) {
  const float inv_w = 1.0f / static_cast<float>(scene.width);
  const float inv_h = 1.0f / static_cast<float>(scene.height);
  const float dx = (static_cast<float>(px) + 0.5f) * inv_w - 0.5f;
  const float dy = (static_cast<float>(py) + 0.5f) * inv_h - 0.5f;
  const float dz = 1.0f;
  const float inv_len = 1.0f / std::sqrt(dx * dx + (dy * dy + dz * dz));
  const float rx = dx * inv_len, ry = dy * inv_len, rz = dz * inv_len;

  float tmin = kFarPlane;
  float shade = 0.0f;
  for (unsigned s = 0; s < scene.sphere_count(); ++s) {
    const float ocx = -scene.cx[s], ocy = -scene.cy[s], ocz = -scene.cz[s];
    const float b = ocx * rx + (ocy * ry + ocz * rz);
    const float c =
        (ocx * ocx + (ocy * ocy + ocz * ocz)) -
        scene.radius[s] * scene.radius[s];
    const float disc = b * b - c;
    const float sqrt_disc = std::sqrt(std::fmax(disc, 0.0f));
    const float t = -b - sqrt_disc;
    const bool hit = disc > 0.0f && t > 0.0f && t < tmin;
    if (hit) {
      tmin = t;
      shade = scene.albedo[s] / (1.0f + 0.1f * t);
    }
  }
  return shade;
}

class Raytracing final : public Benchmark {
 public:
  std::string name() const override { return "raytracing"; }
  std::string suite() const override { return "ISPC"; }
  std::string input_desc() const override {
    return "Camera input: Sponza, Teapot, Cornell";
  }
  unsigned num_inputs() const override { return 3; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const Scene scene = make_scene(input);

    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("raytracing");
    KernelBuilder kb(*spec.module, target, "raytrace_ispc",
                     {Type::ptr(), Type::ptr(), Type::ptr(), Type::ptr(),
                      Type::ptr(), Type::ptr(), Type::i32(), Type::i32(),
                      Type::i32()});
    Value* cx_ptr = kb.arg(0);
    Value* cy_ptr = kb.arg(1);
    Value* cz_ptr = kb.arg(2);
    Value* rad_ptr = kb.arg(3);
    Value* alb_ptr = kb.arg(4);
    Value* img_ptr = kb.arg(5);
    Value* width = kb.arg(6);
    Value* height = kb.arg(7);
    Value* spheres = kb.arg(8);

    ir::IRBuilder& b = kb.b();
    // 1/w and 1/h as uniform values.
    Value* inv_w = b.fdiv(b.f32_const(1.0f),
                          b.sitofp(width, Type::f32(), "w_f"), "inv_w");
    Value* inv_h = b.fdiv(b.f32_const(1.0f),
                          b.sitofp(height, Type::f32(), "h_f"), "inv_h");
    Value* inv_w_b = kb.uniform(inv_w, "inv_w_broadcast");

    kb.scalar_loop(
        b.i32_const(0), height, {},
        [&](Value* y, const std::vector<Value*>&) -> std::vector<Value*> {
          Value* y_f = b.sitofp(y, Type::f32(), "y_f");
          Value* dy_scalar =
              b.fsub(b.fmul(b.fadd(y_f, b.f32_const(0.5f), "y_c"), inv_h,
                            "y_n"),
                     b.f32_const(0.5f), "dy_s");
          Value* dy = kb.uniform(dy_scalar, "dy_broadcast");
          Value* img_row =
              b.gep(img_ptr, b.mul(y, width, "row"), 4, "img_row");

          kb.foreach_loop(b.i32_const(0), width, [&](ForeachCtx& ctx) {
            ir::IRBuilder& bb = ctx.b();
            // Ray direction for this pixel column.
            Value* x_f = bb.sitofp(ctx.index(),
                                   Type::vector(ir::TypeKind::F32, kb.vl()),
                                   "x_f");
            Value* dx = bb.fsub(
                bb.fmul(bb.fadd(x_f, kb.vconst_f32(0.5f), "x_c"), inv_w_b,
                        "x_n"),
                kb.vconst_f32(0.5f), "dx");
            Value* dz = kb.vconst_f32(1.0f);
            Value* len2 = bb.fadd(
                bb.fmul(dx, dx, "dx2"),
                bb.fadd(bb.fmul(dy, dy, "dy2"), bb.fmul(dz, dz, "dz2"),
                        "dydz"),
                "len2");
            Value* inv_len = bb.fdiv(
                kb.vconst_f32(1.0f),
                kb.intrinsic_call(IntrinsicId::Sqrt, len2), "inv_len");
            Value* rx = bb.fmul(dx, inv_len, "rx");
            Value* ry = bb.fmul(dy, inv_len, "ry");
            Value* rz = bb.fmul(dz, inv_len, "rz");

            // Nearest-hit search across the sphere list.
            auto finals = kb.scalar_loop(
                bb.i32_const(0), spheres,
                {kb.vconst_f32(kFarPlane), kb.vconst_f32(0.0f)},
                [&](Value* s, const std::vector<Value*>& carried)
                    -> std::vector<Value*> {
                  Value* tmin = carried[0];
                  Value* shade = carried[1];
                  auto load_u = [&](Value* base, const char* tag) {
                    Value* addr = bb.gep(base, s, 4, std::string(tag) + "_a");
                    Value* scalar =
                        bb.load(Type::f32(), addr, std::string(tag) + "_s");
                    return kb.uniform(scalar, std::string(tag) + "_b");
                  };
                  Value* scx = load_u(cx_ptr, "scx");
                  Value* scy = load_u(cy_ptr, "scy");
                  Value* scz = load_u(cz_ptr, "scz");
                  Value* srad = load_u(rad_ptr, "srad");
                  Value* salb = load_u(alb_ptr, "salb");

                  Value* ocx = bb.fneg(scx, "ocx");
                  Value* ocy = bb.fneg(scy, "ocy");
                  Value* ocz = bb.fneg(scz, "ocz");
                  Value* b_term = bb.fadd(
                      bb.fmul(ocx, rx, "bx"),
                      bb.fadd(bb.fmul(ocy, ry, "by"),
                              bb.fmul(ocz, rz, "bz"), "byz"),
                      "b_term");
                  Value* c_term = bb.fsub(
                      bb.fadd(bb.fmul(ocx, ocx, "ox2"),
                              bb.fadd(bb.fmul(ocy, ocy, "oy2"),
                                      bb.fmul(ocz, ocz, "oz2"), "oyz2"),
                              "oc2"),
                      bb.fmul(srad, srad, "r2"), "c_term");
                  Value* disc = bb.fsub(bb.fmul(b_term, b_term, "b2"),
                                        c_term, "disc");
                  Value* sqrt_disc = kb.intrinsic_call(
                      IntrinsicId::Sqrt,
                      kb.intrinsic_call(IntrinsicId::Fmax, disc,
                                        kb.vconst_f32(0.0f)));
                  Value* t = bb.fsub(bb.fneg(b_term, "neg_b"), sqrt_disc,
                                     "t_hit");
                  Value* has_root = bb.fcmp(ir::FCmpPred::OGT, disc,
                                            kb.vconst_f32(0.0f), "has_root");
                  Value* in_front = bb.fcmp(ir::FCmpPred::OGT, t,
                                            kb.vconst_f32(0.0f), "in_front");
                  Value* closer =
                      bb.fcmp(ir::FCmpPred::OLT, t, tmin, "closer");
                  Value* hit = bb.and_(has_root,
                                       bb.and_(in_front, closer, "fc"),
                                       "hit");
                  Value* new_shade = bb.fdiv(
                      salb,
                      bb.fadd(kb.vconst_f32(1.0f),
                              bb.fmul(kb.vconst_f32(0.1f), t, "att_t"),
                              "att"),
                      "new_shade");
                  return {bb.select(hit, t, tmin, "tmin_next"),
                          bb.select(hit, new_shade, shade, "shade_next")};
                },
                "spheres");
            ctx.store(finals[1], img_row);
          });
          return {};
        },
        "rows");
    kb.finish();
    spec.entry = spec.module->find_function("raytrace_ispc");

    const std::uint64_t cx_base = alloc_f32(spec.arena, "cx", scene.cx);
    const std::uint64_t cy_base = alloc_f32(spec.arena, "cy", scene.cy);
    const std::uint64_t cz_base = alloc_f32(spec.arena, "cz", scene.cz);
    const std::uint64_t rad_base =
        alloc_f32(spec.arena, "radius", scene.radius);
    const std::uint64_t alb_base =
        alloc_f32(spec.arena, "albedo", scene.albedo);
    const std::uint64_t img_base = alloc_f32_zero(
        spec.arena, "image",
        static_cast<std::size_t>(scene.width) * scene.height);
    spec.args = {interp::RtVal::ptr(cx_base), interp::RtVal::ptr(cy_base),
                 interp::RtVal::ptr(cz_base), interp::RtVal::ptr(rad_base),
                 interp::RtVal::ptr(alb_base), interp::RtVal::ptr(img_base),
                 interp::RtVal::i32(static_cast<std::int32_t>(scene.width)),
                 interp::RtVal::i32(static_cast<std::int32_t>(scene.height)),
                 interp::RtVal::i32(
                     static_cast<std::int32_t>(scene.sphere_count()))};
    spec.output_regions = {"image"};
    return spec;
  }

  std::vector<RegionRef> reference(const Target&,
                                   unsigned input) const override {
    const Scene scene = make_scene(input);
    RegionRef ref;
    ref.region = "image";
    ref.f32.reserve(static_cast<std::size_t>(scene.width) * scene.height);
    for (unsigned y = 0; y < scene.height; ++y) {
      for (unsigned x = 0; x < scene.width; ++x) {
        ref.f32.push_back(trace_pixel_ref(scene, x, y));
      }
    }
    return {ref};
  }
};

}  // namespace

const Benchmark& raytracing_benchmark() {
  static const Raytracing instance;
  return instance;
}

}  // namespace vulfi::kernels
