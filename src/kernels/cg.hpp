// Conjugate gradient for the 2-D Poisson problem (Burkardt SCL port).
// Matrix-free: q = A p is the 5-point stencil; the dot products are
// vector reductions. The paper reports CG (with swaptions) as the most
// resilient benchmark — residual-driven iteration masks most single-bit
// data upsets (Figure 11).
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& cg_benchmark();

}  // namespace vulfi::kernels
