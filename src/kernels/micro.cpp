#include "kernels/micro.hpp"

#include "kernels/kernel_common.hpp"
#include "spmd/lang/compiler.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::Type;
using spmd::Target;

/// The micro-benchmarks are compiled from kernel-language source — the
/// §IV-E study injects faults into compiler-generated code, exactly as
/// the paper compiles its micro-benchmarks with ISPC. vcopy_ispc is the
/// paper's Figure 6 verbatim (modulo surface syntax).
constexpr const char* kVcopySource = R"ispc(
kernel vcopy_ispc(uniform float a1[], uniform float a2[], uniform int n) {
  foreach (i = 0 ... n) {
    a2[i] = a1[i];
  }
}
)ispc";

constexpr const char* kDotSource = R"ispc(
kernel dot_ispc(uniform float a[], uniform float b[],
                uniform float out[], uniform int n) {
  uniform float sum = 0.0;
  foreach (i = 0 ... n) {
    sum += a[i] * b[i];
  }
  out[0] = sum;
}
)ispc";

constexpr const char* kVsumSource = R"ispc(
kernel vsum_ispc(uniform float a[], uniform float out[], uniform int n) {
  uniform float sum = 0.0;
  foreach (i = 0 ... n) {
    sum += a[i];
  }
  out[0] = sum;
}
)ispc";

/// The predefined input lengths; two leave a masked remainder on both
/// targets, one (512) exercises the remainder-free path.
constexpr unsigned kMicroSizes[] = {512, 1023, 2047};
constexpr unsigned kNumMicroInputs = 3;

std::vector<float> micro_input(unsigned input, std::uint64_t salt) {
  return random_f32(kMicroSizes[input], 0xA11CE + salt * 7919 + input,
                    -1.0f, 1.0f);
}

/// Compiles `source` and returns a RunSpec with module + entry set.
RunSpec compile_kernel(const char* source, const Target& target,
                       const std::string& entry_name) {
  spmd::lang::CompileResult compiled =
      spmd::lang::compile_program(source, target, entry_name);
  VULFI_ASSERT(compiled.ok(), compiled.errors.empty()
                                  ? "micro kernel failed to compile"
                                  : compiled.errors.front().c_str());
  RunSpec spec;
  spec.module = std::move(compiled.module);
  spec.entry = spec.module->find_function(entry_name);
  VULFI_ASSERT(spec.entry != nullptr, "micro kernel entry missing");
  return spec;
}

// ---------------------------------------------------------------------------
// vector copy — the paper's Figure 6 vcopy_ispc
// ---------------------------------------------------------------------------

class VectorCopy final : public Benchmark {
 public:
  std::string name() const override { return "vcopy"; }
  std::string suite() const override { return "Micro"; }
  std::string input_desc() const override {
    return "1D array length: [512, 2047]";
  }
  unsigned num_inputs() const override { return kNumMicroInputs; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const unsigned n = kMicroSizes[input];
    RunSpec spec = compile_kernel(kVcopySource, target, "vcopy_ispc");
    const std::uint64_t a1_base =
        alloc_f32(spec.arena, "a1", micro_input(input, 1));
    const std::uint64_t a2_base = alloc_f32_zero(spec.arena, "a2", n);
    spec.args = {interp::RtVal::ptr(a1_base), interp::RtVal::ptr(a2_base),
                 interp::RtVal::i32(static_cast<std::int32_t>(n))};
    spec.output_regions = {"a2"};
    return spec;
  }

  std::vector<RegionRef> reference(const Target&,
                                   unsigned input) const override {
    RegionRef ref;
    ref.region = "a2";
    ref.f32 = micro_input(input, 1);
    return {ref};
  }
};

// ---------------------------------------------------------------------------
// dot product / vector sum — foreach reductions
// ---------------------------------------------------------------------------

/// Shared implementation: result = sum(a[i] * b[i]) when `with_mul`, else
/// sum(a[i]).
class MicroReduce : public Benchmark {
 public:
  explicit MicroReduce(bool with_mul) : with_mul_(with_mul) {}

  std::string suite() const override { return "Micro"; }
  std::string input_desc() const override {
    return "1D array length: [512, 2047]";
  }
  unsigned num_inputs() const override { return kNumMicroInputs; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const unsigned n = kMicroSizes[input];
    RunSpec spec = compile_kernel(with_mul_ ? kDotSource : kVsumSource,
                                  target, name() + "_ispc");

    const std::uint64_t a_base =
        alloc_f32(spec.arena, "a", micro_input(input, 2));
    std::uint64_t b_base = 0;
    if (with_mul_) {
      b_base = alloc_f32(spec.arena, "b", micro_input(input, 3));
    }
    const std::uint64_t out_base = alloc_f32_zero(spec.arena, "out", 1);
    spec.args = {interp::RtVal::ptr(a_base)};
    if (with_mul_) spec.args.push_back(interp::RtVal::ptr(b_base));
    spec.args.push_back(interp::RtVal::ptr(out_base));
    spec.args.push_back(interp::RtVal::i32(static_cast<std::int32_t>(n)));
    spec.output_regions = {"out"};
    return spec;
  }

  std::vector<RegionRef> reference(const Target& target,
                                   unsigned input) const override {
    const unsigned n = kMicroSizes[input];
    const unsigned vl = target.vector_width;
    const std::vector<float> a = micro_input(input, 2);
    const std::vector<float> b =
        with_mul_ ? micro_input(input, 3) : std::vector<float>{};
    // Replicate the compiled kernel's exact operation order: per-lane
    // partial sums in index order, an extract/add reduction chain, then
    // the fold into the (zero) uniform accumulator.
    std::vector<float> partial(vl, 0.0f);
    for (unsigned i = 0; i < n; ++i) {
      const float term = with_mul_ ? a[i] * b[i] : a[i];
      partial[i % vl] += term;
    }
    float sum = partial[0];
    for (unsigned lane = 1; lane < vl; ++lane) sum += partial[lane];
    sum = 0.0f + sum;  // the accumulator fold
    RegionRef ref;
    ref.region = "out";
    ref.f32 = {sum};
    return {ref};
  }

 private:
  bool with_mul_;
};

class DotProduct final : public MicroReduce {
 public:
  DotProduct() : MicroReduce(true) {}
  std::string name() const override { return "dot"; }
};

class VectorSum final : public MicroReduce {
 public:
  VectorSum() : MicroReduce(false) {}
  std::string name() const override { return "vsum"; }
};

}  // namespace

const Benchmark& vector_copy_benchmark() {
  static const VectorCopy instance;
  return instance;
}

const Benchmark& dot_product_benchmark() {
  static const DotProduct instance;
  return instance;
}

const Benchmark& vector_sum_benchmark() {
  static const VectorSum instance;
  return instance;
}

}  // namespace vulfi::kernels
