#include "kernels/fluidanimate.hpp"

#include <cmath>

#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

constexpr int kWindow = 2;            // neighbours at offsets -2..+2
constexpr float kSmoothing = 0.12f;   // SPH smoothing radius h
constexpr float kStiffness = 3.0f;    // pressure stiffness
constexpr float kRestDensity = 1.0f;

// Table I: sim small / sim medium (fluidanimate has two inputs).
constexpr unsigned kParticleCounts[] = {44, 84};

std::vector<float> particle_positions(unsigned input) {
  // Roughly sorted strip: monotone base + jitter, so near indices are near
  // in space (the effect of fluidanimate's cell binning).
  const unsigned n = kParticleCounts[input];
  Rng rng(0xF1D + input);
  std::vector<float> xs(n);
  for (unsigned i = 0; i < n; ++i) {
    xs[i] = 0.05f * static_cast<float>(i) +
            static_cast<float>(rng.next_double_in(0.0, 0.03));
  }
  return xs;
}

float kernel_w_ref(float dist) {
  const float q = kSmoothing * kSmoothing - dist * dist;
  const float clamped = std::fmax(q, 0.0f);
  return (clamped * clamped) * clamped;
}

class Fluidanimate final : public Benchmark {
 public:
  std::string name() const override { return "fluidanimate"; }
  std::string suite() const override { return "Parvec"; }
  std::string language() const override { return "C++"; }
  std::string input_desc() const override {
    return "sim small / sim medium";
  }
  unsigned num_inputs() const override { return 2; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const unsigned n = kParticleCounts[input];
    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("fluidanimate");
    KernelBuilder kb(*spec.module, target, "fluidanimate_ispc",
                     {Type::ptr(), Type::ptr(), Type::ptr(), Type::i32(),
                      Type::f32(), Type::f32(), Type::f32()});
    Value* x_ptr = kb.arg(0);
    Value* rho_ptr = kb.arg(1);
    Value* force_ptr = kb.arg(2);
    Value* count = kb.arg(3);
    Value* h2_b = kb.uniform(kb.arg(4), "h2_broadcast");
    Value* stiff_b = kb.uniform(kb.arg(5), "stiffness_broadcast");
    Value* rest_b = kb.uniform(kb.arg(6), "rest_density_broadcast");

    ir::IRBuilder& b = kb.b();
    Value* interior_start = b.i32_const(kWindow);
    Value* interior_end = b.sub(count, b.i32_const(kWindow), "interior_end");

    auto w_poly = [&](ForeachCtx& ctx, Value* xi, Value* xj) {
      ir::IRBuilder& bb = ctx.b();
      Value* d = bb.fsub(xi, xj, "d");
      Value* q = bb.fsub(h2_b, bb.fmul(d, d, "d2"), "q");
      Value* clamped = kb.intrinsic_call(ir::IntrinsicId::Fmax, q,
                                         kb.vconst_f32(0.0f));
      return bb.fmul(bb.fmul(clamped, clamped, "q2"), clamped, "w");
    };

    // Pass 1: density over the +-kWindow neighbour strip.
    kb.foreach_loop(interior_start, interior_end, [&](ForeachCtx& ctx) {
      ir::IRBuilder& bb = ctx.b();
      Value* xi = ctx.load(Type::f32(), x_ptr);
      Value* rho = kb.vconst_f32(0.0f);
      for (int off = -kWindow; off <= kWindow; ++off) {
        if (off == 0) continue;
        Value* xj = ctx.load_offset(Type::f32(), x_ptr, bb.i32_const(off));
        rho = bb.fadd(rho, w_poly(ctx, xi, xj), "rho_acc");
      }
      ctx.store(rho, rho_ptr);
    });

    // Pass 2: symmetric pressure force from densities.
    kb.foreach_loop(interior_start, interior_end, [&](ForeachCtx& ctx) {
      ir::IRBuilder& bb = ctx.b();
      Value* xi = ctx.load(Type::f32(), x_ptr);
      Value* rho_i = ctx.load(Type::f32(), rho_ptr);
      Value* p_i = bb.fmul(stiff_b, bb.fsub(rho_i, rest_b, "drho_i"), "p_i");
      Value* force = kb.vconst_f32(0.0f);
      for (int off = -kWindow; off <= kWindow; ++off) {
        if (off == 0) continue;
        Value* xj = ctx.load_offset(Type::f32(), x_ptr, bb.i32_const(off));
        Value* rho_j =
            ctx.load_offset(Type::f32(), rho_ptr, bb.i32_const(off));
        Value* p_j =
            bb.fmul(stiff_b, bb.fsub(rho_j, rest_b, "drho_j"), "p_j");
        Value* p_avg = bb.fmul(kb.vconst_f32(0.5f),
                               bb.fadd(p_i, p_j, "p_sum"), "p_avg");
        Value* dir = bb.fsub(xi, xj, "dir");
        force = bb.fadd(force,
                        bb.fmul(p_avg, bb.fmul(dir, w_poly(ctx, xi, xj),
                                               "dir_w"),
                                "f_term"),
                        "force_acc");
      }
      ctx.store(force, force_ptr);
    });
    kb.finish();
    spec.entry = spec.module->find_function("fluidanimate_ispc");

    const std::uint64_t x_base =
        alloc_f32(spec.arena, "x", particle_positions(input));
    const std::uint64_t rho_base = alloc_f32_zero(spec.arena, "rho", n);
    const std::uint64_t force_base = alloc_f32_zero(spec.arena, "force", n);
    spec.args = {interp::RtVal::ptr(x_base), interp::RtVal::ptr(rho_base),
                 interp::RtVal::ptr(force_base),
                 interp::RtVal::i32(static_cast<std::int32_t>(n)),
                 interp::RtVal::f32(kSmoothing * kSmoothing),
                 interp::RtVal::f32(kStiffness),
                 interp::RtVal::f32(kRestDensity)};
    spec.output_regions = {"rho", "force"};
    return spec;
  }

  std::vector<RegionRef> reference(const Target&,
                                   unsigned input) const override {
    const unsigned n = kParticleCounts[input];
    const std::vector<float> xs = particle_positions(input);
    std::vector<float> rho(n, 0.0f);
    std::vector<float> force(n, 0.0f);
    for (unsigned i = kWindow; i + kWindow < n; ++i) {
      float acc = 0.0f;
      for (int off = -kWindow; off <= kWindow; ++off) {
        if (off == 0) continue;
        acc = acc + kernel_w_ref(xs[i] - xs[i + off]);
      }
      rho[i] = acc;
    }
    for (unsigned i = kWindow; i + kWindow < n; ++i) {
      const float p_i = kStiffness * (rho[i] - kRestDensity);
      float acc = 0.0f;
      for (int off = -kWindow; off <= kWindow; ++off) {
        if (off == 0) continue;
        const float p_j =
            kStiffness * (rho[i + off] - kRestDensity);
        const float p_avg = 0.5f * (p_i + p_j);
        const float dir = xs[i] - xs[i + off];
        acc = acc + p_avg * (dir * kernel_w_ref(xs[i] - xs[i + off]));
      }
      force[i] = acc;
    }
    RegionRef ref_rho{.region = "rho", .f32 = rho, .i32 = {}};
    RegionRef ref_force{.region = "force", .f32 = force, .i32 = {}};
    return {ref_rho, ref_force};
  }
};

}  // namespace

const Benchmark& fluidanimate_benchmark() {
  static const Fluidanimate instance;
  return instance;
}

}  // namespace vulfi::kernels
