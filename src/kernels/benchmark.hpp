// Benchmark abstraction for the fault-injection study.
//
// Reproduces the paper's Table I benchmark set: two PARVEC-derived
// vectorized applications (fluidanimate, swaptions), four ISPC example
// workloads (blackscholes, sorting, stencil, raytracing), three
// Burkardt-SCL ports (chebyshev, jacobi, conjugate gradient), plus the
// three §IV-E micro-benchmarks (vector copy, dot product, vector sum).
// Each benchmark builds an SPMD kernel module for a given target/input
// and supplies a scalar host reference used by the test suite to validate
// kernel correctness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spmd/target.hpp"
#include "vulfi/run_spec.hpp"

namespace vulfi::kernels {

/// A reference result for one output region (exactly one of f32/i32 is
/// populated, matching the region's element type).
struct RegionRef {
  std::string region;
  std::vector<float> f32;
  std::vector<std::int32_t> i32;
};

class Benchmark {
 public:
  virtual ~Benchmark() = default;

  virtual std::string name() const = 0;
  /// Table I "suite" column: Parvec, ISPC, SCL, or Micro.
  virtual std::string suite() const = 0;
  virtual std::string language() const { return "ISPC"; }
  /// Table I "Test Input" column text.
  virtual std::string input_desc() const = 0;
  /// Size of the predefined input set (experiments draw uniformly).
  virtual unsigned num_inputs() const = 0;

  /// Builds the kernel module + pre-populated arena for one input.
  virtual RunSpec build(const spmd::Target& target,
                        unsigned input) const = 0;

  /// Scalar reference outputs. Computed with the same operation order the
  /// vector kernel uses (per-lane partials for reductions), so results
  /// match within tight floating-point tolerance.
  virtual std::vector<RegionRef> reference(const spmd::Target& target,
                                           unsigned input) const = 0;
};

/// The nine Table I benchmarks, in the paper's order.
const std::vector<const Benchmark*>& all_benchmarks();
/// The three §IV-E micro-benchmarks (vector copy, dot product, vector sum).
const std::vector<const Benchmark*>& micro_benchmarks();
/// Lookup by name over both sets; nullptr if absent.
const Benchmark* find_benchmark(const std::string& name);

}  // namespace vulfi::kernels
