// 2-D 5-point stencil smoothing over multiple timesteps (ISPC example
// suite's stencil workload, reduced from 3-D to 2-D). Ping-pong buffers,
// offset vector loads for the four neighbours — address-rich and
// SDC-prone (paper Figure 11 reports stencil among the highest SDC rates).
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& stencil_benchmark();

}  // namespace vulfi::kernels
