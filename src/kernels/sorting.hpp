// Odd-even transposition sort over an i32 array (stand-in for the ISPC
// example suite's sort workload). Each pass compare-exchanges disjoint
// adjacent pairs through per-lane gathers and scatters — the most
// address- and control-intensive benchmark in the set.
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& sorting_benchmark();

}  // namespace vulfi::kernels
