// Chebyshev series evaluation (Burkardt SCL port).
// Evaluates sum_k c_k T_k(x) at a grid of points via the three-term
// recurrence T_{k+1} = 2x T_k - T_{k-1}; each coefficient is a uniform
// scalar loaded then broadcast (Figure-9 idiom) inside the degree loop.
// The paper singles this benchmark out for its high address-category SDC
// rate (Figure 11).
#pragma once

#include "kernels/benchmark.hpp"

namespace vulfi::kernels {

const Benchmark& chebyshev_benchmark();

}  // namespace vulfi::kernels
