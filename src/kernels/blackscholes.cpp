#include "kernels/blackscholes.hpp"

#include <cmath>

#include "kernels/kernel_common.hpp"
#include "spmd/kernel_builder.hpp"
#include "support/error.hpp"

namespace vulfi::kernels {

namespace {

using ir::IntrinsicId;
using ir::Type;
using ir::Value;
using spmd::ForeachCtx;
using spmd::KernelBuilder;
using spmd::Target;

// Abramowitz–Stegun cumulative normal polynomial constants (the ones the
// ISPC blackscholes example uses).
constexpr float kInvSqrt2Pi = 0.39894228040f;
constexpr float kCnd0 = 0.2316419f;
constexpr float kCnd1 = 0.319381530f;
constexpr float kCnd2 = -0.356563782f;
constexpr float kCnd3 = 1.781477937f;
constexpr float kCnd4 = -1.821255978f;
constexpr float kCnd5 = 1.330274429f;

constexpr unsigned kOptionCounts[] = {30, 62, 126};  // small/medium/large
constexpr float kRiskFree = 0.02f;
constexpr float kVolatility = 0.30f;

struct Inputs {
  std::vector<float> s, k, t;
};

Inputs make_inputs(unsigned input) {
  Inputs in;
  const unsigned n = kOptionCounts[input];
  in.s = random_f32(n, 0xB5001 + input, 20.0f, 120.0f);
  in.k = random_f32(n, 0xB5002 + input, 20.0f, 120.0f);
  in.t = random_f32(n, 0xB5003 + input, 0.25f, 2.0f);
  return in;
}

class Blackscholes final : public Benchmark {
 public:
  std::string name() const override { return "blackscholes"; }
  std::string suite() const override { return "ISPC"; }
  std::string input_desc() const override {
    return "sim small / sim medium / sim large";
  }
  unsigned num_inputs() const override { return 3; }

  RunSpec build(const Target& target, unsigned input) const override {
    VULFI_ASSERT(input < num_inputs(), "bad input index");
    const unsigned n = kOptionCounts[input];
    RunSpec spec;
    spec.module = std::make_unique<ir::Module>("blackscholes");
    KernelBuilder kb(
        *spec.module, target, "blackscholes_ispc",
        {Type::ptr(), Type::ptr(), Type::ptr(), Type::ptr(), Type::i32(),
         Type::f32(), Type::f32()});
    Value* s_ptr = kb.arg(0);
    Value* k_ptr = kb.arg(1);
    Value* t_ptr = kb.arg(2);
    Value* out_ptr = kb.arg(3);
    Value* count = kb.arg(4);
    // The risk-free rate and volatility are `uniform` parameters: lowered
    // through the Figure-9 broadcast idiom.
    Value* r_b = kb.uniform(kb.arg(5), "r_broadcast");
    Value* v_b = kb.uniform(kb.arg(6), "v_broadcast");

    auto cnd = [&](ForeachCtx& ctx, Value* d) {
      ir::IRBuilder& b = ctx.b();
      Value* abs_d = kb.intrinsic_call(IntrinsicId::Fabs, d);
      // inv_k = 1 / (1 + 0.2316419 |d|)
      Value* denom = b.fadd(kb.vconst_f32(1.0f),
                            b.fmul(kb.vconst_f32(kCnd0), abs_d), "cnd_denom");
      Value* inv_k = b.fdiv(kb.vconst_f32(1.0f), denom, "cnd_k");
      // Horner evaluation of the degree-5 polynomial in inv_k.
      Value* poly = kb.vconst_f32(kCnd5);
      poly = b.fadd(kb.vconst_f32(kCnd4), b.fmul(inv_k, poly, "cnd_m4"),
                    "cnd_p4");
      poly = b.fadd(kb.vconst_f32(kCnd3), b.fmul(inv_k, poly, "cnd_m3"),
                    "cnd_p3");
      poly = b.fadd(kb.vconst_f32(kCnd2), b.fmul(inv_k, poly, "cnd_m2"),
                    "cnd_p2");
      poly = b.fadd(kb.vconst_f32(kCnd1), b.fmul(inv_k, poly, "cnd_m1"),
                    "cnd_p1");
      poly = b.fmul(inv_k, poly, "cnd_p0");
      // w = 1 - invsqrt2pi * exp(-d^2/2) * poly
      Value* d2 = b.fmul(d, d, "cnd_d2");
      Value* expo = kb.intrinsic_call(
          IntrinsicId::Exp,
          b.fmul(kb.vconst_f32(-0.5f), d2, "cnd_e_arg"));
      Value* w = b.fsub(
          kb.vconst_f32(1.0f),
          b.fmul(b.fmul(kb.vconst_f32(kInvSqrt2Pi), expo, "cnd_ne"), poly,
                 "cnd_nep"),
          "cnd_w");
      // d < 0 -> 1 - w
      Value* negative =
          b.fcmp(ir::FCmpPred::OLT, d, kb.vconst_f32(0.0f), "cnd_neg");
      return b.select(negative, b.fsub(kb.vconst_f32(1.0f), w, "cnd_1mw"), w,
                      "cnd");
    };

    kb.foreach_loop(kb.b().i32_const(0), count, [&](ForeachCtx& ctx) {
      ir::IRBuilder& b = ctx.b();
      Value* s = ctx.load(Type::f32(), s_ptr);
      Value* k = ctx.load(Type::f32(), k_ptr);
      Value* t = ctx.load(Type::f32(), t_ptr);
      Value* sqrt_t = kb.intrinsic_call(IntrinsicId::Sqrt, t);
      Value* log_sk =
          kb.intrinsic_call(IntrinsicId::Log, b.fdiv(s, k, "sk"));
      Value* v2_half = b.fmul(kb.vconst_f32(0.5f), b.fmul(v_b, v_b, "v2"),
                              "v2_half");
      Value* drift = b.fmul(b.fadd(r_b, v2_half, "mu"), t, "drift");
      Value* vol_t = b.fmul(v_b, sqrt_t, "vol_t");
      Value* d1 = b.fdiv(b.fadd(log_sk, drift, "num"), vol_t, "d1");
      Value* d2 = b.fsub(d1, vol_t, "d2");
      Value* n1 = cnd(ctx, d1);
      Value* n2 = cnd(ctx, d2);
      Value* discount = kb.intrinsic_call(
          IntrinsicId::Exp,
          b.fmul(b.fneg(r_b, "neg_r"), t, "rt"));
      Value* price = b.fsub(b.fmul(s, n1, "sn1"),
                            b.fmul(b.fmul(k, discount, "kd"), n2, "kn2"),
                            "price");
      ctx.store(price, out_ptr);
    });
    kb.finish();
    spec.entry = spec.module->find_function("blackscholes_ispc");

    const Inputs in = make_inputs(input);
    const std::uint64_t s_base = alloc_f32(spec.arena, "s", in.s);
    const std::uint64_t k_base = alloc_f32(spec.arena, "k", in.k);
    const std::uint64_t t_base = alloc_f32(spec.arena, "t", in.t);
    const std::uint64_t out_base = alloc_f32_zero(spec.arena, "price", n);
    spec.args = {interp::RtVal::ptr(s_base), interp::RtVal::ptr(k_base),
                 interp::RtVal::ptr(t_base), interp::RtVal::ptr(out_base),
                 interp::RtVal::i32(static_cast<std::int32_t>(n)),
                 interp::RtVal::f32(kRiskFree),
                 interp::RtVal::f32(kVolatility)};
    spec.output_regions = {"price"};
    return spec;
  }

  std::vector<RegionRef> reference(const Target&,
                                   unsigned input) const override {
    const Inputs in = make_inputs(input);
    RegionRef ref;
    ref.region = "price";
    ref.f32.reserve(in.s.size());
    for (std::size_t i = 0; i < in.s.size(); ++i) {
      ref.f32.push_back(blackscholes_call_ref(in.s[i], in.k[i], in.t[i],
                                              kRiskFree, kVolatility));
    }
    return {ref};
  }
};

float cnd_ref(float d) {
  const float abs_d = std::fabs(d);
  const float inv_k = 1.0f / (1.0f + kCnd0 * abs_d);
  float poly = kCnd5;
  poly = kCnd4 + inv_k * poly;
  poly = kCnd3 + inv_k * poly;
  poly = kCnd2 + inv_k * poly;
  poly = kCnd1 + inv_k * poly;
  poly = inv_k * poly;
  const float w =
      1.0f - kInvSqrt2Pi * std::exp(-0.5f * (d * d)) * poly;
  return d < 0.0f ? 1.0f - w : w;
}

}  // namespace

float blackscholes_call_ref(float s, float k, float t, float r, float v) {
  const float sqrt_t = std::sqrt(t);
  const float log_sk = std::log(s / k);
  const float drift = (r + 0.5f * (v * v)) * t;
  const float vol_t = v * sqrt_t;
  const float d1 = (log_sk + drift) / vol_t;
  const float d2 = d1 - vol_t;
  return s * cnd_ref(d1) - k * std::exp(-r * t) * cnd_ref(d2);
}

const Benchmark& blackscholes_benchmark() {
  static const Blackscholes instance;
  return instance;
}

}  // namespace vulfi::kernels
