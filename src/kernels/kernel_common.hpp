// Shared helpers for kernel construction: deterministic input generation
// and arena region setup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/arena.hpp"
#include "support/rng.hpp"

namespace vulfi::kernels {

/// Deterministic pseudo-random f32 inputs in [lo, hi).
std::vector<float> random_f32(std::size_t count, std::uint64_t seed,
                              float lo = 0.0f, float hi = 1.0f);

/// Deterministic pseudo-random i32 inputs in [lo, hi].
std::vector<std::int32_t> random_i32(std::size_t count, std::uint64_t seed,
                                     std::int32_t lo, std::int32_t hi);

/// Allocates a named region sized for `values` and writes them.
std::uint64_t alloc_f32(interp::Arena& arena, const std::string& name,
                        const std::vector<float>& values);
std::uint64_t alloc_i32(interp::Arena& arena, const std::string& name,
                        const std::vector<std::int32_t>& values);
/// Allocates a zero-filled f32/i32 region of `count` elements.
std::uint64_t alloc_f32_zero(interp::Arena& arena, const std::string& name,
                             std::size_t count);
std::uint64_t alloc_i32_zero(interp::Arena& arena, const std::string& name,
                             std::size_t count);

}  // namespace vulfi::kernels
