#include "support/table.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace vulfi {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VULFI_ASSERT(!headers_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  VULFI_ASSERT(cells.size() == headers_.size(),
               "TextTable row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 != row.size()) line += "  ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 != widths.size() ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace vulfi
