#include "support/str.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace vulfi {

std::string strf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  VULFI_ASSERT(needed >= 0, "strf: formatting error");
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string with_commas(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string pct(double fraction, int decimals) {
  return strf("%.*f%%", decimals, fraction * 100.0);
}

}  // namespace vulfi
