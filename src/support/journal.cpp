#include "support/journal.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi {

namespace {

// ",\"fnv\":\"" + 16 hex digits + "\"}" — the sealed suffix length.
constexpr std::string_view kFnvPrefix = ",\"fnv\":\"";
constexpr std::size_t kSealSuffixBytes = kFnvPrefix.size() + 16 + 2;

bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

}  // namespace

std::string journal_seal(const std::string& payload) {
  VULFI_ASSERT(payload.size() >= 2 && payload.front() == '{' &&
                   payload.back() == '}',
               "journal payload must be a JSON object");
  std::string sealed = payload.substr(0, payload.size() - 1);
  sealed += kFnvPrefix;
  sealed += strf("%016llx",
                 static_cast<unsigned long long>(fnv1a64(payload)));
  sealed += "\"}";
  return sealed;
}

std::optional<std::string> journal_unseal(std::string_view line) {
  if (line.size() < kSealSuffixBytes + 2) return std::nullopt;
  const std::size_t suffix_at = line.size() - kSealSuffixBytes;
  if (line.substr(suffix_at, kFnvPrefix.size()) != kFnvPrefix) {
    return std::nullopt;
  }
  if (line.substr(line.size() - 2) != "\"}") return std::nullopt;

  const std::string_view hex = line.substr(suffix_at + kFnvPrefix.size(), 16);
  std::uint64_t want = 0;
  for (char c : hex) {
    if (!is_hex(c)) return std::nullopt;
    want = (want << 4) |
           static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }

  std::string payload(line.substr(0, suffix_at));
  payload += '}';
  if (fnv1a64(payload) != want) return std::nullopt;
  return payload;
}

JournalRecovery recover_journal(const std::string& path) {
  JournalRecovery out;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) return out;
  out.file_existed = true;

  std::string contents;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(file);

  std::size_t cursor = 0;
  while (cursor < contents.size()) {
    const std::size_t newline = contents.find('\n', cursor);
    // A final line without its newline is a torn write: drop it.
    if (newline == std::string::npos) break;
    auto payload = journal_unseal(
        std::string_view(contents).substr(cursor, newline - cursor));
    if (!payload) break;
    out.records.push_back(std::move(*payload));
    cursor = newline + 1;
  }
  out.valid_bytes = cursor;
  out.tail_dropped = cursor < contents.size();
  return out;
}

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const std::string& path, std::uint64_t keep_bytes,
                         std::string* error) {
  close();
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    if (static_cast<std::uint64_t>(st.st_size) > keep_bytes &&
        ::truncate(path.c_str(), static_cast<off_t>(keep_bytes)) != 0) {
      if (error) {
        *error = strf("cannot roll back journal '%s': %s", path.c_str(),
                      std::strerror(errno));
      }
      return false;
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (!file_) {
    if (error) {
      *error = strf("cannot open journal '%s': %s", path.c_str(),
                    std::strerror(errno));
    }
    return false;
  }
  path_ = path;
  return true;
}

bool JournalWriter::append(const std::string& payload) {
  if (!file_) return false;
  const std::string line = journal_seal(payload) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return false;
  }
  if (std::fflush(file_) != 0) return false;
  switch (sync_) {
    case JournalSync::Always:
      return ::fsync(fileno(file_)) == 0;
    case JournalSync::Batch:
      if (++unsynced_records_ < kBatchSyncEvery) return true;
      unsynced_records_ = 0;
      return ::fsync(fileno(file_)) == 0;
    case JournalSync::Off:
      return true;
  }
  return true;
}

bool JournalWriter::sync_now() {
  if (!file_) return false;
  if (std::fflush(file_) != 0) return false;
  unsynced_records_ = 0;
  return ::fsync(fileno(file_)) == 0;
}

void JournalWriter::close() {
  if (file_) {
    // An orderly close under the Batch policy must not leave a tail of
    // records durable only in the page cache.
    if (sync_ == JournalSync::Batch && unsynced_records_ > 0) sync_now();
    std::fclose(file_);
    file_ = nullptr;
  }
  path_.clear();
  unsynced_records_ = 0;
}

std::optional<JournalSync> journal_sync_from_name(std::string_view name) {
  if (name == "always") return JournalSync::Always;
  if (name == "batch") return JournalSync::Batch;
  if (name == "off") return JournalSync::Off;
  return std::nullopt;
}

const char* journal_sync_name(JournalSync sync) {
  switch (sync) {
    case JournalSync::Always: return "always";
    case JournalSync::Batch: return "batch";
    case JournalSync::Off: return "off";
  }
  return "?";
}

std::optional<std::uint64_t> journal_u64(const std::string& payload,
                                         const char* key) {
  const std::string needle = strf("\"%s\":", key);
  const std::size_t at = payload.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t cursor = at + needle.size();
  if (cursor >= payload.size() || payload[cursor] < '0' ||
      payload[cursor] > '9') {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  while (cursor < payload.size() && payload[cursor] >= '0' &&
         payload[cursor] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(payload[cursor] - '0');
    cursor += 1;
  }
  return value;
}

std::optional<std::string> journal_str(const std::string& payload,
                                       const char* key) {
  const std::string needle = strf("\"%s\":\"", key);
  const std::size_t at = payload.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  const std::size_t end = payload.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return payload.substr(begin, end - begin);
}

std::string double_hex(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return strf("%016llx", static_cast<unsigned long long>(bits));
}

std::optional<double> double_from_hex(std::string_view hex) {
  if (hex.size() != 16) return std::nullopt;
  std::uint64_t bits = 0;
  for (char c : hex) {
    if (!is_hex(c)) return std::nullopt;
    bits = (bits << 4) |
           static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace vulfi
