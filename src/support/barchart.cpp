#include "support/barchart.hpp"

#include <algorithm>
#include <cmath>

namespace vulfi {

std::string stacked_bar(const std::vector<BarSegment>& segments,
                        unsigned width) {
  if (width == 0) return "[]";
  // Largest-remainder apportionment of cells to segments.
  struct Share {
    std::size_t index;
    unsigned cells;
    double remainder;
  };
  std::vector<Share> shares;
  unsigned used = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const double fraction =
        std::clamp(segments[i].fraction, 0.0, 1.0);
    const double exact = fraction * width;
    Share share;
    share.index = i;
    share.cells = static_cast<unsigned>(exact);
    share.remainder = exact - share.cells;
    used += share.cells;
    shares.push_back(share);
  }
  // Distribute leftover cells (from flooring) to the largest remainders,
  // but never exceed the bar width.
  double total = 0.0;
  for (const BarSegment& segment : segments) {
    total += std::clamp(segment.fraction, 0.0, 1.0);
  }
  const unsigned target = static_cast<unsigned>(
      std::lround(std::min(total, 1.0) * width));
  std::vector<Share*> by_remainder;
  for (Share& share : shares) by_remainder.push_back(&share);
  std::sort(by_remainder.begin(), by_remainder.end(),
            [](const Share* a, const Share* b) {
              return a->remainder > b->remainder;
            });
  for (Share* share : by_remainder) {
    if (used >= target) break;
    share->cells += 1;
    used += 1;
  }

  std::string out = "[";
  unsigned written = 0;
  for (const Share& share : shares) {
    const unsigned cells = std::min(share.cells, width - written);
    out.append(cells, segments[share.index].glyph);
    written += cells;
  }
  out.append(width - written, ' ');
  out += ']';
  return out;
}

std::string bar(double fraction, unsigned width, char glyph) {
  return stacked_bar({{fraction, glyph}}, width);
}

}  // namespace vulfi
