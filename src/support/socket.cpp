#include "support/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "support/str.hpp"

namespace vulfi {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Waits for `events` on `fd`; false on timeout or error. Retries EINTR
/// so a SIGINT aimed at the cancellation token does not abort the wait —
/// against a fixed deadline, so a signal storm (a supervisor restarting
/// workers, a test pounding SIGUSR1) shortens the remaining wait instead
/// of restarting it; the timeout can never stretch unboundedly.
bool wait_for(int fd, short events, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const bool forever = timeout_ms < 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(forever ? 0 : timeout_ms);
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = events;
  int remaining_ms = timeout_ms;
  for (;;) {
    const int got = ::poll(&pfd, 1, remaining_ms);
    if (got > 0) return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    if (got == 0) return false;
    if (errno != EINTR) return false;
    if (!forever) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return false;
      remaining_ms = static_cast<int>(left.count());
    }
  }
}

bool fill_addr(const std::string& path, sockaddr_un& addr,
               std::string* error) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    if (error) {
      *error = strf("socket path '%s' is empty or longer than %zu bytes",
                    path.c_str(), sizeof(addr.sun_path) - 1);
    }
    return false;
  }
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  return true;
}

}  // namespace

// --- frame codec ----------------------------------------------------------

std::string frame_encode(std::string_view payload) {
  std::string frame =
      strf("%08zx:", payload.size());
  frame.append(payload.data(), payload.size());
  frame.push_back('\n');
  return frame;
}

FrameDecode frame_decode(std::string_view buffer, std::size_t max_payload) {
  FrameDecode out;
  // Validate whatever prefix of the 8-hex-digit length has arrived; a
  // non-hex byte can never grow into a valid header.
  const std::size_t header_have = std::min<std::size_t>(buffer.size(), 8);
  std::size_t length = 0;
  for (std::size_t i = 0; i < header_have; ++i) {
    const int digit = hex_digit(buffer[i]);
    if (digit < 0) {
      out.status = FrameDecode::Status::Malformed;
      return out;
    }
    length = (length << 4) | static_cast<std::size_t>(digit);
  }
  if (buffer.size() < kFrameHeaderBytes) {
    out.status = FrameDecode::Status::NeedMore;
    return out;
  }
  if (buffer[8] != ':') {
    out.status = FrameDecode::Status::Malformed;
    return out;
  }
  if (length > max_payload) {
    out.status = FrameDecode::Status::Oversized;
    return out;
  }
  const std::size_t total = kFrameHeaderBytes + length + 1;
  if (buffer.size() < total) {
    out.status = FrameDecode::Status::NeedMore;
    return out;
  }
  if (buffer[total - 1] != '\n') {
    out.status = FrameDecode::Status::Malformed;
    return out;
  }
  out.status = FrameDecode::Status::Ok;
  out.payload.assign(buffer.substr(kFrameHeaderBytes, length));
  out.consumed = total;
  return out;
}

// --- UnixConn -------------------------------------------------------------

UnixConn::~UnixConn() { close(); }

UnixConn::UnixConn(UnixConn&& other) noexcept
    : fd_(other.fd_), inbox_(std::move(other.inbox_)) {
  other.fd_ = -1;
}

UnixConn& UnixConn::operator=(UnixConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    inbox_ = std::move(other.inbox_);
    other.fd_ = -1;
  }
  return *this;
}

UnixConn UnixConn::connect_to(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(path, addr, error)) return UnixConn();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = strf("socket(): %s", std::strerror(errno));
    return UnixConn();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error) {
      *error = strf("connect('%s'): %s", path.c_str(), std::strerror(errno));
    }
    ::close(fd);
    return UnixConn();
  }
  return UnixConn(fd);
}

bool UnixConn::send_all(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t got = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    sent += static_cast<std::size_t>(got);
  }
  return true;
}

bool UnixConn::send_frame(std::string_view payload) {
  return send_all(frame_encode(payload));
}

std::optional<std::string> UnixConn::recv_frame(int timeout_ms,
                                                std::string* why) {
  if (fd_ < 0) {
    if (why) *why = "error";
    return std::nullopt;
  }
  for (;;) {
    const FrameDecode decoded = frame_decode(inbox_);
    switch (decoded.status) {
      case FrameDecode::Status::Ok:
        inbox_.erase(0, decoded.consumed);
        return decoded.payload;
      case FrameDecode::Status::Malformed:
        if (why) *why = "malformed";
        return std::nullopt;
      case FrameDecode::Status::Oversized:
        if (why) *why = "oversized";
        return std::nullopt;
      case FrameDecode::Status::NeedMore:
        break;
    }
    if (!wait_for(fd_, POLLIN, timeout_ms)) {
      if (why) *why = "timeout";
      return std::nullopt;
    }
    char buffer[1 << 14];
    const ssize_t got = ::recv(fd_, buffer, sizeof buffer, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (why) *why = "error";
      return std::nullopt;
    }
    if (got == 0) {
      // Peer closed with a partial (torn) frame pending — or cleanly.
      if (why) *why = "closed";
      return std::nullopt;
    }
    inbox_.append(buffer, static_cast<std::size_t>(got));
  }
}

bool UnixConn::peer_closed(int timeout_ms) {
  if (fd_ < 0) return true;
  if (!wait_for(fd_, POLLIN, timeout_ms)) return false;  // quiet, not closed
  char probe;
  for (;;) {
    const ssize_t got = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (got == 0) return true;
    if (got < 0) {
      if (errno == EINTR) continue;  // interrupted probe: ask again
      return errno != EAGAIN && errno != EWOULDBLOCK;
    }
    return false;
  }
}

void UnixConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbox_.clear();
}

// --- UnixListener ---------------------------------------------------------

UnixListener::~UnixListener() { close(); }

bool UnixListener::listen_on(const std::string& path, std::string* error) {
  close();
  sockaddr_un addr;
  if (!fill_addr(path, addr, error)) return false;

  // A stale socket file (daemon crashed) blocks bind(); a live one must
  // win. Distinguish by connecting: refused/absent means stale.
  {
    std::string probe_error;
    UnixConn probe = UnixConn::connect_to(path, &probe_error);
    if (probe.ok()) {
      if (error) {
        *error = strf("'%s' already has a live server", path.c_str());
      }
      return false;
    }
    ::unlink(path.c_str());
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = strf("socket(): %s", std::strerror(errno));
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error) {
      *error = strf("bind('%s'): %s", path.c_str(), std::strerror(errno));
    }
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error) {
      *error = strf("listen('%s'): %s", path.c_str(), std::strerror(errno));
    }
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  fd_ = fd;
  path_ = path;
  return true;
}

UnixConn UnixListener::accept_one(int timeout_ms) {
  if (fd_ < 0) return UnixConn();
  if (!wait_for(fd_, POLLIN, timeout_ms)) return UnixConn();
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return UnixConn(fd);
    // EINTR: a signal beat the accept; the pending connection is still
    // queued, so take it now rather than dropping it on the floor.
    // (ECONNABORTED consumed the queued entry — retrying would block on
    // an empty queue, so it falls through to the caller's accept loop.)
    if (errno == EINTR) continue;
    return UnixConn();
  }
}

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

}  // namespace vulfi
