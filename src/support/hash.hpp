// FNV-1a 64-bit hashing, shared across the library.
//
// One implementation serves every fingerprint in the system: journal
// record checksums (support/journal.hpp), fuzz-spec fingerprints
// (fuzz/kernel_gen.hpp), and the canonical IR content hash of the
// incremental-analysis layer (analysis/propagation.hpp). The constants
// are the standard FNV-1a 64 parameters; the hash is stable across
// platforms and builds, which is what lets checkpoint files and summary
// stores written on one host verify on another.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vulfi {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a64(const void* data, std::size_t size);
std::uint64_t fnv1a64(std::string_view text);

/// Streaming FNV-1a 64 hasher for composite keys (IR content hashes,
/// config fingerprints). Multi-byte integers are folded little-endian
/// byte by byte, so a stream hashes identically on every platform.
class Fnv1a {
 public:
  Fnv1a& bytes(const void* data, std::size_t size);
  Fnv1a& u8(std::uint8_t value);
  Fnv1a& u32(std::uint32_t value);
  Fnv1a& u64(std::uint64_t value);
  /// Hashes the length, then the bytes — "ab" + "c" and "a" + "bc"
  /// produce different streams.
  Fnv1a& str(std::string_view text);

  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = kFnvOffsetBasis;
};

/// 16 lowercase hex digits (the journal "fnv" field spelling).
std::string hash_hex(std::uint64_t value);
/// Parses exactly 16 hex digits; false on anything else.
bool hash_from_hex(std::string_view hex, std::uint64_t* out);

}  // namespace vulfi
