// Error handling primitives shared by every VULFI subsystem.
//
// The library distinguishes two failure classes:
//  * programming errors (broken invariants inside this library) — these
//    abort via VULFI_ASSERT / vulfi::fatal so bugs surface immediately;
//  * simulated-program failures (the *interpreted* IR program trapping,
//    e.g. an out-of-bounds access caused by an injected fault) — these are
//    ordinary values of type interp::Trap and never abort the host.
#pragma once

#include <string>
#include <string_view>

namespace vulfi {

/// Print `msg` with source location context to stderr and abort.
/// Used for internal invariant violations only — never for failures of the
/// simulated program under fault injection.
[[noreturn]] void fatal(std::string_view msg, const char* file, int line);

/// Abort with a message if `cond` is false. Active in all build types:
/// fault-injection research tooling must fail loudly, not optimize away its
/// own self-checks.
#define VULFI_ASSERT(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) ::vulfi::fatal((msg), __FILE__, __LINE__);              \
  } while (false)

#define VULFI_UNREACHABLE(msg) ::vulfi::fatal((msg), __FILE__, __LINE__)

}  // namespace vulfi
