// Bit-level utilities used by the fault-injection runtime.
//
// The paper's fault model is a single-bit flip at a random bit position of
// a register holding an integer or floating-point value (§II-B). These
// helpers implement the flip on the IEEE-754 bit pattern, not on the
// numeric value, so flips can produce NaNs/denormals/sign changes exactly
// as a hardware upset would.
#pragma once

#include <bit>
#include <cstdint>

namespace vulfi {

inline float flip_bit(float value, unsigned bit) {
  const auto raw = std::bit_cast<std::uint32_t>(value);
  return std::bit_cast<float>(raw ^ (std::uint32_t{1} << (bit & 31u)));
}

inline double flip_bit(double value, unsigned bit) {
  const auto raw = std::bit_cast<std::uint64_t>(value);
  return std::bit_cast<double>(raw ^ (std::uint64_t{1} << (bit & 63u)));
}

inline std::uint64_t flip_bit(std::uint64_t value, unsigned bit) {
  return value ^ (std::uint64_t{1} << (bit & 63u));
}

inline std::int64_t flip_bit(std::int64_t value, unsigned bit) {
  return static_cast<std::int64_t>(
      flip_bit(static_cast<std::uint64_t>(value), bit));
}

inline std::uint32_t flip_bit(std::uint32_t value, unsigned bit) {
  return value ^ (std::uint32_t{1} << (bit & 31u));
}

/// Flips `bit` within the low `width_bits` bits of `value`, leaving the
/// rest untouched. Used for sub-64-bit integer registers (i1/i8/i16/i32):
/// the flip position is always drawn from the register's real width.
inline std::uint64_t flip_bit_in_width(std::uint64_t value, unsigned bit,
                                       unsigned width_bits) {
  if (width_bits == 0 || width_bits > 64) width_bits = 64;
  return value ^ (std::uint64_t{1} << (bit % width_bits));
}

}  // namespace vulfi
