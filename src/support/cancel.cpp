#include "support/cancel.hpp"

#include "support/error.hpp"

namespace vulfi {

namespace {

// The handler may run on any thread at any instruction; it may only touch
// lock-free atomics and call async-signal-safe functions.
std::atomic<CancellationToken*> g_signal_token{nullptr};

void handle_cancel_signal(int sig) {
  CancellationToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (!token) return;
  if (sig == SIGINT && token->cancelled()) {
    // Second ^C: the user wants out now, cooperative or not.
    std::signal(SIGINT, SIG_DFL);
    std::raise(SIGINT);
    return;
  }
  token->request_cancel();
}

}  // namespace

ScopedSignalCancellation::ScopedSignalCancellation(CancellationToken& token) {
  CancellationToken* expected = nullptr;
  VULFI_ASSERT(g_signal_token.compare_exchange_strong(expected, &token),
               "only one ScopedSignalCancellation may be live at a time");
  struct sigaction action {};
  action.sa_handler = handle_cancel_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocked read should come back with EINTR so the
  // process notices the cancellation promptly.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, &old_int_);
  sigaction(SIGTERM, &action, &old_term_);
}

ScopedSignalCancellation::~ScopedSignalCancellation() {
  sigaction(SIGINT, &old_int_, nullptr);
  sigaction(SIGTERM, &old_term_, nullptr);
  g_signal_token.store(nullptr, std::memory_order_relaxed);
}

}  // namespace vulfi
