// printf-style string formatting (libstdc++ 12 ships no <format>).
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace vulfi {

/// snprintf into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strf(const char* fmt, ...);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// "12,345,678" — thousands separators for table output.
std::string with_commas(unsigned long long value);

/// Fixed-point percentage, e.g. pct(0.4235) == "42.35%".
std::string pct(double fraction, int decimals = 2);

}  // namespace vulfi
