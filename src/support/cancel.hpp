// Cooperative cancellation for long-running campaigns.
//
// A fault-injection campaign must be interruptible without losing its
// checkpointed history: workers drain the experiment they are executing,
// stop taking new work, and the coordinator performs a final checkpoint
// flush before returning with the run marked interrupted. The primitive
// is a lock-free flag that signal handlers may set (async-signal-safe)
// and worker loops poll between experiments.
#pragma once

#include <atomic>
#include <csignal>

namespace vulfi {

/// One-way cancellation flag. request_cancel() is async-signal-safe
/// (a relaxed store on a lock-free atomic), so SIGINT/SIGTERM handlers
/// can call it directly; cancelled() is polled by worker loops between
/// experiments — cancellation is cooperative, never preemptive.
class CancellationToken {
 public:
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token (tests resume with the same config object).
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handlers require a lock-free cancellation flag");

/// RAII SIGINT/SIGTERM → CancellationToken bridge. The first signal
/// requests cooperative cancellation (drain, flush, exit with the
/// interrupted code); a second SIGINT restores the default disposition
/// and re-raises, so a wedged process can still be force-quit with ^C^C.
/// At most one instance may be live at a time; previous dispositions are
/// restored on destruction.
class ScopedSignalCancellation {
 public:
  explicit ScopedSignalCancellation(CancellationToken& token);
  ~ScopedSignalCancellation();
  ScopedSignalCancellation(const ScopedSignalCancellation&) = delete;
  ScopedSignalCancellation& operator=(const ScopedSignalCancellation&) =
      delete;

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

}  // namespace vulfi
