#include "support/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace vulfi {

void fatal(std::string_view msg, const char* file, int line) {
  std::fprintf(stderr, "vulfi fatal error at %s:%d: %.*s\n", file, line,
               static_cast<int>(msg.size()), msg.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace vulfi
