// Deterministic pseudo-random number generation for fault-injection
// campaigns.
//
// Fault-injection experiments must be reproducible: the same seed must pick
// the same dynamic fault site and the same bit position on every run and on
// every platform. std::mt19937 + std::uniform_int_distribution would give
// per-libstdc++ results, so we implement xoshiro256** (Blackman/Vigna) with
// our own bias-free bounded sampling.
#pragma once

#include <array>
#include <cstdint>

namespace vulfi {

/// splitmix64 — used to expand a single user seed into xoshiro state.
/// Advances `state` and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// Counter-based stream derivation for parallel campaigns: maps
/// (master_seed, campaign, experiment) to an independent 64-bit seed by
/// chaining splitmix64 finalizers over the three words. The result is a
/// pure function of its inputs, so every experiment owns a private RNG
/// stream regardless of which thread runs it or in which order —
/// the foundation of the serial ≡ parallel determinism guarantee.
std::uint64_t derive_stream_seed(std::uint64_t master_seed,
                                 std::uint64_t campaign,
                                 std::uint64_t experiment);

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire-style rejection; bias-free.
  /// bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Creates an independent child stream; deterministic given this
  /// generator's state. Used to give each campaign its own stream.
  Rng split();

  /// 2^128 steps of the underlying sequence — canonical xoshiro jump,
  /// used to derive non-overlapping parallel streams.
  void jump();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace vulfi
