// Crash-safe append-only journal (checksummed JSONL).
//
// Long statistical campaigns must survive SIGINT, OOM kills, and node
// preemption: losing campaign 38/40 to a signal discards hours of work.
// The journal is the durability primitive behind campaign checkpointing
// (vulfi/campaign.hpp): one JSON object per line, each sealed with an
// FNV-1a 64-bit checksum of the payload embedded as a trailing "fnv"
// field. Records are appended and flushed (fsync) at every checkpoint
// boundary, so the on-disk prefix is always a valid history; recovery
// scans the file, keeps the longest prefix of verifiable records, and
// rolls back (truncates) anything after the last valid record — a
// torn final write or a corrupted tail degrades to "redo the last
// campaign", never to a crash or silently wrong statistics.
//
// The journal layer is content-agnostic: it seals, verifies, and
// recovers opaque JSON payloads. The flat-field helpers below parse the
// payloads this library writes itself; they are not a general JSON
// parser.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/hash.hpp"  // fnv1a64 — the sealing checksum

namespace vulfi {

/// Seals a JSON object payload (must be "{...}") into one journal line:
/// the payload with `,"fnv":"<16 hex>"` spliced before the closing brace,
/// where the checksum covers the original payload bytes. The result is
/// itself valid JSON.
std::string journal_seal(const std::string& payload);

/// Verifies one journal line and returns the original payload, or
/// std::nullopt if the line is malformed or fails its checksum.
std::optional<std::string> journal_unseal(std::string_view line);

struct JournalRecovery {
  /// Verified payloads (checksum field stripped), in file order.
  std::vector<std::string> records;
  /// Byte length of the valid prefix: every byte past this belongs to a
  /// truncated or corrupt tail and must be discarded before appending.
  std::uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes existed and were dropped.
  bool tail_dropped = false;
  bool file_existed = false;
};

/// Reads a journal, verifying record by record; stops at the first line
/// that is torn (no trailing newline) or fails its checksum. Missing file
/// is not an error — it recovers to an empty journal.
JournalRecovery recover_journal(const std::string& path);

/// Durability policy for journal appends. The checksummed format makes
/// every policy crash-*safe* (recovery drops a torn tail); the policy
/// only decides how many trailing records a crash may cost:
///   Always — fsync after every record; a record that append() accepted
///            survives any crash. Per-record fsync dominates checkpoint
///            overhead on fast campaigns (measured in perf_microbench).
///   Batch  — fsync every kBatchSyncEvery records and on close; a crash
///            loses at most the unsynced tail of a batch.
///   Off    — flush to the OS only; a host crash may lose everything the
///            kernel had not written back. Process death alone (signal,
///            OOM kill) loses nothing — the data is already in the page
///            cache.
enum class JournalSync { Always, Batch, Off };

/// Parses "always" | "batch" | "off" (the --fsync CLI values).
std::optional<JournalSync> journal_sync_from_name(std::string_view name);
const char* journal_sync_name(JournalSync sync);

/// Append-only journal writer. Opening truncates the file to a caller-
/// supplied valid prefix (recover_journal's valid_bytes) so a corrupt
/// tail is rolled back exactly once, then every append seals, writes,
/// flushes, and (under the default Always policy) fsyncs one line —
/// after append() returns, the record survives a crash.
class JournalWriter {
 public:
  /// Batch policy: records between fsyncs.
  static constexpr unsigned kBatchSyncEvery = 16;

  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending after truncating it to `keep_bytes`
  /// (creates the file if missing). On failure returns false and, if
  /// `error` is non-null, describes why.
  bool open(const std::string& path, std::uint64_t keep_bytes,
            std::string* error = nullptr);

  /// Durability policy (default Always); see JournalSync.
  void set_sync_policy(JournalSync sync) { sync_ = sync; }
  JournalSync sync_policy() const { return sync_; }
  /// Legacy toggle kept for benchmarks: true = Always, false = Off.
  void set_sync(bool sync) {
    sync_ = sync ? JournalSync::Always : JournalSync::Off;
  }

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Seals `payload` and appends it as one line. Returns false if the
  /// write or flush failed (disk full, file closed underneath us).
  bool append(const std::string& payload);

  /// Forces an fsync of everything appended so far (no-op when already
  /// durable). Batch-policy writers call this at clean shutdown so an
  /// orderly exit never loses records.
  bool sync_now();

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  JournalSync sync_ = JournalSync::Always;
  unsigned unsynced_records_ = 0;
};

// --- flat-field payload helpers -------------------------------------------
// Extract `"key":<u64>` / `"key":"<string>"` from payloads written by this
// library (keys are unique per record and values contain no escapes).

std::optional<std::uint64_t> journal_u64(const std::string& payload,
                                         const char* key);
std::optional<std::string> journal_str(const std::string& payload,
                                       const char* key);

/// Bit-exact double round-trip through 16 hex digits; used for stats
/// fields where "close" is not "resumable" (margins, samples).
std::string double_hex(double value);
std::optional<double> double_from_hex(std::string_view hex);

}  // namespace vulfi
