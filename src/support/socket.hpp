// Unix-domain socket transport + length-prefixed frame codec for the
// campaign service (serve/).
//
// The wire protocol is length-prefixed JSONL: every message is one JSON
// object transmitted as a frame
//
//   <8 lowercase hex digits: payload byte length> ':' <payload bytes> '\n'
//
// The textual prefix keeps captures human-readable (a frame stream is
// almost a JSONL file) while still letting the receiver allocate exactly
// once and reject oversized frames before reading their bodies. Framing
// is deliberately independent of JSON parsing: a frame either decodes to
// its exact payload bytes or is rejected — malformed, oversized, and
// truncated frames all fail without crashing, which the protocol fuzz
// suite asserts over a seed corpus.
//
// The socket layer is minimal and blocking: a listener (bind/listen/
// accept) and a connection (connect/send/recv with poll-based timeouts).
// All writes use send(MSG_NOSIGNAL) so a peer that disconnects
// mid-campaign surfaces as an error return, never SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace vulfi {

// --- frame codec ----------------------------------------------------------

/// Frames accepted by default: 1 MiB of payload. Large enough for any
/// campaign statistics message, small enough that a hostile length prefix
/// cannot make the receiver allocate gigabytes.
constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Bytes of frame overhead around a payload: 8 hex digits + ':' ... '\n'.
constexpr std::size_t kFrameHeaderBytes = 9;

/// Encodes `payload` as one frame.
std::string frame_encode(std::string_view payload);

/// Result of decoding one frame from the front of a byte buffer.
struct FrameDecode {
  enum class Status {
    Ok,         ///< `payload` holds the frame; `consumed` bytes were used.
    NeedMore,   ///< The buffer holds a valid but incomplete prefix.
    Malformed,  ///< The prefix can never become a valid frame.
    Oversized,  ///< Valid header, but the declared length exceeds the cap.
  };
  Status status = Status::NeedMore;
  std::string payload;
  std::size_t consumed = 0;
};

/// Decodes the first frame of `buffer`. NeedMore means "read more bytes
/// and retry"; Malformed/Oversized mean the stream is poisoned and the
/// connection should be dropped (there is no way to resynchronize a
/// length-prefixed stream after a bad header).
FrameDecode frame_decode(std::string_view buffer,
                         std::size_t max_payload = kMaxFrameBytes);

// --- sockets --------------------------------------------------------------

/// A connected Unix-domain stream socket. Movable, closes on destruction.
class UnixConn {
 public:
  UnixConn() = default;
  explicit UnixConn(int fd) : fd_(fd) {}
  ~UnixConn();
  UnixConn(UnixConn&& other) noexcept;
  UnixConn& operator=(UnixConn&& other) noexcept;
  UnixConn(const UnixConn&) = delete;
  UnixConn& operator=(const UnixConn&) = delete;

  /// Connects to a listening socket at `path`. Invalid on failure (check
  /// ok()); `error` receives a description when provided.
  static UnixConn connect_to(const std::string& path,
                             std::string* error = nullptr);

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends all of `bytes` (MSG_NOSIGNAL). False on any error — including
  /// the peer having closed, which must never raise SIGPIPE.
  bool send_all(std::string_view bytes);

  /// Convenience: frame_encode + send_all.
  bool send_frame(std::string_view payload);

  /// Receives the next frame, buffering partial reads internally.
  /// Returns nullopt on peer close, malformed/oversized frame, timeout,
  /// or error; `why` (when provided) distinguishes them: "closed",
  /// "malformed", "oversized", "timeout", "error".
  std::optional<std::string> recv_frame(int timeout_ms = -1,
                                        std::string* why = nullptr);

  /// True when the peer has closed or errored the connection — a
  /// zero-byte read after poll reports readability. Consumes nothing
  /// (peeks), so pending frames are preserved. Used by the server to
  /// detect client disconnects while a campaign is in flight.
  bool peer_closed(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::string inbox_;  ///< Bytes received but not yet decoded.
};

/// A listening Unix-domain socket bound to a filesystem path. Unlinks the
/// path on destruction (the daemon owns its socket file).
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Binds and listens. Refuses to clobber a live socket: an existing
  /// path is only unlinked when nothing accepts connections on it.
  bool listen_on(const std::string& path, std::string* error = nullptr);

  bool ok() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Accepts one connection, waiting at most `timeout_ms` (-1 = forever).
  /// Invalid UnixConn on timeout or error.
  UnixConn accept_one(int timeout_ms = -1);

  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace vulfi
