#include "support/rng.hpp"

#include "support/error.hpp"

namespace vulfi {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream_seed(std::uint64_t master_seed,
                                 std::uint64_t campaign,
                                 std::uint64_t experiment) {
  // Three chained splitmix64 rounds; each input word is absorbed into the
  // state before the next round so that (c, e) and (e, c) land in
  // different streams even when c == e numerically.
  std::uint64_t state = master_seed;
  std::uint64_t mixed = splitmix64_next(state);
  state = mixed ^ campaign;
  mixed = splitmix64_next(state);
  state = mixed ^ experiment;
  return splitmix64_next(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
  // All-zero state is the one invalid xoshiro state; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  VULFI_ASSERT(bound != 0, "next_below: bound must be nonzero");
  // Lemire's multiply-shift with rejection of the biased low range.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  VULFI_ASSERT(lo <= hi, "next_in_range: lo must be <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 2^64 range (lo = INT64_MIN, hi = INT64_MAX).
  const std::uint64_t draw = (span == 0) ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double_in(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() {
  Rng child(next_u64());
  return child;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next_u64();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace vulfi
