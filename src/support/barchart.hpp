// Text-mode stacked bar charts.
//
// Figures 10-12 of the paper are stacked bar charts; the bench binaries
// render the same series as fixed-width ASCII bars alongside the numeric
// tables, so the regenerated "figure" is visually comparable at a glance.
#pragma once

#include <string>
#include <vector>

namespace vulfi {

/// One segment of a stacked bar: a fraction in [0,1] and its fill glyph.
struct BarSegment {
  double fraction = 0.0;
  char glyph = '#';
};

/// Renders segments left-to-right into a bar of `width` cells wrapped in
/// brackets, e.g. {0.5,'#'},{0.3,'.'} at width 10 -> "[#####...  ]".
/// Fractions are clamped to [0,1]; cells are apportioned by largest
/// remainder so the filled total is round(width * sum).
std::string stacked_bar(const std::vector<BarSegment>& segments,
                        unsigned width = 40);

/// A single-series bar (fraction of `width` filled with `glyph`).
std::string bar(double fraction, unsigned width = 40, char glyph = '#');

}  // namespace vulfi
