// Build identity: compiler, build type, and feature toggles.
//
// Two binaries that differ in compiler, optimization level, or sanitizer
// instrumentation are not interchangeable for resuming a checkpointed
// campaign — a sanitizer build reorders allocations and an optimizer
// change can alter libm rounding, either of which would let a resumed run
// silently mix histories from two different engines. The checkpoint
// journal therefore pins the writing binary's fingerprint into its header
// record, and resume refuses across mismatched fingerprints with a
// diagnostic naming both builds. `vulfi version` prints the same fields.
#pragma once

#include <string>

namespace vulfi {

/// Compiler identification as reported by the compiler itself
/// (__VERSION__), e.g. "12.2.0" prefixed per toolchain.
const char* compiler_version();

/// CMAKE_BUILD_TYPE the binary was compiled under ("RelWithDebInfo",
/// "Release", ...; "unknown" outside CMake).
const char* build_type();

/// Feature-toggle summary, e.g. "tsan=off asan=off". Sanitizer
/// instrumentation changes runtime behaviour enough to matter for
/// checkpoint compatibility, so the toggles are part of the fingerprint.
std::string feature_toggles();

/// One-line build fingerprint combining all of the above; stable for a
/// given binary, embedded in checkpoint-journal headers and reported by
/// `vulfi version` and the serve-protocol ping response.
std::string build_fingerprint();

}  // namespace vulfi
