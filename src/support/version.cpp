#include "support/version.hpp"

#include "support/str.hpp"

namespace vulfi {

const char* compiler_version() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown-compiler";
#endif
}

const char* build_type() {
#ifdef VULFI_BUILD_TYPE
  return VULFI_BUILD_TYPE;
#else
  return "unknown";
#endif
}

std::string feature_toggles() {
  const char* tsan =
#if defined(VULFI_TSAN_BUILD) || defined(__SANITIZE_THREAD__)
      "on";
#else
      "off";
#endif
  const char* asan =
#if defined(VULFI_ASAN_BUILD) || defined(__SANITIZE_ADDRESS__)
      "on";
#else
      "off";
#endif
  return strf("tsan=%s asan=%s", tsan, asan);
}

std::string build_fingerprint() {
  std::string fingerprint = strf("%s; %s; %s", compiler_version(),
                                 build_type(), feature_toggles().c_str());
  // The fingerprint is spliced verbatim into JSON string fields (journal
  // header, protocol ping); keep it free of JSON metacharacters.
  for (char& c : fingerprint) {
    if (c == '"' || c == '\\' || c == '\n') c = '\'';
  }
  return fingerprint;
}

}  // namespace vulfi
