// Statistics for fault-injection campaigns (paper §IV-D).
//
// The paper runs campaigns of 100 experiments each; a campaign's SDC rate
// is one random sample. Campaigns are repeated until (1) the sample
// distribution is normal or near-normal and (2) the 95%-confidence margin
// of error falls within ±3%. The margin of error uses "the standard
// t-value based formula" [Weiss, Elementary Statistics]. This header
// provides exactly those pieces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vulfi {

/// Welford-style online accumulator for mean/variance plus the third and
/// fourth central moments needed by the Jarque–Bera normality statistic.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean: s / sqrt(n).
  double std_error() const;
  /// Sample skewness g1; 0 when undefined.
  double skewness() const;
  /// Sample excess kurtosis g2; 0 when undefined.
  double excess_kurtosis() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
};

/// Two-sided critical value t*(confidence, df) of Student's t
/// distribution, e.g. students_t_critical(0.95, 19) ≈ 2.093.
/// Computed by bisection on the regularized incomplete beta function —
/// no table lookup, valid for any df >= 1.
double students_t_critical(double confidence, std::size_t df);

/// Margin of error for a sample mean at `confidence`:
///   t*(confidence, n-1) * s / sqrt(n).
/// Returns +inf for n < 2 (no margin can be claimed from one sample).
double margin_of_error(const OnlineStats& stats, double confidence);

/// Jarque–Bera normality statistic JB = n/6 (g1^2 + g2^2/4).
/// Under normality JB ~ chi^2(2); JB < 5.99 accepts normality at the 5%
/// level. `near_normal` applies that threshold.
double jarque_bera(const OnlineStats& stats);
bool near_normal(const OnlineStats& stats, double jb_threshold = 5.991);

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction expansion (Numerical-Recipes-style Lentz algorithm). Exposed
/// for testing.
double reg_incomplete_beta(double a, double b, double x);

/// Standard normal quantile Φ⁻¹(p) for p in (0, 1), via the
/// Beasley-Springer/Moro rational approximation (|error| < 3e-9 over the
/// whole domain — far below the width of any interval built from it).
/// Pure arithmetic: deterministic across platforms, like everything else
/// the campaign statistics depend on.
double normal_quantile(double p);

/// Wilson score interval for a binomial proportion: the 95% CI the
/// resilience report attaches to the SDC/Benign/Crash rates. Unlike the
/// Wald interval it stays inside [0, 1] and behaves at the extremes the
/// paper's data actually hits (crash rates near 0, benign rates near 1).
struct WilsonInterval {
  double low = 0.0;
  double high = 0.0;
};

/// Interval for `successes` out of `trials` at `confidence` (e.g. 0.95).
/// trials == 0 yields the vacuous [0, 1].
WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double confidence);

/// Convenience: one-shot stats over a vector.
OnlineStats summarize(const std::vector<double>& xs);

}  // namespace vulfi
