#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace vulfi {

void OnlineStats::add(double x) {
  // One-pass update of the first four central moments (Pébay 2008).
  const double n1 = static_cast<double>(n_);
  n_ += 1;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::std_error() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineStats::skewness() const {
  if (n_ < 3 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double OnlineStats::excess_kurtosis() const {
  if (n_ < 4 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double reg_incomplete_beta(double a, double b, double x) {
  VULFI_ASSERT(a > 0.0 && b > 0.0, "incomplete beta: a, b must be positive");
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;

  // ln B(a,b) via lgamma. std::lgamma writes the process-global `signgam`
  // — a data race when campaigns evaluate their stop rules concurrently —
  // so use the reentrant lgamma_r and discard the sign (arguments here are
  // always positive, so the gamma values are too).
  const auto ln_gamma = [](double v) {
    int sign = 0;
    return lgamma_r(v, &sign);
  };
  const double ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
  const double front = std::exp(a * std::log(x) + b * std::log1p(-x) - ln_beta);

  // Continued fraction converges fast for x < (a+1)/(a+b+2); otherwise use
  // the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - reg_incomplete_beta(b, a, 1.0 - x);
  }

  // Modified Lentz continued fraction.
  const double tiny = 1e-30;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < tiny) d = tiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    const double dm = static_cast<double>(m);
    // Even step.
    double numerator = dm * (b - dm) * x / ((a + 2.0 * dm - 1.0) * (a + 2.0 * dm));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    numerator = -(a + dm) * (a + b + dm) * x /
                ((a + 2.0 * dm) * (a + 2.0 * dm + 1.0));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-14) break;
  }
  return front * h / a;
}

namespace {

/// CDF of Student's t with `df` degrees of freedom at `t` (t >= 0).
double student_t_cdf(double t, double df) {
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double p = 0.5 * reg_incomplete_beta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

}  // namespace

double students_t_critical(double confidence, std::size_t df) {
  VULFI_ASSERT(confidence > 0.0 && confidence < 1.0,
               "confidence must be in (0,1)");
  VULFI_ASSERT(df >= 1, "t critical value needs df >= 1");
  const double target = 1.0 - (1.0 - confidence) / 2.0;  // upper tail point
  // Bisection: t* in [0, 1000] covers every practical confidence level.
  double lo = 0.0, hi = 1000.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, static_cast<double>(df)) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double margin_of_error(const OnlineStats& stats, double confidence) {
  if (stats.count() < 2) return std::numeric_limits<double>::infinity();
  const double t = students_t_critical(confidence, stats.count() - 1);
  return t * stats.std_error();
}

double jarque_bera(const OnlineStats& stats) {
  if (stats.count() < 4) return std::numeric_limits<double>::infinity();
  const double n = static_cast<double>(stats.count());
  const double g1 = stats.skewness();
  const double g2 = stats.excess_kurtosis();
  return n / 6.0 * (g1 * g1 + g2 * g2 / 4.0);
}

bool near_normal(const OnlineStats& stats, double jb_threshold) {
  return jarque_bera(stats) < jb_threshold;
}

OnlineStats summarize(const std::vector<double>& xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s;
}

double normal_quantile(double p) {
  // Beasley-Springer/Moro: rational approximation in the central region,
  // a log-polynomial in the tails. Coefficients from Moro (1995).
  static const double a[4] = {2.50662823884, -18.61500062529,
                              41.39119773534, -25.44106049637};
  static const double b[4] = {-8.47351093090, 23.08336743743,
                              -21.06224101826, 3.13082909833};
  static const double c[9] = {
      0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
      0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
      0.0000321767881768, 0.0000002888167364, 0.0000003960315187};
  if (!(p > 0.0 && p < 1.0)) {
    return p >= 1.0 ? std::numeric_limits<double>::infinity()
                    : -std::numeric_limits<double>::infinity();
  }
  const double u = p - 0.5;
  if (std::fabs(u) < 0.42) {
    const double r = u * u;
    return u * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
           ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
  }
  double r = u < 0.0 ? p : 1.0 - p;
  r = std::log(-std::log(r));
  double x = c[0];
  double power = 1.0;
  for (int i = 1; i < 9; ++i) {
    power *= r;
    x += c[i] * power;
  }
  return u < 0.0 ? -x : x;
}

WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double confidence) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double halfwidth =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  WilsonInterval interval;
  interval.low = std::max(0.0, center - halfwidth);
  interval.high = std::min(1.0, center + halfwidth);
  return interval;
}

}  // namespace vulfi
