// Plain-text table rendering for the bench harness.
//
// Every bench binary prints the same rows/series the paper reports; this
// class keeps that output aligned and also emits CSV for downstream
// plotting.
#pragma once

#include <string>
#include <vector>

namespace vulfi {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Monospace rendering with column alignment and a header rule.
  std::string render() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vulfi
