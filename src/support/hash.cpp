#include "support/hash.hpp"

#include <string>

namespace vulfi {

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = kFnvOffsetBasis;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a64(std::string_view text) {
  return fnv1a64(text.data(), text.size());
}

Fnv1a& Fnv1a::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= p[i];
    state_ *= kFnvPrime;
  }
  return *this;
}

Fnv1a& Fnv1a::u8(std::uint8_t value) { return bytes(&value, 1); }

Fnv1a& Fnv1a::u32(std::uint32_t value) {
  unsigned char raw[4];
  for (int i = 0; i < 4; ++i) {
    raw[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  return bytes(raw, sizeof raw);
}

Fnv1a& Fnv1a::u64(std::uint64_t value) {
  unsigned char raw[8];
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  return bytes(raw, sizeof raw);
}

Fnv1a& Fnv1a::str(std::string_view text) {
  u64(text.size());
  return bytes(text.data(), text.size());
}

std::string hash_hex(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

bool hash_from_hex(std::string_view hex, std::uint64_t* out) {
  if (hex.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  if (out != nullptr) *out = value;
  return true;
}

}  // namespace vulfi
