// ISPC-like SPMD kernel construction.
//
// KernelBuilder plays the role of the ISPC compiler's code generator in
// this reproduction: it lowers `foreach` loops to the exact IR shape the
// paper documents (Figure 7) — an `allocas` entry computing
//   nextras     = srem n, Vl
//   aligned_end = sub n, nextras
// a vectorized `foreach_full_body` block with a `counter` phi stepping by
// Vl and a `new_counter` increment, and a masked `partial_inner_only`
// block handling the n % Vl remainder iterations — and lowers `uniform`
// values through the insertelement + shufflevector broadcast idiom
// (Figure 9). The detector pass pattern-matches these shapes, exactly as
// the paper's pass recognizes ISPC's output.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "ir/module.hpp"
#include "spmd/target.hpp"

namespace vulfi::spmd {

class KernelBuilder;

/// Per-iteration context handed to foreach body callbacks. The same
/// callback runs twice: once emitting the unmasked full-vector body and
/// once emitting the masked remainder body; `partial()` distinguishes
/// them and the memory helpers pick plain vs masked operations
/// accordingly.
class ForeachCtx {
 public:
  ir::IRBuilder& b();
  KernelBuilder& kb() { return kb_; }
  unsigned vl() const;

  /// Scalar i32 loop counter (the `counter` phi in the full body;
  /// `aligned_end` in the partial body).
  ir::Value* counter() const { return counter_; }
  /// Varying i32 iteration index: start + counter + <0,1,...,Vl-1>.
  ir::Value* index() const { return index_; }
  /// Execution mask as <Vl x i1>; nullptr in the full body (all active).
  ir::Value* mask_i1() const { return mask_i1_; }
  bool partial() const { return mask_i1_ != nullptr; }

  /// Execution mask in data-typed form (sign-extended all-ones lanes,
  /// bitcast to the element type) — the %floatmask.i of paper Figure 5.
  /// Asserts in the full body; call only when partial().
  ir::Value* typed_mask(ir::Type element);

  // --- contiguous memory at the iteration index -------------------------
  /// Loads element `base[index]`: vector load in the full body, masked
  /// intrinsic load in the partial body.
  ir::Value* load(ir::Type element, ir::Value* base);
  /// Loads `base[index + offset]` (offset is a scalar i32, e.g. stencil
  /// neighbour offsets; caller guarantees in-bounds for active lanes).
  ir::Value* load_offset(ir::Type element, ir::Value* base,
                         ir::Value* offset);
  /// Stores `value` to `base[index]` (masked in the partial body).
  void store(ir::Value* value, ir::Value* base);
  void store_offset(ir::Value* value, ir::Value* base, ir::Value* offset);

  // --- indexed memory ------------------------------------------------------
  /// Per-lane gather base[idx[lane]]. In the partial body inactive lanes
  /// read base[0] (clamped-index gather) so no spurious fault can occur.
  ir::Value* gather(ir::Type element, ir::Value* base, ir::Value* index_vec);
  /// Per-lane scatter base[idx[lane]] = value[lane]. In the partial body
  /// each lane's store is guarded by a per-lane branch on the mask, the
  /// scalarized remainder handling ISPC's partial_inner blocks perform.
  void scatter(ir::Value* value, ir::Value* base, ir::Value* index_vec);

 private:
  friend class KernelBuilder;
  ForeachCtx(KernelBuilder& kb, ir::Value* counter, ir::Value* linear,
             ir::Value* index, ir::Value* mask_i1)
      : kb_(kb), counter_(counter), linear_(linear), index_(index),
        mask_i1_(mask_i1) {}

  ir::Value* element_ptr(ir::Value* base, ir::Type element,
                         ir::Value* offset);

  KernelBuilder& kb_;
  ir::Value* counter_;
  /// Scalar i32 linear index of lane 0: start + counter.
  ir::Value* linear_;
  ir::Value* index_;
  ir::Value* mask_i1_;
  // Cached typed masks, keyed by element kind.
  ir::Value* mask_f32_ = nullptr;
  ir::Value* mask_i32_ = nullptr;
};

using ForeachBody = std::function<void(ForeachCtx&)>;
/// Reduction body: receives the loop-carried varying values and returns
/// their updated versions (same count and types).
using ForeachReduceBody = std::function<std::vector<ir::Value*>(
    ForeachCtx&, const std::vector<ir::Value*>&)>;

class KernelBuilder {
 public:
  /// Creates `name` in `module` with the given parameter types.
  KernelBuilder(ir::Module& module, Target target, std::string name,
                std::vector<ir::Type> params,
                ir::Type return_type = ir::Type::void_ty());

  ir::Module& module() { return module_; }
  ir::IRBuilder& b() { return builder_; }
  ir::Function* function() { return function_; }
  const Target& target() const { return target_; }
  unsigned vl() const { return target_.vector_width; }

  ir::Value* arg(unsigned i) { return function_->arg(i); }

  /// foreach (i = start ... end) { body } — ISPC semantics: iterates the
  /// half-open interval [start, end) with Vl lanes per vector iteration.
  void foreach_loop(ir::Value* start, ir::Value* end, const ForeachBody& body);

  /// Scalar counted loop `for (iv = start; iv < end; ++iv)` with optional
  /// loop-carried values (any type, including pointers for buffer
  /// ping-pong). The body receives the induction variable and the current
  /// carried values and returns the updated carried values; it may emit
  /// nested foreach loops. Returns the final carried values. Handles the
  /// degenerate start >= end case (zero iterations).
  std::vector<ir::Value*> scalar_loop(
      ir::Value* start, ir::Value* end, std::vector<ir::Value*> init,
      const std::function<std::vector<ir::Value*>(
          ir::Value*, const std::vector<ir::Value*>&)>& body,
      const char* label = "loop");

  /// foreach with loop-carried varying values (reductions). Returns the
  /// final carried values, valid at the current insertion point after the
  /// loop. Inactive remainder lanes keep their pre-partial values
  /// (mask-selected), so horizontal reductions stay exact.
  std::vector<ir::Value*> foreach_reduce(ir::Value* start, ir::Value* end,
                                         std::vector<ir::Value*> init,
                                         const ForeachReduceBody& body);

  // --- uniform handling ---------------------------------------------------
  /// Broadcasts a uniform scalar to all lanes (Figure 9 idiom).
  ir::Value* uniform(ir::Value* scalar, std::string name = "uval_broadcast");
  /// Varying splat constants.
  ir::Value* vconst_f32(float value);
  ir::Value* vconst_i32(std::int32_t value);

  // --- horizontal reductions ----------------------------------------------
  /// Sum of all lanes via an extractelement/add chain (ISPC reduce_add).
  ir::Value* reduce_add(ir::Value* vec);
  ir::Value* reduce_min(ir::Value* vec);
  ir::Value* reduce_max(ir::Value* vec);

  // --- math intrinsic helpers -----------------------------------------------
  ir::Value* intrinsic_call(ir::IntrinsicId id, ir::Value* operand);
  ir::Value* intrinsic_call(ir::IntrinsicId id, ir::Value* lhs,
                            ir::Value* rhs);

  /// Finishes the function with `ret` (void or value), runs dead-code
  /// elimination, and verifies the result. Returns false when any usage
  /// diagnostic was recorded (see errors()) — the function is left
  /// unverified and must not be executed. A verifier failure on a build
  /// with no recorded usage errors is still an internal invariant
  /// violation and aborts.
  bool finish(ir::Value* return_value = nullptr);

  // --- usage diagnostics ---------------------------------------------------
  // Malformed builder usage (the kind a random kernel generator probes:
  // masked foreach nesting, provably zero-trip loops, wrong carried-value
  // counts, scalar stores through the varying-store API) is reported as a
  // diagnostic instead of aborting the process: the offending construct
  // lowers to a safe placeholder, the message is recorded here, and
  // finish() returns false.
  bool ok() const { return errors_.empty(); }
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  friend class ForeachCtx;

  void report_error(std::string message);
  /// True when [start, end) is provably empty: identical values, or both
  /// integer constants with start >= end.
  static bool provably_zero_trip(ir::Value* start, ir::Value* end);
  /// Validates a body's carried-value count, diagnosing and repairing
  /// mismatches (pad with the incoming values / drop extras).
  std::vector<ir::Value*> checked_carried(
      std::vector<ir::Value*> updated,
      const std::vector<ir::Value*>& carried, const char* what);

  struct LoweredForeach {
    ir::Value* nextras;
    ir::Value* aligned_end;
    ir::BasicBlock* reset_block;
  };

  /// Shared lowering used by foreach_loop and foreach_reduce.
  std::vector<ir::Value*> lower_foreach(ir::Value* start, ir::Value* end,
                                        std::vector<ir::Value*> init,
                                        const ForeachReduceBody& body);

  std::string loop_name(const char* base);

  ir::Module& module_;
  Target target_;
  ir::Function* function_;
  ir::IRBuilder builder_;
  unsigned foreach_counter_ = 0;
  /// True while a masked remainder body callback runs — starting another
  /// foreach there would execute lanes the mask disabled, so it is
  /// diagnosed as malformed mask nesting.
  bool in_partial_body_ = false;
  std::vector<std::string> errors_;
};

}  // namespace vulfi::spmd
