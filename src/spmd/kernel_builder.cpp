#include "spmd/kernel_builder.hpp"

#include "ir/transforms.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace vulfi::spmd {

using ir::IRBuilder;
using ir::Type;
using ir::Value;

// ---------------------------------------------------------------------------
// ForeachCtx
// ---------------------------------------------------------------------------

IRBuilder& ForeachCtx::b() { return kb_.b(); }

unsigned ForeachCtx::vl() const { return kb_.vl(); }

Value* ForeachCtx::typed_mask(Type element) {
  if (!partial()) {
    // Misuse: the full body runs with every lane active. Diagnose and
    // hand back an all-active mask so lowering can continue safely.
    kb_.report_error("typed_mask requested in the unmasked full body");
    const Type wide = Type::vector(ir::TypeKind::I32, vl());
    Value* all_on = kb_.module().const_int(wide, -1);
    if (element.kind() == Type::f32().kind()) {
      return b().bitcast(all_on, Type::vector(ir::TypeKind::F32, vl()),
                         "fullmask.i");
    }
    return all_on;
  }
  if (element.element_bits() != 32) {
    kb_.report_error("foreach varying data must be 32-bit (f32/i32)");
    element = element.is_float() ? Type::f32() : Type::i32();
  }
  if (element.kind() == Type::f32().kind()) {
    if (!mask_f32_) {
      Value* wide = b().sext(mask_i1_, Type::vector(ir::TypeKind::I32, vl()),
                             "floatmask_bits");
      mask_f32_ = b().bitcast(wide, Type::vector(ir::TypeKind::F32, vl()),
                              "floatmask.i");
    }
    return mask_f32_;
  }
  if (!mask_i32_) {
    mask_i32_ = b().sext(mask_i1_, Type::vector(ir::TypeKind::I32, vl()),
                         "intmask.i");
  }
  return mask_i32_;
}

Value* ForeachCtx::element_ptr(Value* base, Type element, Value* offset) {
  Value* linear = linear_;
  if (offset != nullptr) {
    linear = b().add(linear, offset, "lin_off");
  }
  // Address chain the way an LLVM backend materializes it: the i32 index
  // is sign-extended to the pointer width, scaled to a byte offset, and
  // fed to a byte-strided getelementptr. The intermediates are genuine
  // address-category fault sites (paper Figure 2).
  Value* idx64 = b().sext(linear, Type::i64(), "idxprom");
  Value* byte_off =
      b().mul(idx64, kb_.module().const_int(Type::i64(), element.element_bytes()),
              "byte_off");
  return b().gep(base, byte_off, 1, "elem_addr");
}

Value* ForeachCtx::load(Type element, Value* base) {
  return load_offset(element, base, nullptr);
}

Value* ForeachCtx::load_offset(Type element, Value* base, Value* offset) {
  const Type vec_type = element.with_lanes(vl());
  Value* addr = element_ptr(base, element, offset);
  if (!partial()) {
    return b().load(vec_type, addr, "vec_ld");
  }
  ir::Function* maskload = kb_.module().declare_masked_intrinsic(
      ir::IntrinsicId::MaskLoad, kb_.target().isa, vec_type);
  return b().call(maskload, {addr, typed_mask(element)}, "masked_ld");
}

void ForeachCtx::store(Value* value, Value* base) {
  store_offset(value, base, nullptr);
}

void ForeachCtx::store_offset(Value* value, Value* base, Value* offset) {
  if (value->type().lanes() != vl() || value->type().is_void() ||
      value->type().is_pointer()) {
    kb_.report_error("foreach store takes a varying value (got " +
                     value->type().to_string() + ")");
    return;  // skip the malformed store; finish() will fail
  }
  const Type element = value->type().element();
  Value* addr = element_ptr(base, element, offset);
  if (!partial()) {
    b().store(value, addr);
    return;
  }
  ir::Function* maskstore = kb_.module().declare_masked_intrinsic(
      ir::IntrinsicId::MaskStore, kb_.target().isa, value->type());
  b().call(maskstore, {addr, typed_mask(element), value});
}

Value* ForeachCtx::gather(Type element, Value* base, Value* index_vec) {
  VULFI_ASSERT(index_vec->type().lanes() == vl() &&
                   index_vec->type().is_integer(),
               "gather needs a varying integer index");
  const Type vec_type = element.with_lanes(vl());
  Value* result = kb_.module().const_undef(vec_type);
  Value* zero = b().i32_const(0);
  for (unsigned lane = 0; lane < vl(); ++lane) {
    Value* idx = b().extract_element(index_vec, lane, strf("gidx%u", lane));
    if (partial()) {
      // Clamped-index gather: inactive lanes read base[0]; the value is
      // never observed because downstream stores are masked too.
      Value* active =
          b().extract_element(mask_i1_, lane, strf("gmask%u", lane));
      idx = b().select(active, idx, zero, strf("gidx_safe%u", lane));
    }
    Value* idx64 = b().sext(idx, Type::i64(), strf("gidxprom%u", lane));
    Value* byte_off = b().mul(
        idx64, kb_.module().const_int(Type::i64(), element.element_bytes()),
        strf("gboff%u", lane));
    Value* addr = b().gep(base, byte_off, 1, strf("gaddr%u", lane));
    Value* elem = b().load(element, addr, strf("gval%u", lane));
    result = b().insert_element(result, elem, lane, strf("gins%u", lane));
  }
  return result;
}

void ForeachCtx::scatter(Value* value, Value* base, Value* index_vec) {
  VULFI_ASSERT(value->type().lanes() == vl(),
               "scatter takes a varying value");
  const Type element = value->type().element();
  for (unsigned lane = 0; lane < vl(); ++lane) {
    Value* idx = b().extract_element(index_vec, lane, strf("sidx%u", lane));
    Value* elem = b().extract_element(value, lane, strf("sval%u", lane));
    if (!partial()) {
      Value* idx64 = b().sext(idx, Type::i64(), strf("sidxprom%u", lane));
      Value* byte_off = b().mul(
          idx64, kb_.module().const_int(Type::i64(), element.element_bytes()),
          strf("sboff%u", lane));
      Value* addr = b().gep(base, byte_off, 1, strf("saddr%u", lane));
      b().store(elem, addr);
      continue;
    }
    // Per-lane guarded store: the scalarized remainder handling of ISPC's
    // partial_inner blocks.
    Value* active = b().extract_element(mask_i1_, lane, strf("smask%u", lane));
    ir::BasicBlock* current = b().insert_block();
    ir::Function* fn = current->parent();
    ir::BasicBlock* do_store = fn->create_block_after(
        strf("scatter_lane%u", lane), current);
    ir::BasicBlock* cont = fn->create_block_after(
        strf("scatter_cont%u", lane), do_store);
    b().cond_br(active, do_store, cont);
    b().set_insert_block(do_store);
    Value* idx64 = b().sext(idx, Type::i64(), strf("sidxprom%u", lane));
    Value* byte_off = b().mul(
        idx64, kb_.module().const_int(Type::i64(), element.element_bytes()),
        strf("sboff%u", lane));
    Value* addr = b().gep(base, byte_off, 1, strf("saddr%u", lane));
    b().store(elem, addr);
    b().br(cont);
    b().set_insert_block(cont);
  }
}

// ---------------------------------------------------------------------------
// KernelBuilder
// ---------------------------------------------------------------------------

KernelBuilder::KernelBuilder(ir::Module& module, Target target,
                             std::string name, std::vector<Type> params,
                             Type return_type)
    : module_(module),
      target_(target),
      function_(module.create_function(std::move(name), return_type,
                                       std::move(params))),
      builder_(module) {
  ir::BasicBlock* allocas = function_->create_block("allocas");
  builder_.set_insert_block(allocas);
}

std::string KernelBuilder::loop_name(const char* base) {
  if (foreach_counter_ == 0) return base;
  return strf("%s%u", base, foreach_counter_);
}

void KernelBuilder::foreach_loop(Value* start, Value* end,
                                 const ForeachBody& body) {
  ForeachReduceBody wrapper = [&body](ForeachCtx& ctx,
                                      const std::vector<Value*>& carried)
      -> std::vector<Value*> {
    body(ctx);
    return carried;
  };
  lower_foreach(start, end, {}, wrapper);
}

std::vector<Value*> KernelBuilder::foreach_reduce(
    Value* start, Value* end, std::vector<Value*> init,
    const ForeachReduceBody& body) {
  // An empty carried list degenerates to a plain foreach (the language
  // front end calls this uniformly whether or not reductions exist).
  return lower_foreach(start, end, std::move(init), body);
}

std::vector<Value*> KernelBuilder::lower_foreach(
    Value* start, Value* end, std::vector<Value*> init,
    const ForeachReduceBody& body) {
  if (in_partial_body_) {
    // Malformed mask nesting: a foreach inside the masked remainder body
    // would run its full-vector iterations with lanes the outer mask
    // disabled. Diagnose and lower to nothing (the carried values pass
    // through unchanged).
    report_error("foreach nested inside a masked remainder body "
                 "(malformed mask nesting)");
    return init;
  }
  if (provably_zero_trip(start, end)) {
    // Provably zero-trip foreach (constant or identical bounds): the
    // lowering would emit a branch lint flags as constant-condition and a
    // body that can never run. Diagnose and skip the loop entirely.
    report_error("provably zero-trip foreach (start >= end)");
    return init;
  }
  IRBuilder& b = builder_;
  const unsigned width = vl();
  if (width == 1) {
    // Scalar (Vl = 1) target: the serial baseline of the width study.
    // `n % 1 == 0` makes the masked remainder statically dead, so lower
    // to the plain scalar counted loop — no masked intrinsics, no movmsk,
    // the code a scalar compiler would emit. The body callback runs once,
    // unmasked, with the induction variable as both linear and "vector"
    // index (one-lane varying values are their elements).
    foreach_counter_ += 1;
    return scalar_loop(
        start, end, std::move(init),
        [this, &body](Value* iv, const std::vector<Value*>& carried) {
          ForeachCtx ctx(*this, iv, iv, iv, nullptr);
          return body(ctx, carried);
        },
        "foreach_scalar");
  }
  Value* vl_const = b.i32_const(width);

  // ----- prologue in the current block (the "allocas" role) -------------
  Value* n_total = b.sub(end, start, "n_total");
  Value* nextras = b.srem(n_total, vl_const, loop_name("nextras"));
  Value* aligned_end = b.sub(n_total, nextras, loop_name("aligned_end"));
  Value* has_full =
      b.icmp(ir::ICmpPred::SGT, aligned_end, b.i32_const(0), "has_full");

  ir::BasicBlock* pre = b.insert_block();
  ir::Function* fn = function_;
  ir::BasicBlock* full_ph =
      fn->create_block(loop_name("foreach_full_body.lr.ph"));
  ir::BasicBlock* full = fn->create_block(loop_name("foreach_full_body"));
  ir::BasicBlock* outer =
      fn->create_block(loop_name("partial_inner_all_outer"));
  ir::BasicBlock* partial =
      fn->create_block(loop_name("partial_inner_only"));
  ir::BasicBlock* reset = fn->create_block(loop_name("foreach_reset"));
  foreach_counter_ += 1;

  b.cond_br(has_full, full_ph, outer);

  b.set_insert_block(full_ph);
  b.br(full);

  // ----- foreach_full_body ----------------------------------------------
  b.set_insert_block(full);
  ir::Instruction* counter_phi = b.phi(Type::i32(), "counter");
  std::vector<ir::Instruction*> carried_phis;
  carried_phis.reserve(init.size());
  for (std::size_t i = 0; i < init.size(); ++i) {
    carried_phis.push_back(
        b.phi(init[i]->type(), strf("carried%zu", i)));
  }

  Value* linear = b.add(start, counter_phi, "linear");
  Value* linear_bc = b.broadcast(linear, width, "linear_smear");
  Value* index_vec =
      b.add(linear_bc, module_.const_lane_sequence(width), "index");

  ForeachCtx full_ctx(*this, counter_phi, linear, index_vec, nullptr);
  std::vector<Value*> carried_in(carried_phis.begin(), carried_phis.end());
  std::vector<Value*> full_updated =
      checked_carried(body(full_ctx, carried_in), carried_in, "foreach");

  Value* new_counter = b.add(counter_phi, vl_const, "new_counter");
  Value* latch_cmp = b.icmp(ir::ICmpPred::SLT, new_counter, aligned_end,
                            "full_latch_cmp");
  ir::BasicBlock* full_end = b.insert_block();
  b.cond_br(latch_cmp, full, outer);

  counter_phi->phi_add_incoming(module_.const_int(Type::i32(), 0), full_ph);
  counter_phi->phi_add_incoming(new_counter, full_end);
  for (std::size_t i = 0; i < carried_phis.size(); ++i) {
    carried_phis[i]->phi_add_incoming(init[i], full_ph);
    carried_phis[i]->phi_add_incoming(full_updated[i], full_end);
  }

  // ----- partial_inner_all_outer -----------------------------------------
  b.set_insert_block(outer);
  std::vector<ir::Instruction*> outer_phis;
  for (std::size_t i = 0; i < init.size(); ++i) {
    ir::Instruction* phi =
        b.phi(init[i]->type(), strf("carried_mid%zu", i));
    phi->phi_add_incoming(init[i], pre);
    phi->phi_add_incoming(full_updated[i], full_end);
    outer_phis.push_back(phi);
  }
  // Remainder execution mask and the ISPC-style "any lane active" test:
  // sign-extend the i1 mask, bitcast to float lanes, movmsk, compare to
  // zero. This is how ISPC's code generator gates the masked remainder —
  // and it routes the vector mask into scalar control flow, which is why
  // the paper observes vector instructions among control fault sites.
  Value* plinear = b.add(start, aligned_end, "plinear");
  Value* plinear_bc = b.broadcast(plinear, width, "plinear_smear");
  Value* pindex =
      b.add(plinear_bc, module_.const_lane_sequence(width), "pindex");
  Value* end_bc = b.broadcast(end, width, "end_smear");
  Value* pmask = b.icmp(ir::ICmpPred::SLT, pindex, end_bc, "pmask");
  Value* pmask_wide = b.sext(
      pmask, Type::vector(ir::TypeKind::I32, width), "floatmask_bits");
  Value* floatmask = b.bitcast(
      pmask_wide, Type::vector(ir::TypeKind::F32, width), "floatmask.i");
  ir::Function* movmsk =
      module_.declare_movmsk(target_.isa, floatmask->type());
  Value* mask_bits = b.call(movmsk, {floatmask}, "mask_bits");
  Value* any_active = b.icmp(ir::ICmpPred::NE, mask_bits, b.i32_const(0),
                             "any_active");
  b.cond_br(any_active, partial, reset);

  // ----- partial_inner_only ------------------------------------------------
  b.set_insert_block(partial);
  ForeachCtx partial_ctx(*this, aligned_end, plinear, pindex, pmask);
  partial_ctx.mask_f32_ = floatmask;
  partial_ctx.mask_i32_ = pmask_wide;
  std::vector<Value*> outer_vals(outer_phis.begin(), outer_phis.end());
  in_partial_body_ = true;
  std::vector<Value*> partial_updated =
      checked_carried(body(partial_ctx, outer_vals), outer_vals, "foreach");
  in_partial_body_ = false;
  // Inactive lanes keep their pre-partial value.
  std::vector<Value*> partial_final(init.size());
  for (std::size_t i = 0; i < init.size(); ++i) {
    partial_final[i] =
        partial_updated[i] == outer_vals[i]
            ? outer_vals[i]
            : b.select(pmask, partial_updated[i], outer_vals[i],
                       strf("carried_sel%zu", i));
  }
  ir::BasicBlock* partial_end = b.insert_block();
  b.br(reset);

  // ----- foreach_reset -------------------------------------------------------
  b.set_insert_block(reset);
  std::vector<Value*> final_vals;
  for (std::size_t i = 0; i < init.size(); ++i) {
    ir::Instruction* phi =
        b.phi(init[i]->type(), strf("carried_final%zu", i));
    phi->phi_add_incoming(outer_phis[i], outer);
    phi->phi_add_incoming(partial_final[i], partial_end);
    final_vals.push_back(phi);
  }
  return final_vals;
}

std::vector<Value*> KernelBuilder::scalar_loop(
    Value* start, Value* end, std::vector<Value*> init,
    const std::function<std::vector<Value*>(Value*,
                                            const std::vector<Value*>&)>& body,
    const char* label) {
  // Unlike foreach, a *scalar* loop is legal inside the masked remainder
  // body — it is uniform control flow, and the remainder's carried values
  // are mask-selected after the body returns (swaptions' per-step walk
  // relies on this).
  if (provably_zero_trip(start, end)) {
    report_error("provably zero-trip scalar loop (start >= end)");
    return init;
  }
  IRBuilder& b = builder_;
  ir::Function* fn = function_;
  const std::string tag = strf("%s%u", label, foreach_counter_);
  foreach_counter_ += 1;

  Value* has_iters = b.icmp(ir::ICmpPred::SLT, start, end,
                            tag + "_has_iters");
  ir::BasicBlock* pre = b.insert_block();
  ir::BasicBlock* header = fn->create_block(tag + "_header");
  ir::BasicBlock* exit = fn->create_block(tag + "_exit");
  b.cond_br(has_iters, header, exit);

  b.set_insert_block(header);
  ir::Instruction* iv = b.phi(Type::i32(), tag + "_iv");
  std::vector<ir::Instruction*> carried;
  for (std::size_t i = 0; i < init.size(); ++i) {
    carried.push_back(b.phi(init[i]->type(), strf("%s_c%zu", tag.c_str(), i)));
  }
  std::vector<Value*> carried_vals(carried.begin(), carried.end());
  std::vector<Value*> updated =
      checked_carried(body(iv, carried_vals), carried_vals, "scalar_loop");

  Value* iv_next = b.add(iv, b.i32_const(1), tag + "_iv_next");
  Value* latch = b.icmp(ir::ICmpPred::SLT, iv_next, end, tag + "_latch");
  ir::BasicBlock* latch_block = b.insert_block();
  b.cond_br(latch, header, exit);

  iv->phi_add_incoming(start, pre);
  iv->phi_add_incoming(iv_next, latch_block);
  for (std::size_t i = 0; i < carried.size(); ++i) {
    carried[i]->phi_add_incoming(init[i], pre);
    carried[i]->phi_add_incoming(updated[i], latch_block);
  }

  b.set_insert_block(exit);
  std::vector<Value*> finals;
  for (std::size_t i = 0; i < init.size(); ++i) {
    ir::Instruction* phi = b.phi(init[i]->type(),
                                 strf("%s_f%zu", tag.c_str(), i));
    phi->phi_add_incoming(init[i], pre);
    phi->phi_add_incoming(updated[i], latch_block);
    finals.push_back(phi);
  }
  return finals;
}

Value* KernelBuilder::uniform(Value* scalar, std::string name) {
  return builder_.broadcast(scalar, vl(), std::move(name));
}

Value* KernelBuilder::vconst_f32(float value) {
  return module_.const_f32(target_.varying_f32(), value);
}

Value* KernelBuilder::vconst_i32(std::int32_t value) {
  return module_.const_int(target_.varying_i32(), value);
}

Value* KernelBuilder::reduce_add(Value* vec) {
  VULFI_ASSERT(!vec->type().is_void(), "reduce_add takes a value");
  const bool fp = vec->type().is_float();
  Value* acc = builder_.extract_element(vec, 0u, "red0");
  for (unsigned lane = 1; lane < vec->type().lanes(); ++lane) {
    Value* elem = builder_.extract_element(vec, lane, strf("red%u", lane));
    acc = fp ? builder_.fadd(acc, elem, strf("redsum%u", lane))
             : builder_.add(acc, elem, strf("redsum%u", lane));
  }
  return acc;
}

Value* KernelBuilder::reduce_min(Value* vec) {
  VULFI_ASSERT(vec->type().is_float(), "reduce_min takes a float value");
  ir::Function* fmin = module_.declare_math_intrinsic(
      ir::IntrinsicId::Fmin, vec->type().element());
  Value* acc = builder_.extract_element(vec, 0u, "rmin0");
  for (unsigned lane = 1; lane < vec->type().lanes(); ++lane) {
    Value* elem = builder_.extract_element(vec, lane, strf("rmin%u", lane));
    acc = builder_.call(fmin, {acc, elem}, strf("rminv%u", lane));
  }
  return acc;
}

Value* KernelBuilder::reduce_max(Value* vec) {
  VULFI_ASSERT(vec->type().is_float(), "reduce_max takes a float value");
  ir::Function* fmax = module_.declare_math_intrinsic(
      ir::IntrinsicId::Fmax, vec->type().element());
  Value* acc = builder_.extract_element(vec, 0u, "rmax0");
  for (unsigned lane = 1; lane < vec->type().lanes(); ++lane) {
    Value* elem = builder_.extract_element(vec, lane, strf("rmax%u", lane));
    acc = builder_.call(fmax, {acc, elem}, strf("rmaxv%u", lane));
  }
  return acc;
}

Value* KernelBuilder::intrinsic_call(ir::IntrinsicId id, Value* operand) {
  ir::Function* callee =
      module_.declare_math_intrinsic(id, operand->type());
  return builder_.call(callee, {operand});
}

Value* KernelBuilder::intrinsic_call(ir::IntrinsicId id, Value* lhs,
                                     Value* rhs) {
  ir::Function* callee = module_.declare_math_intrinsic(id, lhs->type());
  return builder_.call(callee, {lhs, rhs});
}

bool KernelBuilder::finish(Value* return_value) {
  builder_.ret(return_value);
  if (!errors_.empty()) {
    // Malformed usage was already diagnosed; the placeholder lowering may
    // not round-trip the verifier, so leave the function as-is and let
    // the caller consult errors().
    return false;
  }
  // Match the paper's -O3 code generation: dead definitions do not reach
  // the fault injector.
  ir::eliminate_dead_code(*function_);
  const auto errors = ir::verify(*function_);
  // With clean usage, a verifier failure is an internal lowering bug.
  VULFI_ASSERT(errors.empty(),
               errors.empty() ? "ok" : errors.front().c_str());
  return true;
}

void KernelBuilder::report_error(std::string message) {
  errors_.push_back(function_->name() + ": " + std::move(message));
}

bool KernelBuilder::provably_zero_trip(Value* start, Value* end) {
  if (start == end) return true;
  const auto* cstart = start->value_kind() == ir::ValueKind::Constant
                           ? static_cast<const ir::Constant*>(start)
                           : nullptr;
  const auto* cend = end->value_kind() == ir::ValueKind::Constant
                         ? static_cast<const ir::Constant*>(end)
                         : nullptr;
  return cstart && cend && cstart->int_value() >= cend->int_value();
}

std::vector<Value*> KernelBuilder::checked_carried(
    std::vector<Value*> updated, const std::vector<Value*>& carried,
    const char* what) {
  if (updated.size() == carried.size()) return updated;
  report_error(strf("%s body returned %zu carried values, expected %zu",
                    what, updated.size(), carried.size()));
  // Keep lowering well-formed: pad missing slots with the incoming
  // values, drop extras.
  updated.resize(carried.size());
  for (std::size_t i = 0; i < carried.size(); ++i) {
    if (updated[i] == nullptr) updated[i] = carried[i];
  }
  return updated;
}

}  // namespace vulfi::spmd
