#include "spmd/lang/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "support/str.hpp"

namespace vulfi::spmd::lang {

const char* tok_kind_name(TokKind kind) {
  switch (kind) {
    case TokKind::End: return "end of input";
    case TokKind::Identifier: return "identifier";
    case TokKind::IntLiteral: return "integer literal";
    case TokKind::FloatLiteral: return "float literal";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::Comma: return "','";
    case TokKind::Semicolon: return "';'";
    case TokKind::Question: return "'?'";
    case TokKind::Colon: return "':'";
    case TokKind::Assign: return "'='";
    case TokKind::PlusAssign: return "'+='";
    case TokKind::MinusAssign: return "'-='";
    case TokKind::StarAssign: return "'*='";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::Percent: return "'%'";
    case TokKind::Less: return "'<'";
    case TokKind::LessEq: return "'<='";
    case TokKind::Greater: return "'>'";
    case TokKind::GreaterEq: return "'>='";
    case TokKind::EqEq: return "'=='";
    case TokKind::NotEq: return "'!='";
    case TokKind::AndAnd: return "'&&'";
    case TokKind::OrOr: return "'||'";
    case TokKind::Not: return "'!'";
    case TokKind::Ellipsis: return "'...'";
    case TokKind::PlusPlus: return "'++'";
  }
  return "?";
}

LexResult lex(const std::string& source) {
  LexResult result;
  int line = 1;
  int column = 1;
  std::size_t pos = 0;

  auto make = [&](TokKind kind) {
    Token token;
    token.kind = kind;
    token.line = line;
    token.column = column;
    return token;
  };
  auto advance = [&](std::size_t n) {
    pos += n;
    column += static_cast<int>(n);
  };

  while (pos < source.size()) {
    const char ch = source[pos];
    if (ch == '\n') {
      pos += 1;
      line += 1;
      column = 1;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      advance(1);
      continue;
    }
    if (ch == '/' && pos + 1 < source.size() && source[pos + 1] == '/') {
      while (pos < source.size() && source[pos] != '\n') pos += 1;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      Token token = make(TokKind::Identifier);
      std::size_t start = pos;
      while (pos < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[pos])) ||
              source[pos] == '_')) {
        pos += 1;
      }
      token.text = source.substr(start, pos - start);
      column += static_cast<int>(pos - start);
      result.tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      Token token = make(TokKind::IntLiteral);
      std::size_t start = pos;
      bool is_float = false;
      while (pos < source.size()) {
        const char digit = source[pos];
        if (std::isdigit(static_cast<unsigned char>(digit))) {
          pos += 1;
        } else if (digit == '.' && pos + 1 < source.size() &&
                   source[pos + 1] != '.') {
          // Lookahead keeps "0..." (range) from becoming a float.
          is_float = true;
          pos += 1;
        } else if (digit == 'e' || digit == 'E') {
          is_float = true;
          pos += 1;
          if (pos < source.size() &&
              (source[pos] == '+' || source[pos] == '-')) {
            pos += 1;
          }
        } else if (digit == 'f') {
          is_float = true;
          pos += 1;
          break;
        } else {
          break;
        }
      }
      token.text = source.substr(start, pos - start);
      column += static_cast<int>(pos - start);
      if (is_float) {
        token.kind = TokKind::FloatLiteral;
        token.float_value = std::strtod(token.text.c_str(), nullptr);
      } else {
        token.int_value = std::strtoll(token.text.c_str(), nullptr, 10);
      }
      result.tokens.push_back(std::move(token));
      continue;
    }

    // Punctuation; longest-match first.
    struct Punct {
      const char* spelling;
      TokKind kind;
    };
    static const Punct kPuncts[] = {
        {"...", TokKind::Ellipsis}, {"<=", TokKind::LessEq},
        {">=", TokKind::GreaterEq}, {"==", TokKind::EqEq},
        {"!=", TokKind::NotEq},     {"&&", TokKind::AndAnd},
        {"||", TokKind::OrOr},      {"+=", TokKind::PlusAssign},
        {"-=", TokKind::MinusAssign}, {"*=", TokKind::StarAssign},
        {"++", TokKind::PlusPlus},  {"(", TokKind::LParen},
        {")", TokKind::RParen},     {"{", TokKind::LBrace},
        {"}", TokKind::RBrace},     {"[", TokKind::LBracket},
        {"]", TokKind::RBracket},   {",", TokKind::Comma},
        {";", TokKind::Semicolon},  {"?", TokKind::Question},
        {":", TokKind::Colon},      {"=", TokKind::Assign},
        {"+", TokKind::Plus},       {"-", TokKind::Minus},
        {"*", TokKind::Star},       {"/", TokKind::Slash},
        {"%", TokKind::Percent},    {"<", TokKind::Less},
        {">", TokKind::Greater},    {"!", TokKind::Not},
    };
    bool matched = false;
    for (const Punct& punct : kPuncts) {
      const std::size_t len = std::strlen(punct.spelling);
      if (source.compare(pos, len, punct.spelling) == 0) {
        result.tokens.push_back(make(punct.kind));
        advance(len);
        matched = true;
        break;
      }
    }
    if (!matched) {
      result.errors.push_back(
          strf("line %d: unexpected character '%c'", line, ch));
      advance(1);
    }
  }
  result.tokens.push_back(make(TokKind::End));
  return result;
}

}  // namespace vulfi::spmd::lang
