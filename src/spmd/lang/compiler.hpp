// Compiler for the ISPC-like kernel language — the role the ISPC compiler
// plays in the paper: a SPMD front end whose code generator lowers
// `foreach` loops and `uniform` values to the vector IR, producing exactly
// the code-generation patterns (Figure 7 CFG, Figure 9 broadcasts, masked
// partial iterations) that the detectors of §III pattern-match.
//
// Language (a compact ISPC subset):
//
//   kernel scale(uniform float data[], uniform int n, uniform float f) {
//     foreach (i = 0 ... n) {
//       data[i] = f * data[i];          // contiguous vector load/store
//     }
//   }
//
//   kernel dot(uniform float a[], uniform float b[],
//              uniform float out[], uniform int n) {
//     uniform float sum = 0.0;
//     foreach (i = 0 ... n) {
//       sum += a[i] * b[i];             // cross-lane reduction sugar
//     }
//     out[0] = sum;
//   }
//
//  * Types: `float`, `int`; `uniform T x` is scalar, plain `T x` (legal
//    only inside foreach) is varying; `T name[]` parameters are arrays.
//  * Statements: declarations, assignments (= += -= *=), `foreach
//    (i = lo ... hi)`, and `for (uniform int k = lo; k < hi; k++)` with
//    loop-carried reassignment.
//  * Expressions: arithmetic, comparisons, && || !, ternary ?:
//    (vector-selected when varying), array indexing, calls to sqrt, exp,
//    log, pow, abs, min, max, sin, cos, floor, and float()/int() casts.
//  * Array accesses inside foreach vectorize by index shape: `a[i]` is a
//    contiguous (masked in the remainder) access, `a[i + c]` with uniform
//    c an offset access, a uniform index a broadcast scalar access, and
//    anything else a gather/scatter.
//  * `uniform_var += <varying>` inside foreach accumulates per lane and
//    folds with a reduction on loop exit (ISPC's reduce_add idiom).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.hpp"
#include "spmd/target.hpp"

namespace vulfi::spmd::lang {

struct CompileResult {
  std::unique_ptr<ir::Module> module;  // nullptr on failure
  std::vector<std::string> errors;

  bool ok() const { return module != nullptr && errors.empty(); }
};

/// Compiles every kernel in `source` into one module for `target`.
/// Kernel parameters become IR function parameters in order (arrays as
/// pointers, uniform scalars as f32/i32).
CompileResult compile_program(const std::string& source,
                              const Target& target,
                              const std::string& module_name = "ispc_module");

}  // namespace vulfi::spmd::lang
