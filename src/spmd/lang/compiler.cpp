#include "spmd/lang/compiler.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "ir/verifier.hpp"
#include "spmd/kernel_builder.hpp"
#include "spmd/lang/parser.hpp"
#include "support/str.hpp"

namespace vulfi::spmd::lang {

namespace {

using ir::Type;
using ir::TypeKind;

/// A typed value during lowering. `value` is scalar for uniform, vector
/// for varying; booleans are i1-typed (scalar or vector).
struct TypedValue {
  ir::Value* value = nullptr;
  ElemType elem = ElemType::Float;
  bool varying = false;
  bool boolean = false;
};

/// What a name denotes.
struct Binding {
  enum class Kind { Array, Scalar } kind = Binding::Kind::Scalar;
  ElemType elem = ElemType::Float;
  // Array: base pointer. Scalar: current SSA value (uniform or varying).
  ir::Value* value = nullptr;
  bool varying = false;
};

using Scope = std::map<std::string, Binding>;

class KernelCompiler {
 public:
  KernelCompiler(const Kernel& kernel, ir::Module& module,
                 const Target& target, std::vector<std::string>& errors)
      : kernel_(kernel), target_(target), errors_(errors) {
    std::vector<Type> params;
    for (const Param& param : kernel.params) {
      params.push_back(param.is_array ? Type::ptr()
                                      : scalar_type(param.elem));
    }
    kb_ = std::make_unique<KernelBuilder>(module, target, kernel.name,
                                          std::move(params));
    for (unsigned i = 0; i < kernel.params.size(); ++i) {
      const Param& param = kernel.params[i];
      kb_->function()->arg(i)->set_name(param.name);
      Binding binding;
      binding.kind = param.is_array ? Binding::Kind::Array
                                    : Binding::Kind::Scalar;
      binding.elem = param.elem;
      binding.value = kb_->arg(i);
      globals_[param.name] = binding;
    }
  }

  bool run() {
    Scope scope = globals_;
    lower_stmts(kernel_.body, scope, /*ctx=*/nullptr);
    if (!errors_.empty()) return false;
    kb_->finish();
    return true;
  }

 private:
  static Type scalar_type(ElemType elem) {
    return elem == ElemType::Float ? Type::f32() : Type::i32();
  }
  Type varying_type(ElemType elem) const {
    return scalar_type(elem).with_lanes(kb_->vl());
  }

  void error(int line, const std::string& message) {
    errors_.push_back(
        strf("%s:%d: %s", kernel_.name.c_str(), line, message.c_str()));
  }

  ir::IRBuilder& b() { return kb_->b(); }

  // --- conversions -----------------------------------------------------------

  /// Broadcasts a uniform value to the vector width (Figure-9 idiom for
  /// non-constants).
  TypedValue to_varying(const TypedValue& v) {
    if (v.varying || !v.value) return v;
    TypedValue out = v;
    out.varying = true;
    if (v.boolean) {
      // Splat an i1: compare-generated masks are vector-born; scalar
      // booleans only arise from uniform comparisons.
      out.value = b().broadcast(v.value, kb_->vl(), "bool_broadcast");
      return out;
    }
    const auto* constant = dynamic_cast<ir::Constant*>(v.value);
    if (constant && constant->type().is_scalar()) {
      // Constants splat directly (a compiler would fold the broadcast).
      ir::Module& module = kb_->module();
      out.value = module.const_raw(
          constant->type().with_lanes(kb_->vl()),
          std::vector<std::uint64_t>(kb_->vl(), constant->raw(0)));
      return out;
    }
    out.value = kb_->uniform(v.value);
    return out;
  }

  /// int -> float conversion (same variability).
  TypedValue to_float(const TypedValue& v, int line) {
    if (v.elem == ElemType::Float) return v;
    if (v.boolean) {
      error(line, "cannot use a boolean as a number");
      return v;
    }
    TypedValue out = v;
    out.elem = ElemType::Float;
    const Type to =
        v.varying ? varying_type(ElemType::Float) : Type::f32();
    out.value = b().sitofp(v.value, to, "conv");
    return out;
  }

  TypedValue to_int(const TypedValue& v, int line) {
    if (v.elem == ElemType::Int) return v;
    if (v.boolean) {
      error(line, "cannot use a boolean as a number");
      return v;
    }
    TypedValue out = v;
    out.elem = ElemType::Int;
    const Type to = v.varying ? varying_type(ElemType::Int) : Type::i32();
    out.value = b().fptosi(v.value, to, "conv");
    return out;
  }

  /// Promotes a pair to a common type/variability for arithmetic.
  bool unify(TypedValue* lhs, TypedValue* rhs, int line) {
    if (!lhs->value || !rhs->value) return false;
    if (lhs->elem != rhs->elem) {
      if (lhs->elem == ElemType::Int) *lhs = to_float(*lhs, line);
      if (rhs->elem == ElemType::Int) *rhs = to_float(*rhs, line);
    }
    if (lhs->varying != rhs->varying) {
      if (!lhs->varying) *lhs = to_varying(*lhs);
      if (!rhs->varying) *rhs = to_varying(*rhs);
    }
    return lhs->value && rhs->value;
  }

  // --- expressions ------------------------------------------------------------

  TypedValue lower_expr(const Expr& expr, Scope& scope, ForeachCtx* ctx) {
    switch (expr.kind) {
      case ExprKind::IntLiteral: {
        TypedValue out;
        out.elem = ElemType::Int;
        out.value = b().i32_const(static_cast<std::int32_t>(expr.int_value));
        return out;
      }
      case ExprKind::FloatLiteral: {
        TypedValue out;
        out.elem = ElemType::Float;
        out.value = b().f32_const(static_cast<float>(expr.float_value));
        return out;
      }
      case ExprKind::VarRef: {
        auto it = scope.find(expr.name);
        if (it == scope.end()) {
          error(expr.line, "use of undeclared variable '" + expr.name + "'");
          return {};
        }
        if (it->second.kind == Binding::Kind::Array) {
          error(expr.line,
                "array '" + expr.name + "' must be indexed");
          return {};
        }
        TypedValue out;
        out.elem = it->second.elem;
        out.varying = it->second.varying;
        out.value = it->second.value;
        return out;
      }
      case ExprKind::ArrayIndex:
        return lower_array_load(expr, scope, ctx);
      case ExprKind::Unary: {
        TypedValue operand = lower_expr(*expr.children[0], scope, ctx);
        if (!operand.value) return {};
        if (expr.unary_not) {
          if (!operand.boolean) {
            error(expr.line, "'!' requires a boolean operand");
            return {};
          }
          TypedValue out = operand;
          ir::Module& module = kb_->module();
          ir::Value* ones = module.const_int(
              operand.value->type(), 1);
          out.value = b().xor_(operand.value, ones, "not");
          return out;
        }
        TypedValue out = operand;
        if (operand.elem == ElemType::Float) {
          out.value = b().fneg(operand.value, "neg");
        } else {
          ir::Value* zero =
              kb_->module().const_int(operand.value->type(), 0);
          out.value = b().sub(zero, operand.value, "neg");
        }
        return out;
      }
      case ExprKind::Binary:
        return lower_binary(expr, scope, ctx);
      case ExprKind::Ternary: {
        TypedValue cond = lower_expr(*expr.children[0], scope, ctx);
        TypedValue on_true = lower_expr(*expr.children[1], scope, ctx);
        TypedValue on_false = lower_expr(*expr.children[2], scope, ctx);
        if (!cond.value || !on_true.value || !on_false.value) return {};
        if (!cond.boolean) {
          error(expr.line, "ternary condition must be a comparison");
          return {};
        }
        if (!unify(&on_true, &on_false, expr.line)) return {};
        if (cond.varying && !on_true.varying) {
          on_true = to_varying(on_true);
          on_false = to_varying(on_false);
        }
        if (!cond.varying && on_true.varying) cond = to_varying(cond);
        TypedValue out = on_true;
        out.value = b().select(cond.value, on_true.value, on_false.value,
                               "sel");
        return out;
      }
      case ExprKind::Call:
        return lower_call(expr, scope, ctx);
    }
    return {};
  }

  TypedValue lower_binary(const Expr& expr, Scope& scope, ForeachCtx* ctx) {
    TypedValue lhs = lower_expr(*expr.children[0], scope, ctx);
    TypedValue rhs = lower_expr(*expr.children[1], scope, ctx);
    if (!lhs.value || !rhs.value) return {};

    const BinaryOp op = expr.binary_op;
    if (op == BinaryOp::And || op == BinaryOp::Or) {
      if (!lhs.boolean || !rhs.boolean) {
        error(expr.line, "'&&'/'||' require boolean operands");
        return {};
      }
      if (lhs.varying != rhs.varying) {
        if (!lhs.varying) lhs = to_varying(lhs);
        if (!rhs.varying) rhs = to_varying(rhs);
      }
      TypedValue out = lhs;
      out.value = op == BinaryOp::And
                      ? b().and_(lhs.value, rhs.value, "and")
                      : b().or_(lhs.value, rhs.value, "or");
      return out;
    }

    if (lhs.boolean || rhs.boolean) {
      error(expr.line, "boolean values only combine with '&&'/'||'");
      return {};
    }
    if (!unify(&lhs, &rhs, expr.line)) return {};

    const bool is_cmp = op == BinaryOp::Lt || op == BinaryOp::Le ||
                        op == BinaryOp::Gt || op == BinaryOp::Ge ||
                        op == BinaryOp::Eq || op == BinaryOp::Ne;
    TypedValue out;
    out.elem = lhs.elem;
    out.varying = lhs.varying;
    if (is_cmp) {
      out.boolean = true;
      if (lhs.elem == ElemType::Float) {
        ir::FCmpPred pred;
        switch (op) {
          case BinaryOp::Lt: pred = ir::FCmpPred::OLT; break;
          case BinaryOp::Le: pred = ir::FCmpPred::OLE; break;
          case BinaryOp::Gt: pred = ir::FCmpPred::OGT; break;
          case BinaryOp::Ge: pred = ir::FCmpPred::OGE; break;
          case BinaryOp::Eq: pred = ir::FCmpPred::OEQ; break;
          default: pred = ir::FCmpPred::ONE; break;
        }
        out.value = b().fcmp(pred, lhs.value, rhs.value, "cmp");
      } else {
        ir::ICmpPred pred;
        switch (op) {
          case BinaryOp::Lt: pred = ir::ICmpPred::SLT; break;
          case BinaryOp::Le: pred = ir::ICmpPred::SLE; break;
          case BinaryOp::Gt: pred = ir::ICmpPred::SGT; break;
          case BinaryOp::Ge: pred = ir::ICmpPred::SGE; break;
          case BinaryOp::Eq: pred = ir::ICmpPred::EQ; break;
          default: pred = ir::ICmpPred::NE; break;
        }
        out.value = b().icmp(pred, lhs.value, rhs.value, "cmp");
      }
      return out;
    }

    if (lhs.elem == ElemType::Float) {
      switch (op) {
        case BinaryOp::Add: out.value = b().fadd(lhs.value, rhs.value, "add"); break;
        case BinaryOp::Sub: out.value = b().fsub(lhs.value, rhs.value, "sub"); break;
        case BinaryOp::Mul: out.value = b().fmul(lhs.value, rhs.value, "mul"); break;
        case BinaryOp::Div: out.value = b().fdiv(lhs.value, rhs.value, "div"); break;
        case BinaryOp::Rem:
          error(expr.line, "'%' requires integer operands");
          return {};
        default: return {};
      }
    } else {
      switch (op) {
        case BinaryOp::Add: out.value = b().add(lhs.value, rhs.value, "add"); break;
        case BinaryOp::Sub: out.value = b().sub(lhs.value, rhs.value, "sub"); break;
        case BinaryOp::Mul: out.value = b().mul(lhs.value, rhs.value, "mul"); break;
        case BinaryOp::Div: out.value = b().sdiv(lhs.value, rhs.value, "div"); break;
        case BinaryOp::Rem: out.value = b().srem(lhs.value, rhs.value, "rem"); break;
        default: return {};
      }
    }
    return out;
  }

  TypedValue lower_call(const Expr& expr, Scope& scope, ForeachCtx* ctx) {
    // Casts.
    if (expr.name == "float" || expr.name == "int") {
      if (expr.children.size() != 1) {
        error(expr.line, expr.name + "() takes one argument");
        return {};
      }
      TypedValue operand = lower_expr(*expr.children[0], scope, ctx);
      if (!operand.value) return {};
      return expr.name == "float" ? to_float(operand, expr.line)
                                  : to_int(operand, expr.line);
    }

    struct MathFn {
      const char* name;
      ir::IntrinsicId id;
      unsigned arity;
    };
    static const MathFn kMath[] = {
        {"sqrt", ir::IntrinsicId::Sqrt, 1},
        {"exp", ir::IntrinsicId::Exp, 1},
        {"log", ir::IntrinsicId::Log, 1},
        {"pow", ir::IntrinsicId::Pow, 2},
        {"abs", ir::IntrinsicId::Fabs, 1},
        {"min", ir::IntrinsicId::Fmin, 2},
        {"max", ir::IntrinsicId::Fmax, 2},
        {"sin", ir::IntrinsicId::Sin, 1},
        {"cos", ir::IntrinsicId::Cos, 1},
        {"floor", ir::IntrinsicId::Floor, 1},
    };
    for (const MathFn& fn : kMath) {
      if (expr.name != fn.name) continue;
      if (expr.children.size() != fn.arity) {
        error(expr.line, strf("%s() takes %u argument(s)", fn.name,
                              fn.arity));
        return {};
      }
      TypedValue first = lower_expr(*expr.children[0], scope, ctx);
      if (!first.value) return {};
      first = to_float(first, expr.line);
      if (fn.arity == 1) {
        TypedValue out = first;
        out.value = kb_->intrinsic_call(fn.id, first.value);
        return out;
      }
      TypedValue second = lower_expr(*expr.children[1], scope, ctx);
      if (!second.value) return {};
      second = to_float(second, expr.line);
      if (!unify(&first, &second, expr.line)) return {};
      TypedValue out = first;
      out.value = kb_->intrinsic_call(fn.id, first.value, second.value);
      return out;
    }
    error(expr.line, "unknown function '" + expr.name + "'");
    return {};
  }

  // --- array access vectorization ----------------------------------------------

  /// Index shape inside a foreach: contiguous (== loop var), offset
  /// (loop var ± uniform), uniform, or general (gather/scatter).
  enum class IndexShape { Contiguous, Offset, Uniform, General };

  IndexShape classify_index(const Expr& index, ForeachCtx* ctx,
                            const std::string& loop_var, Scope& scope,
                            const Expr** offset_out, bool* negate_offset) {
    *offset_out = nullptr;
    *negate_offset = false;
    if (!ctx) return IndexShape::Uniform;
    if (index.kind == ExprKind::VarRef && index.name == loop_var) {
      return IndexShape::Contiguous;
    }
    if (index.kind == ExprKind::Binary &&
        (index.binary_op == BinaryOp::Add ||
         index.binary_op == BinaryOp::Sub)) {
      const Expr& lhs = *index.children[0];
      const Expr& rhs = *index.children[1];
      if (lhs.kind == ExprKind::VarRef && lhs.name == loop_var &&
          is_uniform_expr(rhs, scope, loop_var)) {
        *offset_out = &rhs;
        *negate_offset = index.binary_op == BinaryOp::Sub;
        return IndexShape::Offset;
      }
      if (index.binary_op == BinaryOp::Add &&
          rhs.kind == ExprKind::VarRef && rhs.name == loop_var &&
          is_uniform_expr(lhs, scope, loop_var)) {
        *offset_out = &lhs;
        return IndexShape::Offset;
      }
    }
    if (is_uniform_expr(index, scope, loop_var)) return IndexShape::Uniform;
    return IndexShape::General;
  }

  /// Conservative uniform-ness: no reference to any varying binding.
  bool is_uniform_expr(const Expr& expr, Scope& scope,
                       const std::string& loop_var) {
    if (expr.kind == ExprKind::VarRef) {
      if (expr.name == loop_var) return false;
      auto it = scope.find(expr.name);
      return it == scope.end() || !it->second.varying;
    }
    if (expr.kind == ExprKind::ArrayIndex) {
      return is_uniform_expr(*expr.children[0], scope, loop_var);
    }
    for (const auto& child : expr.children) {
      if (!is_uniform_expr(*child, scope, loop_var)) return false;
    }
    return true;
  }

  const Binding* array_binding(const Expr& expr, Scope& scope) {
    auto it = scope.find(expr.name);
    if (it == scope.end() || it->second.kind != Binding::Kind::Array) {
      error(expr.line, "'" + expr.name + "' is not an array");
      return nullptr;
    }
    return &it->second;
  }

  TypedValue lower_array_load(const Expr& expr, Scope& scope,
                              ForeachCtx* ctx) {
    const Binding* array = array_binding(expr, scope);
    if (!array) return {};
    const Expr& index = *expr.children[0];
    const Type elem = scalar_type(array->elem);

    TypedValue out;
    out.elem = array->elem;

    const Expr* offset_expr;
    bool negate;
    switch (classify_index(index, ctx, loop_var_, scope, &offset_expr,
                           &negate)) {
      case IndexShape::Contiguous:
        out.varying = true;
        out.value = ctx->load(elem, array->value);
        return out;
      case IndexShape::Offset: {
        TypedValue off = lower_expr(*offset_expr, scope, ctx);
        if (!off.value) return {};
        off = to_int(off, expr.line);
        ir::Value* off_value = off.value;
        if (negate) {
          off_value = b().sub(b().i32_const(0), off_value, "neg_off");
        }
        out.varying = true;
        out.value = ctx->load_offset(elem, array->value, off_value);
        return out;
      }
      case IndexShape::Uniform: {
        TypedValue idx = lower_expr(index, scope, ctx);
        if (!idx.value) return {};
        idx = to_int(idx, expr.line);
        ir::Value* addr = b().gep(array->value, idx.value,
                                  elem.element_bytes(), "uaddr");
        ir::Value* scalar = b().load(elem, addr, "uload");
        if (ctx) {
          // A uniform load read inside a vectorized loop is broadcast —
          // the Figure-9 pattern the uniform detector protects.
          out.varying = true;
          out.value = kb_->uniform(scalar);
        } else {
          out.value = scalar;
        }
        return out;
      }
      case IndexShape::General: {
        TypedValue idx = lower_expr(index, scope, ctx);
        if (!idx.value) return {};
        idx = to_int(idx, expr.line);
        if (!idx.varying) {
          error(expr.line, "internal: general index should be varying");
          return {};
        }
        out.varying = true;
        out.value = ctx->gather(elem, array->value, idx.value);
        return out;
      }
    }
    return {};
  }

  void lower_array_store(const Stmt& stmt, TypedValue value, Scope& scope,
                         ForeachCtx* ctx) {
    Expr ref(ExprKind::ArrayIndex);
    ref.name = stmt.name;
    ref.line = stmt.line;
    const Binding* array = array_binding(ref, scope);
    if (!array) return;
    const Type elem = scalar_type(array->elem);

    // Coerce the value to the array's element type.
    value = array->elem == ElemType::Float ? to_float(value, stmt.line)
                                           : to_int(value, stmt.line);
    if (!value.value) return;

    const Expr& index = *stmt.index;
    const Expr* offset_expr;
    bool negate;
    const IndexShape shape =
        classify_index(index, ctx, loop_var_, scope, &offset_expr, &negate);

    if (shape == IndexShape::Uniform) {
      if (value.varying) {
        error(stmt.line,
              "cannot store a varying value through a uniform index");
        return;
      }
      TypedValue idx = lower_expr(index, scope, ctx);
      if (!idx.value) return;
      idx = to_int(idx, stmt.line);
      ir::Value* addr = b().gep(array->value, idx.value,
                                elem.element_bytes(), "uaddr");
      b().store(value.value, addr);
      return;
    }
    if (!ctx) {
      error(stmt.line, "vector array stores require a foreach loop");
      return;
    }
    value = to_varying(value);
    switch (shape) {
      case IndexShape::Contiguous:
        ctx->store(value.value, array->value);
        return;
      case IndexShape::Offset: {
        TypedValue off = lower_expr(*offset_expr, scope, ctx);
        if (!off.value) return;
        off = to_int(off, stmt.line);
        ir::Value* off_value = off.value;
        if (negate) {
          off_value = b().sub(b().i32_const(0), off_value, "neg_off");
        }
        ctx->store_offset(value.value, array->value, off_value);
        return;
      }
      case IndexShape::General: {
        TypedValue idx = lower_expr(index, scope, ctx);
        if (!idx.value) return;
        idx = to_int(idx, stmt.line);
        ctx->scatter(value.value, array->value, idx.value);
        return;
      }
      case IndexShape::Uniform:
        break;  // handled above
    }
  }

  // --- statements ------------------------------------------------------------

  /// Plain-variable assignments anywhere in `stmts` (loop-carried /
  /// reduction detection records the operator too).
  struct AssignedVar {
    std::string name;
    AssignOp op;
    int line;
  };
  static void collect_assigned(const std::vector<StmtPtr>& stmts,
                               std::vector<AssignedVar>* out) {
    for (const StmtPtr& stmt : stmts) {
      if (stmt->kind == StmtKind::Assign && !stmt->index) {
        out->push_back({stmt->name, stmt->assign_op, stmt->line});
      }
      collect_assigned(stmt->body, out);
    }
  }

  void lower_stmts(const std::vector<StmtPtr>& stmts, Scope& scope,
                   ForeachCtx* ctx) {
    for (const StmtPtr& stmt : stmts) {
      if (!errors_.empty()) return;
      lower_stmt(*stmt, scope, ctx);
    }
  }

  void lower_stmt(const Stmt& stmt, Scope& scope, ForeachCtx* ctx) {
    switch (stmt.kind) {
      case StmtKind::Decl: {
        if (scope.count(stmt.name)) {
          error(stmt.line, "redeclaration of '" + stmt.name + "'");
          return;
        }
        TypedValue init = lower_expr(*stmt.value, scope, ctx);
        if (!init.value) return;
        init = stmt.decl_type == ElemType::Float ? to_float(init, stmt.line)
                                                 : to_int(init, stmt.line);
        if (!init.value) return;
        if (stmt.decl_uniform && init.varying) {
          error(stmt.line,
                "cannot initialize a uniform variable with a varying value");
          return;
        }
        if (!stmt.decl_uniform) {
          if (!ctx) {
            error(stmt.line,
                  "varying declarations are only legal inside foreach "
                  "(add 'uniform' outside)");
            return;
          }
          init = to_varying(init);
        }
        Binding binding;
        binding.elem = stmt.decl_type;
        binding.varying = init.varying;
        binding.value = init.value;
        scope[stmt.name] = binding;
        return;
      }
      case StmtKind::Assign: {
        if (stmt.index) {
          TypedValue value = lower_expr(*stmt.value, scope, ctx);
          if (!value.value) return;
          if (stmt.assign_op != AssignOp::Set) {
            // a[i] op= v  ==>  a[i] = a[i] op v
            Expr load(ExprKind::ArrayIndex);
            load.name = stmt.name;
            load.line = stmt.line;
            load.children.push_back(clone_expr(*stmt.index));
            TypedValue current = lower_array_load(load, scope, ctx);
            if (!current.value) return;
            value = apply_compound(current, value, stmt.assign_op,
                                   stmt.line);
            if (!value.value) return;
          }
          lower_array_store(stmt, value, scope, ctx);
          return;
        }
        auto it = scope.find(stmt.name);
        if (it == scope.end()) {
          error(stmt.line, "assignment to undeclared '" + stmt.name + "'");
          return;
        }
        Binding& binding = it->second;
        if (binding.kind == Binding::Kind::Array) {
          error(stmt.line, "cannot assign to an array name");
          return;
        }
        TypedValue value = lower_expr(*stmt.value, scope, ctx);
        if (!value.value) return;
        value = binding.elem == ElemType::Float ? to_float(value, stmt.line)
                                                : to_int(value, stmt.line);
        if (!value.value) return;
        if (stmt.assign_op != AssignOp::Set) {
          TypedValue current;
          current.elem = binding.elem;
          current.varying = binding.varying;
          current.value = binding.value;
          value = apply_compound(current, value, stmt.assign_op, stmt.line);
          if (!value.value) return;
        }
        if (!binding.varying && value.varying) {
          error(stmt.line,
                "cannot assign a varying value to a uniform variable "
                "(uniform '+=' reductions are only legal directly inside "
                "foreach)");
          return;
        }
        if (binding.varying) value = to_varying(value);
        binding.value = value.value;
        return;
      }
      case StmtKind::For:
        lower_for(stmt, scope, ctx);
        return;
      case StmtKind::Foreach:
        if (ctx) {
          error(stmt.line, "foreach loops do not nest");
          return;
        }
        lower_foreach(stmt, scope);
        return;
    }
  }

  TypedValue apply_compound(TypedValue current, TypedValue rhs, AssignOp op,
                            int line) {
    if (!unify(&current, &rhs, line)) return {};
    TypedValue out = current;
    if (current.elem == ElemType::Float) {
      switch (op) {
        case AssignOp::Add: out.value = b().fadd(current.value, rhs.value, "cadd"); break;
        case AssignOp::Sub: out.value = b().fsub(current.value, rhs.value, "csub"); break;
        case AssignOp::Mul: out.value = b().fmul(current.value, rhs.value, "cmul"); break;
        case AssignOp::Set: out.value = rhs.value; break;
      }
    } else {
      switch (op) {
        case AssignOp::Add: out.value = b().add(current.value, rhs.value, "cadd"); break;
        case AssignOp::Sub: out.value = b().sub(current.value, rhs.value, "csub"); break;
        case AssignOp::Mul: out.value = b().mul(current.value, rhs.value, "cmul"); break;
        case AssignOp::Set: out.value = rhs.value; break;
      }
    }
    return out;
  }

  static ExprPtr clone_expr(const Expr& expr) {
    auto copy = std::make_unique<Expr>(expr.kind);
    copy->line = expr.line;
    copy->int_value = expr.int_value;
    copy->float_value = expr.float_value;
    copy->name = expr.name;
    copy->binary_op = expr.binary_op;
    copy->unary_not = expr.unary_not;
    for (const auto& child : expr.children) {
      copy->children.push_back(clone_expr(*child));
    }
    return copy;
  }

  void lower_for(const Stmt& stmt, Scope& scope, ForeachCtx* ctx) {
    TypedValue start = lower_expr(*stmt.value, scope, ctx);
    TypedValue bound = lower_expr(*stmt.bound, scope, ctx);
    if (!start.value || !bound.value) return;
    start = to_int(start, stmt.line);
    bound = to_int(bound, stmt.line);
    if (start.varying || bound.varying) {
      error(stmt.line, "for-loop bounds must be uniform");
      return;
    }

    // Variables reassigned in the body become loop-carried values.
    std::vector<AssignedVar> assigned;
    collect_assigned(stmt.body, &assigned);
    std::vector<std::string> carried_names;
    std::vector<ir::Value*> carried_init;
    for (const AssignedVar& var : assigned) {
      const std::string& name = var.name;
      auto it = scope.find(name);
      if (it == scope.end() ||
          it->second.kind != Binding::Kind::Scalar) {
        continue;
      }
      if (std::find(carried_names.begin(), carried_names.end(), name) !=
          carried_names.end()) {
        continue;
      }
      carried_names.push_back(name);
      carried_init.push_back(it->second.value);
    }

    auto finals = kb_->scalar_loop(
        start.value, bound.value, carried_init,
        [&](ir::Value* iv, const std::vector<ir::Value*>& carried)
            -> std::vector<ir::Value*> {
          Scope body_scope = scope;
          Binding iv_binding;
          iv_binding.elem = ElemType::Int;
          iv_binding.value = iv;
          body_scope[stmt.name] = iv_binding;
          for (std::size_t i = 0; i < carried_names.size(); ++i) {
            body_scope[carried_names[i]].value = carried[i];
          }
          lower_stmts(stmt.body, body_scope, ctx);
          std::vector<ir::Value*> updated;
          for (const std::string& name : carried_names) {
            updated.push_back(body_scope[name].value);
          }
          return updated;
        },
        stmt.name.c_str());
    for (std::size_t i = 0; i < carried_names.size(); ++i) {
      scope[carried_names[i]].value = finals[i];
    }
  }

  void lower_foreach(const Stmt& stmt, Scope& scope) {
    TypedValue start = lower_expr(*stmt.value, scope, nullptr);
    TypedValue bound = lower_expr(*stmt.bound, scope, nullptr);
    if (!start.value || !bound.value) return;
    start = to_int(start, stmt.line);
    bound = to_int(bound, stmt.line);
    if (start.varying || bound.varying) {
      error(stmt.line, "foreach bounds must be uniform");
      return;
    }

    // Uniform scalars accumulated with '+=' inside the loop become
    // per-lane accumulators reduced on exit (ISPC's reduce_add idiom).
    // Any other assignment to a uniform variable inside foreach is a
    // cross-lane race and is rejected.
    std::vector<AssignedVar> assigned;
    collect_assigned(stmt.body, &assigned);
    std::vector<std::string> reduce_names;
    for (const AssignedVar& var : assigned) {
      auto it = scope.find(var.name);
      if (it == scope.end() ||
          it->second.kind != Binding::Kind::Scalar ||
          it->second.varying) {
        continue;
      }
      if (var.op != AssignOp::Add) {
        error(var.line,
              "only '+=' reductions may update a uniform variable inside "
              "foreach");
        return;
      }
      if (std::find(reduce_names.begin(), reduce_names.end(), var.name) ==
          reduce_names.end()) {
        reduce_names.push_back(var.name);
      }
    }
    std::vector<ir::Value*> init;
    for (const std::string& name : reduce_names) {
      const Binding& binding = scope[name];
      init.push_back(binding.elem == ElemType::Float
                         ? static_cast<ir::Value*>(kb_->vconst_f32(0.0f))
                         : static_cast<ir::Value*>(kb_->vconst_i32(0)));
    }

    loop_var_ = stmt.name;
    auto finals = kb_->foreach_reduce(
        start.value, bound.value, init,
        [&](ForeachCtx& ctx, const std::vector<ir::Value*>& carried)
            -> std::vector<ir::Value*> {
          Scope body_scope = scope;
          Binding iv_binding;
          iv_binding.elem = ElemType::Int;
          iv_binding.varying = true;
          iv_binding.value = ctx.index();
          body_scope[stmt.name] = iv_binding;
          // Reduction accumulators appear as varying zero-initialized
          // partials inside the loop.
          for (std::size_t i = 0; i < reduce_names.size(); ++i) {
            Binding& binding = body_scope[reduce_names[i]];
            binding.varying = true;
            binding.value = carried[i];
          }
          lower_stmts(stmt.body, body_scope, &ctx);
          std::vector<ir::Value*> updated;
          for (const std::string& name : reduce_names) {
            updated.push_back(body_scope[name].value);
          }
          return updated;
        });
    loop_var_.clear();

    // Fold the lane partials into the uniform accumulators.
    for (std::size_t i = 0; i < reduce_names.size(); ++i) {
      Binding& binding = scope[reduce_names[i]];
      ir::Value* lane_sum = kb_->reduce_add(finals[i]);
      binding.value =
          binding.elem == ElemType::Float
              ? b().fadd(binding.value, lane_sum, reduce_names[i] + "_red")
              : b().add(binding.value, lane_sum, reduce_names[i] + "_red");
    }
  }

  const Kernel& kernel_;
  const Target& target_;
  std::vector<std::string>& errors_;
  std::unique_ptr<KernelBuilder> kb_;
  Scope globals_;
  std::string loop_var_;
};

}  // namespace

CompileResult compile_program(const std::string& source, const Target& target,
                              const std::string& module_name) {
  CompileResult result;
  ProgramParseResult parsed = parse_program(source);
  if (!parsed.ok()) {
    result.errors = std::move(parsed.errors);
    return result;
  }
  auto module = std::make_unique<ir::Module>(module_name);
  for (const auto& kernel : parsed.program->kernels) {
    KernelCompiler compiler(*kernel, *module, target, result.errors);
    if (!compiler.run()) return result;
  }
  const auto verify_errors = ir::verify(*module);
  for (const std::string& err : verify_errors) {
    result.errors.push_back("internal codegen error: " + err);
  }
  if (result.errors.empty()) result.module = std::move(module);
  return result;
}

}  // namespace vulfi::spmd::lang
