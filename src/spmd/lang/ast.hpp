// Abstract syntax tree for the ISPC-like kernel language.
//
// The language distinguishes `uniform` (scalar, shared by all lanes) from
// varying (per-lane) values exactly as ISPC does; variability is inferred
// during semantic analysis (sema.hpp) and recorded on expressions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vulfi::spmd::lang {

/// Element type of the two base types. Arrays are pointers to these.
enum class ElemType : unsigned char { Float, Int };

/// uniform (one value for all lanes) vs varying (a value per lane).
enum class Variability : unsigned char { Uniform, Varying };

struct LangType {
  ElemType elem = ElemType::Float;
  Variability variability = Variability::Uniform;

  bool operator==(const LangType&) const = default;
  bool is_varying() const { return variability == Variability::Varying; }
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : unsigned char {
  IntLiteral,
  FloatLiteral,
  VarRef,
  ArrayIndex,   // a[index]
  Unary,        // -x, !x
  Binary,       // + - * / % < <= > >= == != && ||
  Ternary,      // c ? a : b
  Call,         // sqrt(x), min(a,b), ...
};

enum class BinaryOp : unsigned char {
  Add, Sub, Mul, Div, Rem,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // literals
  std::int64_t int_value = 0;
  double float_value = 0.0;

  // VarRef / Call / ArrayIndex base name
  std::string name;

  BinaryOp binary_op = BinaryOp::Add;
  bool unary_not = false;  // Unary: true = '!', false = '-'

  std::vector<std::unique_ptr<Expr>> children;

  // Filled by sema:
  LangType type;
  bool is_bool = false;  // comparison / logical result (mask-typed)

  explicit Expr(ExprKind k) : kind(k) {}
};

using ExprPtr = std::unique_ptr<Expr>;

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : unsigned char {
  Decl,      // [uniform] type name = expr;
  Assign,    // lvalue (=|+=|-=|*=) expr;
  Foreach,   // foreach (name = a ... b) { body }
  For,       // for (uniform int k = a; k < b; k++) { body }
};

enum class AssignOp : unsigned char { Set, Add, Sub, Mul };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  int line = 0;

  // Decl
  bool decl_uniform = false;
  ElemType decl_type = ElemType::Float;

  // Decl / Assign / Foreach iterator / For iterator name
  std::string name;

  // Assign: lvalue is either a plain variable (index == nullptr) or an
  // array element name[index].
  AssignOp assign_op = AssignOp::Set;
  ExprPtr index;  // ArrayIndex lvalue subscript

  // Decl init / Assign value / loop bounds
  ExprPtr value;   // init or RHS, or foreach/for lower bound
  ExprPtr bound;   // foreach/for upper bound

  std::vector<StmtPtr> body;  // loop bodies

  explicit Stmt(StmtKind k) : kind(k) {}
};

// ---------------------------------------------------------------------------
// Kernels / programs
// ---------------------------------------------------------------------------

struct Param {
  std::string name;
  ElemType elem = ElemType::Float;
  bool is_array = false;   // T name[] — lowered to a pointer argument
  bool is_uniform = true;  // parameters are uniform in this language
  int line = 0;
};

struct Kernel {
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Program {
  std::vector<std::unique_ptr<Kernel>> kernels;
};

}  // namespace vulfi::spmd::lang
