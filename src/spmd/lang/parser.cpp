#include "spmd/lang/parser.hpp"

#include "spmd/lang/lexer.hpp"
#include "support/str.hpp"

namespace vulfi::spmd::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ProgramParseResult run() {
    auto program = std::make_unique<Program>();
    while (!at(TokKind::End) && errors_.empty()) {
      auto kernel = parse_kernel();
      if (kernel) program->kernels.push_back(std::move(kernel));
    }
    ProgramParseResult result;
    result.errors = std::move(errors_);
    if (result.errors.empty()) result.program = std::move(program);
    return result;
  }

 private:
  const Token& peek(int ahead = 0) const {
    const std::size_t index =
        std::min(pos_ + static_cast<std::size_t>(ahead),
                 tokens_.size() - 1);
    return tokens_[index];
  }
  bool at(TokKind kind) const { return peek().kind == kind; }
  bool at_keyword(const char* word) const {
    return at(TokKind::Identifier) && peek().text == word;
  }
  Token take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool try_take(TokKind kind) {
    if (!at(kind)) return false;
    pos_ += 1;
    return true;
  }
  bool try_take_keyword(const char* word) {
    if (!at_keyword(word)) return false;
    pos_ += 1;
    return true;
  }

  void error(const std::string& message) {
    errors_.push_back(strf("line %d: %s", peek().line, message.c_str()));
  }

  bool expect(TokKind kind) {
    if (try_take(kind)) return true;
    error(strf("expected %s, found %s", tok_kind_name(kind),
               tok_kind_name(peek().kind)));
    return false;
  }

  std::string expect_identifier(const char* what) {
    if (!at(TokKind::Identifier)) {
      error(strf("expected %s", what));
      return "";
    }
    return take().text;
  }

  bool parse_elem_type(ElemType* elem) {
    if (try_take_keyword("float")) {
      *elem = ElemType::Float;
      return true;
    }
    if (try_take_keyword("int")) {
      *elem = ElemType::Int;
      return true;
    }
    return false;
  }

  // --- kernels -----------------------------------------------------------

  std::unique_ptr<Kernel> parse_kernel() {
    if (!try_take_keyword("kernel")) {
      error("expected 'kernel'");
      pos_ += 1;  // make progress
      return nullptr;
    }
    auto kernel = std::make_unique<Kernel>();
    kernel->line = peek().line;
    kernel->name = expect_identifier("kernel name");
    if (!expect(TokKind::LParen)) return nullptr;
    if (!try_take(TokKind::RParen)) {
      while (true) {
        Param param;
        param.line = peek().line;
        param.is_uniform = try_take_keyword("uniform");
        if (!parse_elem_type(&param.elem)) {
          error("expected parameter type (float or int)");
          return nullptr;
        }
        param.name = expect_identifier("parameter name");
        if (try_take(TokKind::LBracket)) {
          if (!expect(TokKind::RBracket)) return nullptr;
          param.is_array = true;
        }
        if (!param.is_uniform) {
          error("parameters must be declared 'uniform' (ISPC exported "
                "kernels take uniform parameters)");
          return nullptr;
        }
        kernel->params.push_back(std::move(param));
        if (try_take(TokKind::RParen)) break;
        if (!expect(TokKind::Comma)) return nullptr;
      }
    }
    if (!parse_block(&kernel->body)) return nullptr;
    return kernel;
  }

  bool parse_block(std::vector<StmtPtr>* out) {
    if (!expect(TokKind::LBrace)) return false;
    while (!try_take(TokKind::RBrace)) {
      if (at(TokKind::End)) {
        error("unterminated block");
        return false;
      }
      StmtPtr stmt = parse_statement();
      if (!stmt) return false;
      out->push_back(std::move(stmt));
    }
    return true;
  }

  // --- statements -----------------------------------------------------------

  StmtPtr parse_statement() {
    const int line = peek().line;
    if (at_keyword("foreach")) return parse_foreach();
    if (at_keyword("for")) return parse_for();

    // Declaration: [uniform] (float|int) name = expr ;
    if (at_keyword("uniform") || at_keyword("float") || at_keyword("int")) {
      auto stmt = std::make_unique<Stmt>(StmtKind::Decl);
      stmt->line = line;
      stmt->decl_uniform = try_take_keyword("uniform");
      if (!parse_elem_type(&stmt->decl_type)) {
        error("expected type after 'uniform'");
        return nullptr;
      }
      stmt->name = expect_identifier("variable name");
      if (!expect(TokKind::Assign)) return nullptr;
      stmt->value = parse_expr();
      if (!stmt->value || !expect(TokKind::Semicolon)) return nullptr;
      return stmt;
    }

    // Assignment: name [ '[' expr ']' ] (=|+=|-=|*=) expr ;
    auto stmt = std::make_unique<Stmt>(StmtKind::Assign);
    stmt->line = line;
    stmt->name = expect_identifier("assignment target");
    if (stmt->name.empty()) return nullptr;
    if (try_take(TokKind::LBracket)) {
      stmt->index = parse_expr();
      if (!stmt->index || !expect(TokKind::RBracket)) return nullptr;
    }
    if (try_take(TokKind::Assign)) {
      stmt->assign_op = AssignOp::Set;
    } else if (try_take(TokKind::PlusAssign)) {
      stmt->assign_op = AssignOp::Add;
    } else if (try_take(TokKind::MinusAssign)) {
      stmt->assign_op = AssignOp::Sub;
    } else if (try_take(TokKind::StarAssign)) {
      stmt->assign_op = AssignOp::Mul;
    } else {
      error("expected assignment operator");
      return nullptr;
    }
    stmt->value = parse_expr();
    if (!stmt->value || !expect(TokKind::Semicolon)) return nullptr;
    return stmt;
  }

  StmtPtr parse_foreach() {
    // Multi-dimensional foreach (ISPC: foreach (y = 0 ... h, x = 0 ... w))
    // desugars here: every dimension except the last becomes a sequential
    // uniform loop; the last dimension is the vectorized one — ISPC's own
    // strategy, and the shape the paper's footnote 4 refers to.
    const int line = peek().line;
    try_take_keyword("foreach");
    if (!expect(TokKind::LParen)) return nullptr;

    struct Clause {
      std::string name;
      ExprPtr lo, hi;
      int line;
    };
    std::vector<Clause> clauses;
    while (true) {
      Clause clause;
      clause.line = peek().line;
      clause.name = expect_identifier("foreach iterator name");
      if (!expect(TokKind::Assign)) return nullptr;
      clause.lo = parse_expr();
      if (!clause.lo || !expect(TokKind::Ellipsis)) return nullptr;
      clause.hi = parse_expr();
      if (!clause.hi) return nullptr;
      clauses.push_back(std::move(clause));
      if (try_take(TokKind::RParen)) break;
      if (!expect(TokKind::Comma)) return nullptr;
    }

    auto inner = std::make_unique<Stmt>(StmtKind::Foreach);
    inner->line = line;
    inner->name = clauses.back().name;
    inner->value = std::move(clauses.back().lo);
    inner->bound = std::move(clauses.back().hi);
    if (!parse_block(&inner->body)) return nullptr;

    StmtPtr current = std::move(inner);
    for (std::size_t i = clauses.size() - 1; i-- > 0;) {
      auto outer = std::make_unique<Stmt>(StmtKind::For);
      outer->line = clauses[i].line;
      outer->name = clauses[i].name;
      outer->value = std::move(clauses[i].lo);
      outer->bound = std::move(clauses[i].hi);
      outer->body.push_back(std::move(current));
      current = std::move(outer);
    }
    return current;
  }

  StmtPtr parse_for() {
    // for (uniform int k = <expr>; k < <expr>; k++) { ... }
    auto stmt = std::make_unique<Stmt>(StmtKind::For);
    stmt->line = peek().line;
    try_take_keyword("for");
    if (!expect(TokKind::LParen)) return nullptr;
    if (!try_take_keyword("uniform") || !try_take_keyword("int")) {
      error("for loops take the form: for (uniform int k = a; k < b; k++)");
      return nullptr;
    }
    stmt->name = expect_identifier("loop variable name");
    if (!expect(TokKind::Assign)) return nullptr;
    stmt->value = parse_expr();
    if (!stmt->value || !expect(TokKind::Semicolon)) return nullptr;
    const std::string cond_var = expect_identifier("loop variable");
    if (cond_var != stmt->name || !expect(TokKind::Less)) {
      error("for condition must be '<loop-var> < <bound>'");
      return nullptr;
    }
    stmt->bound = parse_expr();
    if (!stmt->bound || !expect(TokKind::Semicolon)) return nullptr;
    const std::string inc_var = expect_identifier("loop variable");
    if (inc_var != stmt->name || !expect(TokKind::PlusPlus)) {
      error("for increment must be '<loop-var>++'");
      return nullptr;
    }
    if (!expect(TokKind::RParen)) return nullptr;
    if (!parse_block(&stmt->body)) return nullptr;
    return stmt;
  }

  // --- expressions ------------------------------------------------------------

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_or();
    if (!cond || !try_take(TokKind::Question)) return cond;
    auto expr = std::make_unique<Expr>(ExprKind::Ternary);
    expr->line = cond->line;
    ExprPtr on_true = parse_expr();
    if (!on_true || !expect(TokKind::Colon)) return nullptr;
    ExprPtr on_false = parse_expr();
    if (!on_false) return nullptr;
    expr->children.push_back(std::move(cond));
    expr->children.push_back(std::move(on_true));
    expr->children.push_back(std::move(on_false));
    return expr;
  }

  ExprPtr parse_binary_chain(ExprPtr (Parser::*next)(),
                             std::initializer_list<std::pair<TokKind, BinaryOp>>
                                 ops) {
    ExprPtr lhs = (this->*next)();
    if (!lhs) return nullptr;
    while (true) {
      bool matched = false;
      for (const auto& [kind, op] : ops) {
        if (try_take(kind)) {
          ExprPtr rhs = (this->*next)();
          if (!rhs) return nullptr;
          auto expr = std::make_unique<Expr>(ExprKind::Binary);
          expr->line = lhs->line;
          expr->binary_op = op;
          expr->children.push_back(std::move(lhs));
          expr->children.push_back(std::move(rhs));
          lhs = std::move(expr);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr parse_or() {
    return parse_binary_chain(&Parser::parse_and,
                              {{TokKind::OrOr, BinaryOp::Or}});
  }
  ExprPtr parse_and() {
    return parse_binary_chain(&Parser::parse_cmp,
                              {{TokKind::AndAnd, BinaryOp::And}});
  }
  ExprPtr parse_cmp() {
    return parse_binary_chain(&Parser::parse_add,
                              {{TokKind::Less, BinaryOp::Lt},
                               {TokKind::LessEq, BinaryOp::Le},
                               {TokKind::Greater, BinaryOp::Gt},
                               {TokKind::GreaterEq, BinaryOp::Ge},
                               {TokKind::EqEq, BinaryOp::Eq},
                               {TokKind::NotEq, BinaryOp::Ne}});
  }
  ExprPtr parse_add() {
    return parse_binary_chain(&Parser::parse_mul,
                              {{TokKind::Plus, BinaryOp::Add},
                               {TokKind::Minus, BinaryOp::Sub}});
  }
  ExprPtr parse_mul() {
    return parse_binary_chain(&Parser::parse_unary,
                              {{TokKind::Star, BinaryOp::Mul},
                               {TokKind::Slash, BinaryOp::Div},
                               {TokKind::Percent, BinaryOp::Rem}});
  }

  ExprPtr parse_unary() {
    if (try_take(TokKind::Minus)) {
      auto expr = std::make_unique<Expr>(ExprKind::Unary);
      expr->line = peek().line;
      expr->unary_not = false;
      ExprPtr operand = parse_unary();
      if (!operand) return nullptr;
      expr->children.push_back(std::move(operand));
      return expr;
    }
    if (try_take(TokKind::Not)) {
      auto expr = std::make_unique<Expr>(ExprKind::Unary);
      expr->line = peek().line;
      expr->unary_not = true;
      ExprPtr operand = parse_unary();
      if (!operand) return nullptr;
      expr->children.push_back(std::move(operand));
      return expr;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& token = peek();
    if (token.kind == TokKind::IntLiteral) {
      auto expr = std::make_unique<Expr>(ExprKind::IntLiteral);
      expr->line = token.line;
      expr->int_value = take().int_value;
      return expr;
    }
    if (token.kind == TokKind::FloatLiteral) {
      auto expr = std::make_unique<Expr>(ExprKind::FloatLiteral);
      expr->line = token.line;
      expr->float_value = take().float_value;
      return expr;
    }
    if (token.kind == TokKind::LParen) {
      take();
      ExprPtr inner = parse_expr();
      if (!inner || !expect(TokKind::RParen)) return nullptr;
      return inner;
    }
    if (token.kind == TokKind::Identifier) {
      const int line = token.line;
      const std::string name = take().text;
      if (try_take(TokKind::LParen)) {
        auto expr = std::make_unique<Expr>(ExprKind::Call);
        expr->line = line;
        expr->name = name;
        if (!try_take(TokKind::RParen)) {
          while (true) {
            ExprPtr arg = parse_expr();
            if (!arg) return nullptr;
            expr->children.push_back(std::move(arg));
            if (try_take(TokKind::RParen)) break;
            if (!expect(TokKind::Comma)) return nullptr;
          }
        }
        return expr;
      }
      if (try_take(TokKind::LBracket)) {
        auto expr = std::make_unique<Expr>(ExprKind::ArrayIndex);
        expr->line = line;
        expr->name = name;
        ExprPtr index = parse_expr();
        if (!index || !expect(TokKind::RBracket)) return nullptr;
        expr->children.push_back(std::move(index));
        return expr;
      }
      auto expr = std::make_unique<Expr>(ExprKind::VarRef);
      expr->line = line;
      expr->name = name;
      return expr;
    }
    error(strf("unexpected %s in expression",
               tok_kind_name(token.kind)));
    return nullptr;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<std::string> errors_;
};

}  // namespace

ProgramParseResult parse_program(const std::string& source) {
  LexResult lexed = lex(source);
  if (!lexed.ok()) {
    ProgramParseResult result;
    result.errors = std::move(lexed.errors);
    return result;
  }
  return Parser(std::move(lexed.tokens)).run();
}

}  // namespace vulfi::spmd::lang
