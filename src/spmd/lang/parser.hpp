// Recursive-descent parser for the ISPC-like kernel language.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "spmd/lang/ast.hpp"

namespace vulfi::spmd::lang {

struct ProgramParseResult {
  std::unique_ptr<Program> program;  // nullptr on failure
  std::vector<std::string> errors;

  bool ok() const { return program != nullptr && errors.empty(); }
};

ProgramParseResult parse_program(const std::string& source);

}  // namespace vulfi::spmd::lang
