// Lexer for the ISPC-like kernel language (see compiler.hpp for the
// language definition). Produces a token stream with line/column info for
// diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vulfi::spmd::lang {

enum class TokKind : std::uint8_t {
  End,
  Identifier,   // names and keywords (keyword-ness decided by the parser)
  IntLiteral,   // 123
  FloatLiteral, // 1.5, 2e-3, 1.f-style not supported
  // Punctuation / operators:
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Question, Colon,
  Assign,        // =
  PlusAssign,    // +=
  MinusAssign,   // -=
  StarAssign,    // *=
  Plus, Minus, Star, Slash, Percent,
  Less, LessEq, Greater, GreaterEq, EqEq, NotEq,
  AndAnd, OrOr, Not,
  Ellipsis,      // ... (foreach range)
  PlusPlus,      // ++
};

const char* tok_kind_name(TokKind kind);

struct Token {
  TokKind kind = TokKind::End;
  std::string text;        // identifier spelling / literal text
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
  int column = 0;
};

struct LexResult {
  std::vector<Token> tokens;  // always terminated by an End token
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

/// Tokenizes `source`. Comments: `//` to end of line.
LexResult lex(const std::string& source);

}  // namespace vulfi::spmd::lang
