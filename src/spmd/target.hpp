// Vector target configuration.
//
// The paper evaluates every benchmark twice: compiled for Intel AVX
// (256-bit, 8 x f32/i32 lanes) and for SSE4 (128-bit, 4 lanes). At IR
// level the difference is the vector width and which masked intrinsics the
// code generator emits; both are captured here.
#pragma once

#include "ir/intrinsics.hpp"
#include "ir/type.hpp"

namespace vulfi::spmd {

struct Target {
  ir::Isa isa = ir::Isa::AVX;
  /// Lanes for 32-bit elements — the foreach vector length Vl.
  unsigned vector_width = 8;

  static Target avx() { return Target{ir::Isa::AVX, 8}; }
  static Target sse4() { return Target{ir::Isa::SSE4, 4}; }

  const char* name() const { return ir::isa_name(isa); }

  /// Varying version of a 32-bit scalar type.
  ir::Type varying(ir::Type element) const {
    return element.with_lanes(vector_width);
  }
  ir::Type varying_f32() const { return varying(ir::Type::f32()); }
  ir::Type varying_i32() const { return varying(ir::Type::i32()); }
  ir::Type varying_i1() const { return varying(ir::Type::i1()); }
};

}  // namespace vulfi::spmd
