# Empty dependencies file for test_semantic_preservation.
# This may be replaced when dependencies are built.
