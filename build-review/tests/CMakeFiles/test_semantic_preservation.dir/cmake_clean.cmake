file(REMOVE_RECURSE
  "CMakeFiles/test_semantic_preservation.dir/test_semantic_preservation.cpp.o"
  "CMakeFiles/test_semantic_preservation.dir/test_semantic_preservation.cpp.o.d"
  "test_semantic_preservation"
  "test_semantic_preservation.pdb"
  "test_semantic_preservation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semantic_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
