file(REMOVE_RECURSE
  "CMakeFiles/test_parser_cloner.dir/test_parser_cloner.cpp.o"
  "CMakeFiles/test_parser_cloner.dir/test_parser_cloner.cpp.o.d"
  "test_parser_cloner"
  "test_parser_cloner.pdb"
  "test_parser_cloner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_cloner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
