# Empty dependencies file for test_parser_cloner.
# This may be replaced when dependencies are built.
