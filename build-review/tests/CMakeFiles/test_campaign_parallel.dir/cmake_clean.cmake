file(REMOVE_RECURSE
  "CMakeFiles/test_campaign_parallel.dir/test_campaign_parallel.cpp.o"
  "CMakeFiles/test_campaign_parallel.dir/test_campaign_parallel.cpp.o.d"
  "test_campaign_parallel"
  "test_campaign_parallel.pdb"
  "test_campaign_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_campaign_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
