file(REMOVE_RECURSE
  "CMakeFiles/test_spmd.dir/test_spmd.cpp.o"
  "CMakeFiles/test_spmd.dir/test_spmd.cpp.o.d"
  "test_spmd"
  "test_spmd.pdb"
  "test_spmd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
