# Empty dependencies file for test_spmd.
# This may be replaced when dependencies are built.
