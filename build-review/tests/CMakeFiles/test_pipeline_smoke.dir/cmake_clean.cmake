file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_smoke.dir/test_pipeline_smoke.cpp.o"
  "CMakeFiles/test_pipeline_smoke.dir/test_pipeline_smoke.cpp.o.d"
  "test_pipeline_smoke"
  "test_pipeline_smoke.pdb"
  "test_pipeline_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
