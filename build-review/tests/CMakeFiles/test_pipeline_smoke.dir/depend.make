# Empty dependencies file for test_pipeline_smoke.
# This may be replaced when dependencies are built.
