file(REMOVE_RECURSE
  "CMakeFiles/test_vulfi.dir/test_vulfi.cpp.o"
  "CMakeFiles/test_vulfi.dir/test_vulfi.cpp.o.d"
  "test_vulfi"
  "test_vulfi.pdb"
  "test_vulfi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vulfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
