# Empty compiler generated dependencies file for test_vulfi.
# This may be replaced when dependencies are built.
