# Empty dependencies file for test_infra_extra.
# This may be replaced when dependencies are built.
