file(REMOVE_RECURSE
  "CMakeFiles/test_infra_extra.dir/test_infra_extra.cpp.o"
  "CMakeFiles/test_infra_extra.dir/test_infra_extra.cpp.o.d"
  "test_infra_extra"
  "test_infra_extra.pdb"
  "test_infra_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_infra_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
