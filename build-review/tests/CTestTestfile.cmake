# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_pipeline_smoke[1]_include.cmake")
include("/root/repo/build-review/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build-review/tests/test_support[1]_include.cmake")
include("/root/repo/build-review/tests/test_ir[1]_include.cmake")
include("/root/repo/build-review/tests/test_interp[1]_include.cmake")
include("/root/repo/build-review/tests/test_analysis[1]_include.cmake")
include("/root/repo/build-review/tests/test_spmd[1]_include.cmake")
include("/root/repo/build-review/tests/test_vulfi[1]_include.cmake")
include("/root/repo/build-review/tests/test_detect[1]_include.cmake")
include("/root/repo/build-review/tests/test_parser_cloner[1]_include.cmake")
include("/root/repo/build-review/tests/test_lang[1]_include.cmake")
include("/root/repo/build-review/tests/test_infra_extra[1]_include.cmake")
include("/root/repo/build-review/tests/test_semantic_preservation[1]_include.cmake")
include("/root/repo/build-review/tests/test_campaign_determinism[1]_include.cmake")
include("/root/repo/build-review/tests/test_campaign_parallel[1]_include.cmake")
