# Empty compiler generated dependencies file for vulfi_support.
# This may be replaced when dependencies are built.
