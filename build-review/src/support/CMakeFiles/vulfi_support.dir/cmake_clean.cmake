file(REMOVE_RECURSE
  "CMakeFiles/vulfi_support.dir/barchart.cpp.o"
  "CMakeFiles/vulfi_support.dir/barchart.cpp.o.d"
  "CMakeFiles/vulfi_support.dir/error.cpp.o"
  "CMakeFiles/vulfi_support.dir/error.cpp.o.d"
  "CMakeFiles/vulfi_support.dir/rng.cpp.o"
  "CMakeFiles/vulfi_support.dir/rng.cpp.o.d"
  "CMakeFiles/vulfi_support.dir/stats.cpp.o"
  "CMakeFiles/vulfi_support.dir/stats.cpp.o.d"
  "CMakeFiles/vulfi_support.dir/str.cpp.o"
  "CMakeFiles/vulfi_support.dir/str.cpp.o.d"
  "CMakeFiles/vulfi_support.dir/table.cpp.o"
  "CMakeFiles/vulfi_support.dir/table.cpp.o.d"
  "libvulfi_support.a"
  "libvulfi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
