file(REMOVE_RECURSE
  "libvulfi_support.a"
)
