file(REMOVE_RECURSE
  "CMakeFiles/vulfi_kernels.dir/blackscholes.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/blackscholes.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/cg.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/cg.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/chebyshev.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/chebyshev.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/fluidanimate.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/fluidanimate.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/jacobi.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/jacobi.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/kernel_common.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/kernel_common.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/micro.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/micro.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/raytracing.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/raytracing.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/registry.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/registry.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/sorting.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/sorting.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/stencil.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/stencil.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/study.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/study.cpp.o.d"
  "CMakeFiles/vulfi_kernels.dir/swaptions.cpp.o"
  "CMakeFiles/vulfi_kernels.dir/swaptions.cpp.o.d"
  "libvulfi_kernels.a"
  "libvulfi_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
