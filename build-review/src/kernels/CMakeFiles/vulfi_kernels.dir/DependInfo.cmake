
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/blackscholes.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/blackscholes.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/blackscholes.cpp.o.d"
  "/root/repo/src/kernels/cg.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/cg.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/cg.cpp.o.d"
  "/root/repo/src/kernels/chebyshev.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/chebyshev.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/chebyshev.cpp.o.d"
  "/root/repo/src/kernels/fluidanimate.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/fluidanimate.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/fluidanimate.cpp.o.d"
  "/root/repo/src/kernels/jacobi.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/jacobi.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/jacobi.cpp.o.d"
  "/root/repo/src/kernels/kernel_common.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/kernel_common.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/kernel_common.cpp.o.d"
  "/root/repo/src/kernels/micro.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/micro.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/micro.cpp.o.d"
  "/root/repo/src/kernels/raytracing.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/raytracing.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/raytracing.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/registry.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/registry.cpp.o.d"
  "/root/repo/src/kernels/sorting.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/sorting.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/sorting.cpp.o.d"
  "/root/repo/src/kernels/stencil.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/stencil.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/stencil.cpp.o.d"
  "/root/repo/src/kernels/study.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/study.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/study.cpp.o.d"
  "/root/repo/src/kernels/swaptions.cpp" "src/kernels/CMakeFiles/vulfi_kernels.dir/swaptions.cpp.o" "gcc" "src/kernels/CMakeFiles/vulfi_kernels.dir/swaptions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ir/CMakeFiles/vulfi_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/vulfi_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spmd/CMakeFiles/vulfi_spmd.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vulfi/CMakeFiles/vulfi_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/detect/CMakeFiles/vulfi_detect.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vulfi_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/vulfi_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
