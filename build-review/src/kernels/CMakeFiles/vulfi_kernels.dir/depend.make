# Empty dependencies file for vulfi_kernels.
# This may be replaced when dependencies are built.
