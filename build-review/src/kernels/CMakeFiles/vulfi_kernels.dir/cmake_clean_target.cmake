file(REMOVE_RECURSE
  "libvulfi_kernels.a"
)
