file(REMOVE_RECURSE
  "libvulfi_spmd.a"
)
