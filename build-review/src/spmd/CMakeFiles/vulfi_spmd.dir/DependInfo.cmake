
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spmd/kernel_builder.cpp" "src/spmd/CMakeFiles/vulfi_spmd.dir/kernel_builder.cpp.o" "gcc" "src/spmd/CMakeFiles/vulfi_spmd.dir/kernel_builder.cpp.o.d"
  "/root/repo/src/spmd/lang/compiler.cpp" "src/spmd/CMakeFiles/vulfi_spmd.dir/lang/compiler.cpp.o" "gcc" "src/spmd/CMakeFiles/vulfi_spmd.dir/lang/compiler.cpp.o.d"
  "/root/repo/src/spmd/lang/lexer.cpp" "src/spmd/CMakeFiles/vulfi_spmd.dir/lang/lexer.cpp.o" "gcc" "src/spmd/CMakeFiles/vulfi_spmd.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/spmd/lang/parser.cpp" "src/spmd/CMakeFiles/vulfi_spmd.dir/lang/parser.cpp.o" "gcc" "src/spmd/CMakeFiles/vulfi_spmd.dir/lang/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ir/CMakeFiles/vulfi_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vulfi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
