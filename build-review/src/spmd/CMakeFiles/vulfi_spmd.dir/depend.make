# Empty dependencies file for vulfi_spmd.
# This may be replaced when dependencies are built.
