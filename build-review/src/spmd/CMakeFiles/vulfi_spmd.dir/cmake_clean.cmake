file(REMOVE_RECURSE
  "CMakeFiles/vulfi_spmd.dir/kernel_builder.cpp.o"
  "CMakeFiles/vulfi_spmd.dir/kernel_builder.cpp.o.d"
  "CMakeFiles/vulfi_spmd.dir/lang/compiler.cpp.o"
  "CMakeFiles/vulfi_spmd.dir/lang/compiler.cpp.o.d"
  "CMakeFiles/vulfi_spmd.dir/lang/lexer.cpp.o"
  "CMakeFiles/vulfi_spmd.dir/lang/lexer.cpp.o.d"
  "CMakeFiles/vulfi_spmd.dir/lang/parser.cpp.o"
  "CMakeFiles/vulfi_spmd.dir/lang/parser.cpp.o.d"
  "libvulfi_spmd.a"
  "libvulfi_spmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi_spmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
