file(REMOVE_RECURSE
  "CMakeFiles/vulfi_analysis.dir/classify.cpp.o"
  "CMakeFiles/vulfi_analysis.dir/classify.cpp.o.d"
  "CMakeFiles/vulfi_analysis.dir/instr_mix.cpp.o"
  "CMakeFiles/vulfi_analysis.dir/instr_mix.cpp.o.d"
  "CMakeFiles/vulfi_analysis.dir/slicing.cpp.o"
  "CMakeFiles/vulfi_analysis.dir/slicing.cpp.o.d"
  "libvulfi_analysis.a"
  "libvulfi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
