
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/classify.cpp" "src/analysis/CMakeFiles/vulfi_analysis.dir/classify.cpp.o" "gcc" "src/analysis/CMakeFiles/vulfi_analysis.dir/classify.cpp.o.d"
  "/root/repo/src/analysis/instr_mix.cpp" "src/analysis/CMakeFiles/vulfi_analysis.dir/instr_mix.cpp.o" "gcc" "src/analysis/CMakeFiles/vulfi_analysis.dir/instr_mix.cpp.o.d"
  "/root/repo/src/analysis/slicing.cpp" "src/analysis/CMakeFiles/vulfi_analysis.dir/slicing.cpp.o" "gcc" "src/analysis/CMakeFiles/vulfi_analysis.dir/slicing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ir/CMakeFiles/vulfi_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vulfi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
