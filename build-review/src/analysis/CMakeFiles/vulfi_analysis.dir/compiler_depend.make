# Empty compiler generated dependencies file for vulfi_analysis.
# This may be replaced when dependencies are built.
