file(REMOVE_RECURSE
  "libvulfi_analysis.a"
)
