file(REMOVE_RECURSE
  "CMakeFiles/vulfi_core.dir/campaign.cpp.o"
  "CMakeFiles/vulfi_core.dir/campaign.cpp.o.d"
  "CMakeFiles/vulfi_core.dir/driver.cpp.o"
  "CMakeFiles/vulfi_core.dir/driver.cpp.o.d"
  "CMakeFiles/vulfi_core.dir/fault_site.cpp.o"
  "CMakeFiles/vulfi_core.dir/fault_site.cpp.o.d"
  "CMakeFiles/vulfi_core.dir/fi_runtime.cpp.o"
  "CMakeFiles/vulfi_core.dir/fi_runtime.cpp.o.d"
  "CMakeFiles/vulfi_core.dir/instrument.cpp.o"
  "CMakeFiles/vulfi_core.dir/instrument.cpp.o.d"
  "CMakeFiles/vulfi_core.dir/report.cpp.o"
  "CMakeFiles/vulfi_core.dir/report.cpp.o.d"
  "CMakeFiles/vulfi_core.dir/run_spec.cpp.o"
  "CMakeFiles/vulfi_core.dir/run_spec.cpp.o.d"
  "libvulfi_core.a"
  "libvulfi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
