# Empty compiler generated dependencies file for vulfi_core.
# This may be replaced when dependencies are built.
