
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vulfi/campaign.cpp" "src/vulfi/CMakeFiles/vulfi_core.dir/campaign.cpp.o" "gcc" "src/vulfi/CMakeFiles/vulfi_core.dir/campaign.cpp.o.d"
  "/root/repo/src/vulfi/driver.cpp" "src/vulfi/CMakeFiles/vulfi_core.dir/driver.cpp.o" "gcc" "src/vulfi/CMakeFiles/vulfi_core.dir/driver.cpp.o.d"
  "/root/repo/src/vulfi/fault_site.cpp" "src/vulfi/CMakeFiles/vulfi_core.dir/fault_site.cpp.o" "gcc" "src/vulfi/CMakeFiles/vulfi_core.dir/fault_site.cpp.o.d"
  "/root/repo/src/vulfi/fi_runtime.cpp" "src/vulfi/CMakeFiles/vulfi_core.dir/fi_runtime.cpp.o" "gcc" "src/vulfi/CMakeFiles/vulfi_core.dir/fi_runtime.cpp.o.d"
  "/root/repo/src/vulfi/instrument.cpp" "src/vulfi/CMakeFiles/vulfi_core.dir/instrument.cpp.o" "gcc" "src/vulfi/CMakeFiles/vulfi_core.dir/instrument.cpp.o.d"
  "/root/repo/src/vulfi/report.cpp" "src/vulfi/CMakeFiles/vulfi_core.dir/report.cpp.o" "gcc" "src/vulfi/CMakeFiles/vulfi_core.dir/report.cpp.o.d"
  "/root/repo/src/vulfi/run_spec.cpp" "src/vulfi/CMakeFiles/vulfi_core.dir/run_spec.cpp.o" "gcc" "src/vulfi/CMakeFiles/vulfi_core.dir/run_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ir/CMakeFiles/vulfi_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/vulfi_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/vulfi_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vulfi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
