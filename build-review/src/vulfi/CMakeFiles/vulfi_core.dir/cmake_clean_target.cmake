file(REMOVE_RECURSE
  "libvulfi_core.a"
)
