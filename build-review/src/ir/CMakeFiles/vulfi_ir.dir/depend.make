# Empty dependencies file for vulfi_ir.
# This may be replaced when dependencies are built.
