file(REMOVE_RECURSE
  "CMakeFiles/vulfi_ir.dir/basic_block.cpp.o"
  "CMakeFiles/vulfi_ir.dir/basic_block.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/builder.cpp.o"
  "CMakeFiles/vulfi_ir.dir/builder.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/cloner.cpp.o"
  "CMakeFiles/vulfi_ir.dir/cloner.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/function.cpp.o"
  "CMakeFiles/vulfi_ir.dir/function.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/instruction.cpp.o"
  "CMakeFiles/vulfi_ir.dir/instruction.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/intrinsics.cpp.o"
  "CMakeFiles/vulfi_ir.dir/intrinsics.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/module.cpp.o"
  "CMakeFiles/vulfi_ir.dir/module.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/parser.cpp.o"
  "CMakeFiles/vulfi_ir.dir/parser.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/printer.cpp.o"
  "CMakeFiles/vulfi_ir.dir/printer.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/transforms.cpp.o"
  "CMakeFiles/vulfi_ir.dir/transforms.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/type.cpp.o"
  "CMakeFiles/vulfi_ir.dir/type.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/value.cpp.o"
  "CMakeFiles/vulfi_ir.dir/value.cpp.o.d"
  "CMakeFiles/vulfi_ir.dir/verifier.cpp.o"
  "CMakeFiles/vulfi_ir.dir/verifier.cpp.o.d"
  "libvulfi_ir.a"
  "libvulfi_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
