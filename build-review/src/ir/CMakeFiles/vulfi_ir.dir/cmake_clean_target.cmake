file(REMOVE_RECURSE
  "libvulfi_ir.a"
)
