
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/arena.cpp" "src/interp/CMakeFiles/vulfi_interp.dir/arena.cpp.o" "gcc" "src/interp/CMakeFiles/vulfi_interp.dir/arena.cpp.o.d"
  "/root/repo/src/interp/interpreter.cpp" "src/interp/CMakeFiles/vulfi_interp.dir/interpreter.cpp.o" "gcc" "src/interp/CMakeFiles/vulfi_interp.dir/interpreter.cpp.o.d"
  "/root/repo/src/interp/runtime.cpp" "src/interp/CMakeFiles/vulfi_interp.dir/runtime.cpp.o" "gcc" "src/interp/CMakeFiles/vulfi_interp.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ir/CMakeFiles/vulfi_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vulfi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
