file(REMOVE_RECURSE
  "libvulfi_interp.a"
)
