file(REMOVE_RECURSE
  "CMakeFiles/vulfi_interp.dir/arena.cpp.o"
  "CMakeFiles/vulfi_interp.dir/arena.cpp.o.d"
  "CMakeFiles/vulfi_interp.dir/interpreter.cpp.o"
  "CMakeFiles/vulfi_interp.dir/interpreter.cpp.o.d"
  "CMakeFiles/vulfi_interp.dir/runtime.cpp.o"
  "CMakeFiles/vulfi_interp.dir/runtime.cpp.o.d"
  "libvulfi_interp.a"
  "libvulfi_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
