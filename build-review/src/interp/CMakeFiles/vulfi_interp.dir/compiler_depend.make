# Empty compiler generated dependencies file for vulfi_interp.
# This may be replaced when dependencies are built.
