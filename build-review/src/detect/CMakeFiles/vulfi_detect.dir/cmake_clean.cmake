file(REMOVE_RECURSE
  "CMakeFiles/vulfi_detect.dir/detector_runtime.cpp.o"
  "CMakeFiles/vulfi_detect.dir/detector_runtime.cpp.o.d"
  "CMakeFiles/vulfi_detect.dir/foreach_detector.cpp.o"
  "CMakeFiles/vulfi_detect.dir/foreach_detector.cpp.o.d"
  "CMakeFiles/vulfi_detect.dir/uniform_detector.cpp.o"
  "CMakeFiles/vulfi_detect.dir/uniform_detector.cpp.o.d"
  "libvulfi_detect.a"
  "libvulfi_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
