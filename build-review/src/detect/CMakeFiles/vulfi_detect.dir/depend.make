# Empty dependencies file for vulfi_detect.
# This may be replaced when dependencies are built.
