
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detector_runtime.cpp" "src/detect/CMakeFiles/vulfi_detect.dir/detector_runtime.cpp.o" "gcc" "src/detect/CMakeFiles/vulfi_detect.dir/detector_runtime.cpp.o.d"
  "/root/repo/src/detect/foreach_detector.cpp" "src/detect/CMakeFiles/vulfi_detect.dir/foreach_detector.cpp.o" "gcc" "src/detect/CMakeFiles/vulfi_detect.dir/foreach_detector.cpp.o.d"
  "/root/repo/src/detect/uniform_detector.cpp" "src/detect/CMakeFiles/vulfi_detect.dir/uniform_detector.cpp.o" "gcc" "src/detect/CMakeFiles/vulfi_detect.dir/uniform_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ir/CMakeFiles/vulfi_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/vulfi_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vulfi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
