file(REMOVE_RECURSE
  "libvulfi_detect.a"
)
