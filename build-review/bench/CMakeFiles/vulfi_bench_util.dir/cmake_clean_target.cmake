file(REMOVE_RECURSE
  "libvulfi_bench_util.a"
)
