file(REMOVE_RECURSE
  "CMakeFiles/vulfi_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/vulfi_bench_util.dir/bench_util.cpp.o.d"
  "libvulfi_bench_util.a"
  "libvulfi_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
