# Empty compiler generated dependencies file for vulfi_bench_util.
# This may be replaced when dependencies are built.
