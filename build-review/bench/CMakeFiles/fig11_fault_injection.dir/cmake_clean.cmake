file(REMOVE_RECURSE
  "CMakeFiles/fig11_fault_injection.dir/fig11_fault_injection.cpp.o"
  "CMakeFiles/fig11_fault_injection.dir/fig11_fault_injection.cpp.o.d"
  "fig11_fault_injection"
  "fig11_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
