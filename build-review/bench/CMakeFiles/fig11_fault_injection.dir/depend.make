# Empty dependencies file for fig11_fault_injection.
# This may be replaced when dependencies are built.
