
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_dynamic_counts.cpp" "bench/CMakeFiles/table1_dynamic_counts.dir/table1_dynamic_counts.cpp.o" "gcc" "bench/CMakeFiles/table1_dynamic_counts.dir/table1_dynamic_counts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/bench/CMakeFiles/vulfi_bench_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernels/CMakeFiles/vulfi_kernels.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vulfi/CMakeFiles/vulfi_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/detect/CMakeFiles/vulfi_detect.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spmd/CMakeFiles/vulfi_spmd.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/vulfi_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/vulfi_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ir/CMakeFiles/vulfi_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vulfi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
