# Empty compiler generated dependencies file for fig12_detectors.
# This may be replaced when dependencies are built.
