file(REMOVE_RECURSE
  "CMakeFiles/fig12_detectors.dir/fig12_detectors.cpp.o"
  "CMakeFiles/fig12_detectors.dir/fig12_detectors.cpp.o.d"
  "fig12_detectors"
  "fig12_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
