file(REMOVE_RECURSE
  "CMakeFiles/fig10_instruction_mix.dir/fig10_instruction_mix.cpp.o"
  "CMakeFiles/fig10_instruction_mix.dir/fig10_instruction_mix.cpp.o.d"
  "fig10_instruction_mix"
  "fig10_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
