# Empty dependencies file for fig10_instruction_mix.
# This may be replaced when dependencies are built.
