# Empty compiler generated dependencies file for vulfi.
# This may be replaced when dependencies are built.
