file(REMOVE_RECURSE
  "CMakeFiles/vulfi.dir/vulfi_cli.cpp.o"
  "CMakeFiles/vulfi.dir/vulfi_cli.cpp.o.d"
  "vulfi"
  "vulfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
