# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build-review/tools/vulfi" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sites "/root/repo/build-review/tools/vulfi" "sites" "--benchmark" "stencil" "--target" "sse")
set_tests_properties(cli_sites PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_show_ir "/root/repo/build-review/tools/vulfi" "show-ir" "--benchmark" "vcopy" "--detectors")
set_tests_properties(cli_show_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_inject "/root/repo/build-review/tools/vulfi" "inject" "--benchmark" "vsum" "--category" "pure-data" "--experiments" "10" "--seed" "7")
set_tests_properties(cli_inject PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_campaign "/root/repo/build-review/tools/vulfi" "campaign" "--benchmark" "dot" "--category" "control" "--campaigns" "2" "--experiments" "10")
set_tests_properties(cli_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown "/root/repo/build-review/tools/vulfi" "bogus")
set_tests_properties(cli_rejects_unknown PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compile "/root/repo/build-review/tools/vulfi" "compile" "--file" "/root/repo/examples/kernels/saxpy.ispc" "--target" "avx")
set_tests_properties(cli_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_study "/root/repo/build-review/tools/vulfi" "study" "--benchmark" "vsum" "--campaigns" "1" "--experiments" "10")
set_tests_properties(cli_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
