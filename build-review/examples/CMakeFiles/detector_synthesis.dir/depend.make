# Empty dependencies file for detector_synthesis.
# This may be replaced when dependencies are built.
