file(REMOVE_RECURSE
  "CMakeFiles/detector_synthesis.dir/detector_synthesis.cpp.o"
  "CMakeFiles/detector_synthesis.dir/detector_synthesis.cpp.o.d"
  "detector_synthesis"
  "detector_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
