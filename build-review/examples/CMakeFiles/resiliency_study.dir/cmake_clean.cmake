file(REMOVE_RECURSE
  "CMakeFiles/resiliency_study.dir/resiliency_study.cpp.o"
  "CMakeFiles/resiliency_study.dir/resiliency_study.cpp.o.d"
  "resiliency_study"
  "resiliency_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resiliency_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
