# Empty compiler generated dependencies file for resiliency_study.
# This may be replaced when dependencies are built.
