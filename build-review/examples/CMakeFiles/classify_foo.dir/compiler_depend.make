# Empty compiler generated dependencies file for classify_foo.
# This may be replaced when dependencies are built.
