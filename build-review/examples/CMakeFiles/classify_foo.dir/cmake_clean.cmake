file(REMOVE_RECURSE
  "CMakeFiles/classify_foo.dir/classify_foo.cpp.o"
  "CMakeFiles/classify_foo.dir/classify_foo.cpp.o.d"
  "classify_foo"
  "classify_foo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_foo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
