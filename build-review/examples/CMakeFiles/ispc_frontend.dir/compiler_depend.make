# Empty compiler generated dependencies file for ispc_frontend.
# This may be replaced when dependencies are built.
