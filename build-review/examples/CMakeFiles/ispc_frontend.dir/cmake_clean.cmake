file(REMOVE_RECURSE
  "CMakeFiles/ispc_frontend.dir/ispc_frontend.cpp.o"
  "CMakeFiles/ispc_frontend.dir/ispc_frontend.cpp.o.d"
  "ispc_frontend"
  "ispc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ispc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
